//! The deterministic property-test runner and its configuration.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

/// Per-suite configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on whole-case rejections (`prop_assume!` / filters)
    /// before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A single case's failure mode.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!` or a filter).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Result type of one property check.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The runner driving one `proptest!`-generated test.
pub struct TestRunner {
    config: ProptestConfig,
    /// `proptest-regressions/<source file stem>.txt` under the crate root.
    regression_file: PathBuf,
    test_name: &'static str,
}

/// Splitmix-style avalanche, used to derive per-case seeds.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRunner {
    /// Builds a runner for the test `test_name` defined in `source_file` of
    /// the crate rooted at `manifest_dir`.
    #[must_use]
    pub fn new(
        config: ProptestConfig,
        manifest_dir: &'static str,
        source_file: &'static str,
        test_name: &'static str,
    ) -> TestRunner {
        let stem = std::path::Path::new(source_file)
            .file_stem()
            .map_or_else(|| "unknown".into(), |s| s.to_string_lossy().into_owned());
        let regression_file = PathBuf::from(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"));
        TestRunner {
            config,
            regression_file,
            test_name,
        }
    }

    /// Seeds pinned for this test (lines `cc <test_name> <seed>`; legacy
    /// two-token lines `cc <seed>` apply to every test in the file).
    fn pinned_seeds(&self) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(&self.regression_file) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let mut tok = line.split_whitespace();
            if tok.next() != Some("cc") {
                continue;
            }
            match (tok.next(), tok.next()) {
                (Some(name), Some(seed)) if name == self.test_name => {
                    if let Ok(s) = seed.parse() {
                        seeds.push(s);
                    }
                }
                (Some(seed), None) => {
                    if let Ok(s) = seed.parse() {
                        seeds.push(s);
                    }
                }
                _ => {}
            }
        }
        seeds
    }

    fn pin_seed(&self, seed: u64) {
        // Serialize against other failing proptests in the same test binary
        // (cargo runs them on parallel threads sharing this file), and
        // append rather than rewrite so concurrent pins cannot clobber each
        // other even across processes.
        static PIN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = PIN_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        let dir = self
            .regression_file
            .parent()
            .expect("regression file has a parent");
        let line = format!("cc {} {seed}\n", self.test_name);
        let existing = fs::read_to_string(&self.regression_file).unwrap_or_default();
        if existing.contains(&line) {
            return;
        }
        let result = fs::create_dir_all(dir).and_then(|()| {
            use std::io::Write;
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.regression_file)?;
            if existing.is_empty() {
                file.write_all(
                    b"# Seeds pinned by the vendored proptest runner (vendor/proptest).\n\
                      # Lines are `cc <test_name> <seed>`; they are replayed before fresh cases.\n\
                      # Keep this file under version control.\n",
                )?;
            }
            file.write_all(line.as_bytes())
        });
        if let Err(e) = result {
            // Never mask the real test failure, but don't lose the seed
            // silently either.
            eprintln!(
                "warning: could not pin seed {seed} to {}: {e}",
                self.regression_file.display()
            );
        }
    }

    /// Runs `check` on pinned seeds, then on `config.cases` fresh cases.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// after pinning its seed, or when the rejection budget is exhausted.
    pub fn run<S: Strategy>(&self, strategy: &S, check: impl Fn(S::Value) -> TestCaseResult) {
        // Base seed: stable across runs, distinct across tests.
        let base = self
            .test_name
            .bytes()
            .fold(0xABC0_2008_5EED_u64, |h, b| mix(h ^ u64::from(b)));

        for seed in self.pinned_seeds() {
            self.run_seed(strategy, &check, seed, true);
        }

        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while accepted < self.config.cases {
            let seed = mix(base.wrapping_add(case));
            case += 1;
            if self.run_seed(strategy, &check, seed, false) {
                accepted += 1;
            } else {
                rejected += 1;
                assert!(
                    rejected < self.config.max_global_rejects,
                    "{}: too many rejected cases ({rejected} rejects for {accepted} accepts); \
                     loosen the strategy or the `prop_assume!`s",
                    self.test_name,
                );
            }
        }
    }

    /// Returns whether the case was accepted (ran to a verdict rather than
    /// being rejected).
    fn run_seed<S: Strategy>(
        &self,
        strategy: &S,
        check: impl Fn(S::Value) -> TestCaseResult,
        seed: u64,
        pinned: bool,
    ) -> bool {
        let mut rng = SmallRng::seed_from_u64(seed);
        let value = match strategy.generate(&mut rng) {
            Ok(v) => v,
            Err(_) if pinned => return true, // strategy changed since pinning
            Err(_) => return false,
        };
        // A property body that panics (unwrap/index/overflow) must still get
        // its seed pinned, so the failure is replayable — catch, pin,
        // resume. AssertUnwindSafe is fine: the value and closure are
        // dropped on the panic path, never reused.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(value)));
        match outcome {
            Ok(Ok(())) => true,
            Ok(Err(TestCaseError::Reject(_))) => false,
            Ok(Err(TestCaseError::Fail(msg))) => {
                if !pinned {
                    self.pin_seed(seed);
                }
                panic!(
                    "{name}: property failed{replay} (seed {seed}, pinned in {file}): {msg}",
                    name = self.test_name,
                    replay = if pinned {
                        " on pinned regression seed"
                    } else {
                        ""
                    },
                    file = self.regression_file.display(),
                );
            }
            Err(panic_payload) => {
                if !pinned {
                    self.pin_seed(seed);
                }
                eprintln!(
                    "{name}: property body panicked{replay} (seed {seed}, pinned in {file})",
                    name = self.test_name,
                    replay = if pinned {
                        " on pinned regression seed"
                    } else {
                        ""
                    },
                    file = self.regression_file.display(),
                );
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

/// Entry point used by the expansion of [`crate::proptest!`].
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    strategy: S,
    manifest_dir: &'static str,
    source_file: &'static str,
    test_name: &'static str,
    check: impl Fn(S::Value) -> TestCaseResult,
) {
    TestRunner::new(config, manifest_dir, source_file, test_name).run(&strategy, check);
}

/// Defines property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<i64>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $config,
                ($($strat,)+),
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |($($arg,)+)| { $body Ok(()) },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner (seed gets pinned).
#[macro_export]
macro_rules! prop_assert {
    // The stringified condition must NOT go through format!: conditions
    // containing braces (matches!, struct literals) would be misparsed as
    // format placeholders.
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "prop_assert!(",
                stringify!($cond),
                ")"
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "prop_assert_eq!({}, {}): {:?} != {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "prop_assert_ne!({}, {}): both {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}
