//! The [`Strategy`] trait and its combinators.

use rand::rngs::SmallRng;
use rand::{RngCore, RngExt};

/// Why a single generation attempt produced no value.
#[derive(Clone, Debug)]
pub struct Rejection(pub String);

/// Result of one generation attempt.
pub type Gen<T> = Result<T, Rejection>;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a failing case
/// is reported (and pinned) by seed.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or rejects (e.g. a filter failed).
    fn generate(&self, rng: &mut SmallRng) -> Gen<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded number
    /// of times before rejecting the whole case).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Generates a value, builds a second strategy from it, and draws from
    /// that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Gen<T> {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Gen<S::Value> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Gen<S::Value> {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> Gen<T> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> Gen<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Gen<S::Value> {
        // Local retries keep whole-case rejection rare even for selective
        // filters; the runner handles the residual rejections.
        for _ in 0..64 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.reason.clone()))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut SmallRng) -> Gen<T::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Gen<$t> {
                Ok(sample_range_128(
                    rng,
                    self.start as i128,
                    self.end as i128 - 1,
                ) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Gen<$t> {
                Ok(sample_range_128(rng, *self.start() as i128, *self.end() as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128/u128 need their own width-preserving sampling.
impl Strategy for core::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut SmallRng) -> Gen<i128> {
        Ok(sample_i128(rng, self.start, self.end - 1))
    }
}

impl Strategy for core::ops::RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut SmallRng) -> Gen<i128> {
        Ok(sample_i128(rng, *self.start(), *self.end()))
    }
}

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut SmallRng) -> Gen<u128> {
        let span = self.end - self.start;
        Ok(self.start + wide_word(rng) % span)
    }
}

/// Uniform in `[lo, hi]`, both interpreted in i128 (covers every smaller
/// integer width without overflow).
fn sample_range_128(rng: &mut SmallRng, lo: i128, hi: i128) -> i128 {
    assert!(lo <= hi, "cannot sample empty range");
    let span = (hi - lo) as u128; // fits: |hi - lo| <= 2^65 for 64-bit types
    if span < u64::MAX as u128 {
        lo + i128::from(rng.random_range(0..=(span as u64)))
    } else {
        lo + (wide_word(rng) % (span + 1)) as i128
    }
}

fn sample_i128(rng: &mut SmallRng, lo: i128, hi: i128) -> i128 {
    assert!(lo <= hi, "cannot sample empty range");
    let span = hi.wrapping_sub(lo) as u128;
    if span == u128::MAX {
        return wide_word(rng) as i128;
    }
    lo.wrapping_add((wide_word(rng) % (span + 1)) as i128)
}

/// Two generator words glued into a uniform u128.
pub(crate) fn wide_word(rng: &mut SmallRng) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Gen<Self::Value> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7),
);
