//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::{wide_word, Gen, Strategy};
use rand::rngs::SmallRng;
use rand::RngCore;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-range strategy for `T` (edge-biased: with probability 1/8 an edge
/// value such as `0`, `±1`, `MIN`, or `MAX` is drawn instead of a uniform
/// one, so overflow corners get exercised at small case counts).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Gen<T> {
        Ok(T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                let word = rng.next_u64();
                if word & 7 == 0 {
                    // Edge case draw.
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(<$t>::MIN)];
                    EDGES[(word >> 3) as usize % EDGES.len()]
                } else {
                    wide_word(rng) as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}
