//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Gen, Strategy};
use rand::rngs::SmallRng;
use rand::RngExt;

/// Acceptable size arguments for [`vec()`]: a fixed length or a range.
pub trait IntoSizeRange {
    /// Lower/upper bound (inclusive) on the generated length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Gen<Vec<S::Value>> {
        let len = rng.random_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
