//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate implements the subset of proptest the workspace's property
//! suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`, `prop_flat_map`,
//!   range strategies over all primitive integers, tuple strategies, and
//!   [`collection::vec`];
//! * [`arbitrary::any`] for integers and `bool` (edge-biased: `0`, `±1`,
//!   `MIN`, `MAX` are drawn with boosted probability);
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//!   assertion macros;
//! * a deterministic [`test_runner::TestRunner`] that replays pinned seeds
//!   from `proptest-regressions/<file>.txt` before running fresh cases, and
//!   appends the failing seed to that file on failure (same workflow as real
//!   proptest, seed-granular instead of value-granular).
//!
//! Differences from real proptest: no shrinking (the failing seed is
//! reported and pinned instead), and generation is seed-deterministic per
//! case index so CI runs are reproducible without an env var.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import the suites use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
