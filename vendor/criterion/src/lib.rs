//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the subset of criterion's API the workspace's bench
//! targets use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a real harness, not a no-op: each benchmark is warmed up, then
//! timed over `sample_size` samples, and the median/min/max per-iteration
//! wall time is printed. There is no statistical regression analysis, HTML
//! report, or CLI filtering — `cargo bench` runs everything, which is
//! exactly what the CI compile-check (`cargo bench --no-run`) and ad-hoc
//! local runs need.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark manager: groups benches and holds global defaults.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies CLI-style configuration. The stub accepts and ignores the
    /// arguments cargo-bench forwards (`--bench`, filters, …).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Benches `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_one("", &id.into().0, self.default_sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_one(&self.name, &id.into().0, self.sample_size, &mut f);
    }

    /// Times `f`, passing it `input` (the id typically names the input).
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &self.name,
            &id.into().0,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
    }

    /// Ends the group (kept for API parity; printing is immediate).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Id that is just the parameter's display form.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its result opaque to the optimizer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Warm-up and iteration-count calibration: aim for ~5ms per sample.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "  {label:<40} median {median:>12?}  (min {:?}, max {:?}, {iters} iters x {sample_size} samples)",
        samples[0],
        samples[samples.len() - 1],
    );
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (cargo passes harness flags;
/// they are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
