//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the exact API surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer ranges. All generators are
//! deterministic per seed, which is what the simulator's delay models and
//! the bench workload generators rely on.
//!
//! The generator is splitmix64 (Steele, Lea & Flood 2014): full 64-bit
//! period, passes BigCrush small-state batteries, and is more than enough
//! statistical quality for seeded test workloads. Range sampling uses
//! 128-bit multiply-shift (Lemire 2019) without the rejection step; the
//! worst-case bias is `span / 2^64`, irrelevant for simulation workloads.

#![forbid(unsafe_code)]

/// Pseudo-random generators (only [`rngs::SmallRng`] is provided).
pub mod rngs {
    /// A small, fast, seedable, non-cryptographic PRNG (splitmix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Pre-mix so that nearby seeds (0, 1, 2, …) diverge immediately.
            let mut rng = SmallRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            use super::RngCore;
            let _ = rng.next_u64();
            rng
        }
    }

    /// The splitmix64 finalizer: a bijective avalanche mix of one word.
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// Splits off a new generator whose output stream is independent of
        /// the parent's remaining stream (Steele, Lea & Flood's `split()`):
        /// the child is seeded from one parent draw, which advances the
        /// parent past it.
        #[must_use]
        pub fn split(&mut self) -> SmallRng {
            use super::{RngCore, SeedableRng};
            SmallRng::seed_from_u64(self.next_u64())
        }

        /// The `stream`-th independent generator derived from `seed`:
        /// deterministic O(1) stream-splitting for parallel workers.
        ///
        /// The stream index is pushed through the splitmix64 finalizer and
        /// a golden-gamma increment before it touches the state, so streams
        /// `0, 1, 2, …` of one seed start in uncorrelated regions of the
        /// state space — `seed_stream(s, i)` equals neither
        /// `seed_from_u64(s)` nor any nearby stream for the practical
        /// lengths simulations draw (see the no-collision test).
        #[must_use]
        pub fn seed_stream(seed: u64, stream: u64) -> SmallRng {
            use super::SeedableRng;
            let gamma = 0x9E37_79B9_7F4A_7C15u64;
            let salt = mix64(stream.wrapping_mul(gamma).wrapping_add(gamma));
            SmallRng::seed_from_u64(mix64(seed ^ salt))
        }
    }
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`RngCore`] (the slice of `rand::Rng` we use).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform u64 onto `[0, span)` via 128-bit multiply-shift.
fn mul_shift(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.random_range(-4..5);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn stream_splitting_gives_collision_free_independent_streams() {
        // 8 worker streams off one base seed: no value collides anywhere in
        // the first 1k draws of any stream (also not with the base
        // generator's own draws), so per-worker delay sequences are
        // provably distinct.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut base = SmallRng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert!(seen.insert(base.next_u64()));
        }
        for stream in 0..8u64 {
            let mut s = SmallRng::seed_stream(42, stream);
            for _ in 0..1_000 {
                assert!(seen.insert(s.next_u64()), "stream {stream} collided");
            }
        }
        assert_eq!(seen.len(), 9_000);
    }

    #[test]
    fn stream_splitting_is_deterministic_and_stream_sensitive() {
        let mut a = SmallRng::seed_stream(7, 3);
        let mut b = SmallRng::seed_stream(7, 3);
        let mut c = SmallRng::seed_stream(7, 4);
        let mut d = SmallRng::seed_stream(8, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn split_decorrelates_parent_and_child() {
        let mut parent = SmallRng::seed_from_u64(5);
        let mut child = parent.split();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            assert!(seen.insert(parent.next_u64()));
            assert!(seen.insert(child.next_u64()));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match rng.random_range(0u64..=1) {
                0 => lo_seen = true,
                _ => hi_seen = true,
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
