//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the exact API surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer ranges. All generators are
//! deterministic per seed, which is what the simulator's delay models and
//! the bench workload generators rely on.
//!
//! The generator is splitmix64 (Steele, Lea & Flood 2014): full 64-bit
//! period, passes BigCrush small-state batteries, and is more than enough
//! statistical quality for seeded test workloads. Range sampling uses
//! 128-bit multiply-shift (Lemire 2019) without the rejection step; the
//! worst-case bias is `span / 2^64`, irrelevant for simulation workloads.

#![forbid(unsafe_code)]

/// Pseudo-random generators (only [`rngs::SmallRng`] is provided).
pub mod rngs {
    /// A small, fast, seedable, non-cryptographic PRNG (splitmix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Pre-mix so that nearby seeds (0, 1, 2, …) diverge immediately.
            let mut rng = SmallRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            use super::RngCore;
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`RngCore`] (the slice of `rand::Rng` we use).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform u64 onto `[0, span)` via 128-bit multiply-shift.
fn mul_shift(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.random_range(-4..5);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match rng.random_range(0u64..=1) {
                0 => lo_seen = true,
                _ => hi_seen = true,
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
