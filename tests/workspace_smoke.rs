//! Workspace smoke test: every crate re-exported by the `abc` facade is
//! reachable, and its top-level entry points work on a tiny fixture. The
//! core round-trip (graph build → check → assign) is exercised end to end.
//!
//! Each test here is deliberately small — the point is wiring, not depth;
//! the per-crate suites own the depth.

use abc::core::assign::assign_delays;
use abc::core::graph::{ExecutionGraph, ProcessId};
use abc::core::{check, Xi};

/// The minimal relevant cycle: a 2-hop chain spanned by one direct message
/// (max relevant cycle ratio exactly 2).
fn tiny_graph() -> ExecutionGraph {
    let mut b = ExecutionGraph::builder(3);
    let q = b.init(ProcessId(0));
    b.init(ProcessId(1));
    b.init(ProcessId(2));
    let (_, relay) = b.send(q, ProcessId(2));
    b.send(relay, ProcessId(1));
    b.send(q, ProcessId(1));
    b.finish()
}

#[test]
fn core_check_assign_round_trip() {
    let g = tiny_graph();
    assert_eq!(
        check::max_relevant_cycle_ratio(&g),
        Ok(Some(abc::rational::Ratio::from_integer(2)))
    );
    // Strict bound: ratio == Xi is inadmissible, ratio < Xi is admissible.
    assert!(!check::is_admissible(&g, &Xi::from_integer(2)).unwrap());
    let xi = Xi::from_fraction(5, 2);
    assert!(check::is_admissible(&g, &xi).unwrap());
    // Theorem 7 round-trip: assignment exists, is normalized, and the timed
    // graph it produces is Θ-admissible for Θ = Ξ.
    let timed = assign_delays(&g, &xi).unwrap();
    assert!(timed.is_normalized(&g, &xi));
    assert!(timed.is_theta_admissible(&g, xi.as_ratio()));
}

#[test]
fn rational_arithmetic_is_exact() {
    use abc::rational::{BigInt, Ratio};
    let third = Ratio::new(1, 3);
    let sum = &(&third + &third) + &third;
    assert_eq!(sum, Ratio::one());
    let big = BigInt::from(i128::MAX) * BigInt::from(i128::MAX);
    assert_eq!(big.to_string().parse::<BigInt>().unwrap(), big);
}

#[test]
fn lp_simplex_solves_a_tiny_system() {
    use abc::lp::{simplex, LinearSystem, Rel};
    use abc::rational::Ratio;
    // x0 < 2  and  x0 >= 1 (as -x0 <= -1): feasible with a strict gap.
    let mut sys = LinearSystem::new(1);
    sys.push(
        vec![Ratio::from_integer(1)],
        Rel::Lt,
        Ratio::from_integer(2),
    );
    sys.push(
        vec![Ratio::from_integer(-1)],
        Rel::Le,
        Ratio::from_integer(-1),
    );
    let out = simplex::solve(&sys).unwrap();
    assert!(out.is_feasible());
    let sol = out.solution().unwrap();
    assert!(sys.satisfied_by(&sol.values));
}

#[test]
fn sim_and_clocksync_produce_admissible_synchronized_traces() {
    use abc::clocksync::{instrument, TickGen};
    use abc::sim::delay::BandDelay;
    use abc::sim::{RunLimits, Simulation};
    let mut sim = Simulation::new(BandDelay::new(10, 19, 7));
    for _ in 0..4 {
        sim.add_process(TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: 1_000,
        max_time: u64::MAX,
    });
    let xi = Xi::from_fraction(2, 1);
    let spread = instrument::max_clock_spread(sim.trace()).unwrap();
    assert!(abc::rational::Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi));
    // The extracted graph round-trips through the checker.
    let g = sim.trace().to_execution_graph();
    assert!(check::is_admissible(&g, &xi).unwrap());
}

#[test]
fn fd_detects_a_crash_and_elects_a_leader() {
    use abc::fd::{leader_from_suspects, FdResponder, PingPongDetector};
    use abc::sim::delay::BandDelay;
    use abc::sim::{CrashAt, RunLimits, Simulation};
    let mut sim = Simulation::new(BandDelay::new(10, 19, 1));
    sim.add_process(PingPongDetector::with_threshold(3, 4));
    sim.add_process(FdResponder);
    sim.add_faulty_process(CrashAt::new(FdResponder, 0));
    sim.run(RunLimits {
        max_events: 10_000,
        max_time: u64::MAX,
    });
    let d = sim.process_as::<PingPongDetector>(ProcessId(0)).unwrap();
    assert!(d.is_suspected(ProcessId(2)));
    assert!(!d.is_suspected(ProcessId(1)));
    let core: Vec<ProcessId> = (0..3).map(ProcessId).collect();
    let leader = leader_from_suspects(&core, d.history().last().unwrap().1);
    assert!(leader.is_some());
    assert_ne!(leader, Some(ProcessId(2)));
}

#[test]
fn consensus_reaches_agreement_over_lockstep_rounds() {
    let out =
        abc::consensus::harness::run_eig(4, 1, 1, &[1, 1, 1], &Xi::from_integer(2), 3, 60_000);
    assert!(out.terminated() && out.agreement() && out.validity());
}

#[test]
fn models_scenarios_separate_abc_from_theta() {
    use abc::models::{scenarios, theta};
    use abc::rational::Ratio;
    let (g, timed) = scenarios::spacecraft_growing_delays(6);
    assert!(check::is_admissible(&g, &Xi::from_integer(2)).unwrap());
    assert!(!theta::is_theta_admissible(
        &g,
        &timed,
        &Ratio::from_integer(50)
    ));
}

#[test]
fn variants_entry_points_are_wired() {
    use abc::variants::{doubling_boundary, restrict_to_core};
    assert!(doubling_boundary(1, 2) > doubling_boundary(1, 1));
    // Restricting a graph to a subset of its processes keeps it well-formed.
    let g = tiny_graph();
    let core: Vec<ProcessId> = vec![ProcessId(0), ProcessId(1)];
    let restricted = restrict_to_core(&g, &core);
    assert!(restricted.num_events() <= g.num_events());
    let _ = check::max_relevant_cycle_ratio(&restricted);
}

#[test]
fn vlsi_soc_clock_generation_keeps_the_xi_margin() {
    use abc::vlsi::{SoC, FPGA};
    let soc = SoC::new(2, 2, FPGA);
    let xi = Xi::from_integer(5);
    let run = soc.run_clock_generation(&xi, 21, 400);
    assert!(run.min_clock > 0);
    if let Some(margin) = &run.xi_margin {
        assert!(margin.to_f64() > 1.0);
    }
}

#[test]
fn service_round_trips_a_trace_over_loopback() {
    use abc::service::proto::offline_verdict;
    use abc::service::server::{start, ServerConfig};
    use abc::sim::delay::BandDelay;
    use abc::sim::{RunLimits, Simulation};

    let mut sim = Simulation::new(BandDelay::new(1, 6, 3));
    for _ in 0..4 {
        sim.add_process(abc::clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: 150,
        max_time: u64::MAX,
    });
    let trace = sim.trace().clone();
    let xi = Xi::from_fraction(3, 2);

    let handle = start(ServerConfig::default()).unwrap();
    let outcome =
        abc::service::feed_stream_text(&handle.addr().to_string(), &xi, &trace.to_stream_text())
            .unwrap();
    assert_eq!(
        outcome.verdict.to_string(),
        offline_verdict(&trace, &xi).unwrap().to_string()
    );
    handle.join();
}
