//! Runs the abc-lint pass over the real workspace in-process, so plain
//! `cargo test` enforces the same gate CI does: the tree must be clean
//! under `lint.conf`, and the policy file itself must be well-formed.

use std::path::Path;

use abc::lint::{lint_root, Config, RuleFilter, ALL_RULES};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_root(workspace_root(), &RuleFilter::all()).expect("workspace lints");
    assert!(
        report.is_clean(),
        "abc-lint found violations:\n{}",
        report.render_human()
    );
    assert_eq!(report.rules_run, ALL_RULES);
    // The walk reached the real tree, not an empty directory.
    assert!(
        report.files_checked > 50,
        "only {} files",
        report.files_checked
    );
}

#[test]
fn policy_file_is_well_formed_and_scoped() {
    let config = Config::load(workspace_root()).expect("lint.conf parses");
    // The declared scopes pin the untrusted decode paths and the service.
    assert!(Config::path_in(
        "crates/sim/src/binio.rs",
        &config.untrusted
    ));
    assert!(Config::path_in(
        "crates/service/src/session.rs",
        &config.untrusted
    ));
    assert!(Config::path_in(
        "crates/service/src/server.rs",
        &config.lockscope
    ));
    // Exactly one sanctioned unsafe occurrence: the SIGINT handler.
    assert_eq!(config.unsafe_registry.len(), 1);
    assert_eq!(
        config.unsafe_registry[0].path,
        "crates/service/src/signals.rs"
    );
    // Every suppression carries a written justification.
    for a in &config.allows {
        assert!(!a.justification.is_empty());
    }
    // The fixture tree (which violates everything on purpose) is excluded.
    assert!(Config::path_in(
        "crates/lint/fixtures/bad/src/r1.rs",
        &config.excludes
    ));
}
