//! Integration tests for fault-tolerance boundaries: the algorithms hold
//! at their stated resilience and visibly fail beyond it.

use abc::clocksync::{byzantine::TickRusher, instrument, TickGen};
use abc::consensus::harness;
use abc::core::Xi;
use abc::rational::Ratio;
use abc::sim::delay::BandDelay;
use abc::sim::{RunLimits, Simulation};

#[test]
fn clock_sync_holds_at_n_3f_plus_1() {
    // n = 7, f = 2 actual Byzantine rushers: all bounds hold.
    let xi = Xi::from_integer(2);
    let mut sim = Simulation::new(BandDelay::new(10, 19, 4));
    for _ in 0..5 {
        sim.add_process(TickGen::new(7, 2));
    }
    sim.add_faulty_process(TickRusher::new(3));
    sim.add_faulty_process(TickRusher::new(9));
    sim.run(RunLimits {
        max_events: 300_000,
        max_time: 2_000,
    });
    let spread = instrument::max_clock_spread(sim.trace()).unwrap();
    assert!(Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi));
    assert!(instrument::min_final_clock(sim.trace()).unwrap() > 10);
}

#[test]
fn clock_sync_breaks_beyond_f() {
    // Same system but THREE rushers against an f = 2 configuration (n = 7
    // needs n >= 3f+1 = 7 for f = 2; three actual faults exceed the
    // budget): the catch-up quorum f+1 = 3 is reachable by liars alone and
    // correct clocks get dragged far ahead of the correct pace.
    let mut sim = Simulation::new(BandDelay::new(10, 19, 4));
    for _ in 0..4 {
        sim.add_process(TickGen::new(7, 2));
    }
    for _ in 0..3 {
        sim.add_faulty_process(TickRusher::new(1_000));
    }
    sim.run(RunLimits {
        max_events: 100_000,
        max_time: 500,
    });
    let max_clock = sim
        .trace()
        .events()
        .iter()
        .filter(|e| !sim.trace().is_faulty(e.process))
        .filter_map(|e| e.label)
        .max()
        .unwrap();
    assert!(
        max_clock >= 1_000,
        "three rushers should catapult clocks, got {max_clock}"
    );
}

#[test]
fn eig_fails_open_with_too_many_byzantine() {
    // n = 4 built for f = 1 but TWO equivocators: agreement between the
    // two remaining correct processes is no longer guaranteed by the
    // algorithm (n > 3f fails). We only check the run completes — the
    // outcome may or may not agree — and that the f = 1 configuration
    // still works on the same seeds (the contrast matters).
    let xi = Xi::from_integer(2);
    let good = harness::run_eig(4, 1, 1, &[0, 1, 1], &xi, 11, 60_000);
    assert!(good.terminated() && good.agreement());
    // With 2 liars the harness still runs; decisions exist but are
    // untrusted. (EIG's guarantee is void; do not assert agreement.)
    let risky = harness::run_eig(4, 1, 2, &[0, 1], &xi, 11, 60_000);
    assert!(risky.terminated(), "{risky:?}");
}

#[test]
fn crashed_majority_still_lets_survivors_decide() {
    let xi = Xi::from_integer(2);
    // n = 4, f = 1 crash budget, exactly one crash: fine.
    let out = harness::run_floodset(4, 1, &[(2, 3)], &[9, 9, 9, 9], &xi, 6, 60_000);
    assert!(out.terminated() && out.agreement() && out.validity());
    assert_eq!(out.decisions[0].1, Some(9));
}
