//! Integration tests for the Section 5 model-relation claims: inclusions
//! hold in the proven direction and fail in the other, on executions
//! produced by the real simulator and the scenario constructions.

use abc::core::{check, Xi};
use abc::models::{mcm, parsync, scenarios, theta};
use abc::rational::Ratio;

#[test]
fn theorem6_direction_holds_and_converse_fails() {
    // Direction MΘ ⊆ MABC: any Θ-band execution satisfies ABC for Ξ > Θ —
    // exercised elsewhere on simulated traces; here the converse: an
    // ABC-admissible execution that is NOT Θ-admissible for any useful Θ.
    let (g, timed) = scenarios::spacecraft_growing_delays(10);
    assert!(check::is_admissible(&g, &Xi::from_integer(2)).unwrap());
    // Θ would need to exceed the (growing) overlap ratio — far beyond any
    // sane bound.
    assert!(!theta::is_theta_admissible(
        &g,
        &timed,
        &Ratio::from_integer(100)
    ));
}

#[test]
fn parsync_cannot_express_fig8_but_abc_can() {
    for phi in [2u64, 8] {
        for delta in [2u64, 8] {
            let params = parsync::ParSyncParams { phi, delta };
            let (abc_ok, verdict) = parsync::fig8_game(&params, &Xi::from_fraction(3, 2));
            assert!(abc_ok);
            assert!(!verdict.admissible);
        }
    }
}

#[test]
fn mcm_classification_exists_for_separated_bands_only() {
    // Bimodal delays classify; a dense band does not (other than all-fast).
    let (g, timed) = scenarios::fig9_compensated_paths();
    // Fig 9 delays: {2, 10, 38}: 38 > 2*10? no... 10 > 2*2 yes: split
    // after the 2s. A two-class classification exists.
    assert!(mcm::has_two_class_classification(&g, &timed));
}

#[test]
fn fifo_strength_scales_inversely_with_xi() {
    let (_in_order, reordered) = scenarios::fig10_fifo();
    // The reordered execution has a ratio-5 cycle: admissible iff Xi > 5.
    assert!(!check::is_admissible(&reordered, &Xi::from_integer(4)).unwrap());
    assert!(!check::is_admissible(&reordered, &Xi::from_integer(5)).unwrap());
    assert!(check::is_admissible(&reordered, &Xi::from_fraction(51, 10)).unwrap());
}

#[test]
fn abc_weaker_than_theta_in_executions() {
    // Every relevant-cycle-free or banded execution that satisfies Θ also
    // satisfies ABC (Thm 6); but the ABC-admissible Fig 9 execution has
    // per-transit ratio 19 (zero-ish margins), inadmissible for Θ = 3.
    let (g, timed) = scenarios::fig9_compensated_paths();
    assert!(check::is_admissible(&g, &Xi::from_fraction(11, 10)).unwrap());
    assert!(!theta::is_theta_admissible(
        &g,
        &timed,
        &Ratio::from_integer(3)
    ));
}
