//! End-to-end integration: simulate → extract graph → check → assign
//! delays → verify Θ-admissibility, across crates.

use abc::clocksync::TickGen;
use abc::core::assign::assign_delays;
use abc::core::{check, Xi};
use abc::rational::Ratio;
use abc::sim::delay::{BandDelay, GrowingDelay};
use abc::sim::{RunLimits, Simulation};

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> abc::sim::Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

#[test]
fn simulate_check_assign_pipeline() {
    let trace = clocksync_trace(10, 19, 5, 500);
    let g = trace.to_execution_graph();
    // Band [10, 19] guarantees admissibility for Xi slightly above 19/10.
    let xi = Xi::from_fraction(2, 1);
    assert!(check::is_admissible(&g, &xi).unwrap());
    // Theorem 7: the ABC-admissible trace admits a normalized assignment...
    let timed = assign_delays(&g, &xi).unwrap();
    assert!(timed.is_normalized(&g, &xi));
    // ...whose Θ is bounded by Xi, connecting back to the Θ-Model.
    assert!(timed.is_theta_admissible(&g, xi.as_ratio()));
}

#[test]
fn real_times_vs_assigned_times_are_both_valid() {
    let trace = clocksync_trace(10, 19, 8, 400);
    let g = trace.to_execution_graph();
    // The trace's *real* occurrence times form a valid timed graph too.
    let real = trace.to_timed_graph();
    real.validate(&g).unwrap();
    // Its observed Theta is within the delay band's ratio (plus tie fuzz).
    if let Some(Some(theta)) = real.max_theta_ratio(&g) {
        assert!(theta < Ratio::new(21, 10), "observed theta {theta}");
        // Theorem 6's quantitative core: cycle ratios are bounded by the
        // observed Theta.
        if let Some(r) = check::max_relevant_cycle_ratio(&g).unwrap() {
            assert!(r <= theta, "cycle ratio {r} vs theta {theta}");
        }
    }
}

#[test]
fn growing_delays_stay_admissible_with_banded_ratio() {
    // GrowingDelay keeps pairwise ratios around hi/lo while delays grow
    // without bound: ABC admissibility survives where delay bounds die.
    let mut sim = Simulation::new(GrowingDelay::new(10, 19, 500, 3));
    for _ in 0..4 {
        sim.add_process(TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: 1_000,
        max_time: u64::MAX,
    });
    let g = sim.trace().to_execution_graph();
    let ratio = check::max_relevant_cycle_ratio(&g).unwrap();
    // Messages sent at nearby times have delay ratio < 1.9 * growth-slack;
    // growth over one in-flight window at tau=500 is mild. Allow 3.
    if let Some(r) = &ratio {
        assert!(r < &Ratio::from_integer(3), "ratio {r}");
    }
    // Delays really did grow: late messages are much slower than early.
    let trace = sim.trace();
    let (mut first, mut last) = (None, None);
    for m in trace.messages() {
        if let Some(rt) = m.recv_time {
            let d = rt - m.send_time;
            if first.is_none() {
                first = Some(d);
            }
            last = Some(d);
        }
    }
    assert!(last.unwrap() > first.unwrap() * 2, "delays grew");
}

#[test]
fn violating_schedule_is_caught_and_refused() {
    // Hand-build a trace-like graph that violates Xi = 2, then confirm the
    // checker and the assigner agree it is inadmissible.
    use abc::core::graph::{ExecutionGraph, ProcessId};
    let mut b = ExecutionGraph::builder(4);
    let q = b.init(ProcessId(0));
    for i in 1..4 {
        b.init(ProcessId(i));
    }
    let (_, r) = b.send(q, ProcessId(2));
    let (_, s) = b.send(r, ProcessId(3));
    b.send(s, ProcessId(1));
    b.send(q, ProcessId(1)); // spans a 3-message chain: ratio 3
    let g = b.finish();
    let xi = Xi::from_integer(2);
    assert!(!check::is_admissible(&g, &xi).unwrap());
    let err = assign_delays(&g, &xi).unwrap_err();
    match err {
        abc::core::assign::AssignError::NotAdmissible(cycle) => {
            assert!(cycle.classify().violates(&xi));
        }
        other => panic!("unexpected: {other}"),
    }
}
