//! Property tests for the incremental ABC monitor: after *every* appended
//! event, [`abc_core::monitor::IncrementalChecker`] must agree with the
//! batch checker — and, on small graphs, with brute-force enumeration.

use abc_core::check;
use abc_core::enumerate::{enumerate_relevant_cycles, EnumerationLimits};
use abc_core::graph::{EventId, ProcessId};
use abc_core::monitor::IncrementalChecker;
use abc_core::Xi;
use abc_rational::Ratio;
use proptest::prelude::*;

/// A random build script: `(sender_event, receiver_process)` pairs reduced
/// modulo the current state, as in the `abc-core` checker proptests.
type Script = Vec<(usize, usize)>;

fn script_strategy() -> impl Strategy<Value = (usize, Script)> {
    (
        2usize..5,
        proptest::collection::vec((any::<usize>(), any::<usize>()), 0..12),
    )
}

fn xi_strategy() -> impl Strategy<Value = Xi> {
    (1i64..8, 1i64..5)
        .prop_filter("Xi > 1", |(num, den)| num > den)
        .prop_map(|(num, den)| Xi::new(Ratio::new(num, den)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming the script through the monitor matches re-running the
    /// batch checker from scratch at every single prefix.
    #[test]
    fn monitor_agrees_with_batch_at_every_prefix(
        (n, script) in script_strategy(),
        xi in xi_strategy(),
    ) {
        let mut mon = IncrementalChecker::new(n, &xi).unwrap();
        for p in 0..n {
            mon.append_init(ProcessId(p));
            prop_assert!(mon.is_admissible(), "init events cannot violate");
        }
        for &(from, to) in &script {
            let from_event = EventId(from % mon.graph().num_events());
            mon.append_send(from_event, ProcessId(to % n));
            let batch = check::is_admissible(mon.graph(), &xi).unwrap();
            prop_assert_eq!(
                mon.is_admissible(),
                batch,
                "prefix of {} events: monitor {} vs batch {}",
                mon.graph().num_events(),
                mon.is_admissible(),
                batch
            );
            if let Some(w) = mon.violation() {
                prop_assert!(w.validate(mon.graph()).is_ok());
                prop_assert!(w.classify().violates(&xi));
            }
        }
    }

    /// On completed small graphs, the monitor's verdict also matches the
    /// enumeration ground truth: violated iff some relevant cycle has
    /// ratio >= Xi.
    #[test]
    fn monitor_agrees_with_enumeration(
        (n, script) in script_strategy(),
        xi in xi_strategy(),
    ) {
        let mut mon = IncrementalChecker::new(n, &xi).unwrap();
        for p in 0..n {
            mon.append_init(ProcessId(p));
        }
        for &(from, to) in &script {
            let from_event = EventId(from % mon.graph().num_events());
            mon.append_send(from_event, ProcessId(to % n));
        }
        let brute_max = enumerate_relevant_cycles(mon.graph(), EnumerationLimits::default())
            .cycles
            .iter()
            .filter_map(|c| c.classify().ratio())
            .max();
        let violated_by_enumeration =
            brute_max.as_ref().is_some_and(|r| r >= xi.as_ratio());
        prop_assert_eq!(!mon.is_admissible(), violated_by_enumeration);
    }

    /// Replaying a finished graph through `from_graph` gives the same
    /// verdict as streaming it event by event, and the same graph.
    #[test]
    fn from_graph_equals_streaming(
        (n, script) in script_strategy(),
        xi in xi_strategy(),
    ) {
        let mut mon = IncrementalChecker::new(n, &xi).unwrap();
        for p in 0..n {
            mon.append_init(ProcessId(p));
        }
        for &(from, to) in &script {
            let from_event = EventId(from % mon.graph().num_events());
            mon.append_send(from_event, ProcessId(to % n));
        }
        let replayed = IncrementalChecker::from_graph(mon.graph(), &xi).unwrap();
        prop_assert_eq!(replayed.graph(), mon.graph());
        prop_assert_eq!(replayed.is_admissible(), mon.is_admissible());
    }

    /// Faulty processes declared up front are exempt in both the monitor
    /// and the batch checker.
    #[test]
    fn monitor_handles_faulty_processes(
        (n, script) in script_strategy(),
        xi in xi_strategy(),
        faulty_pick in any::<usize>(),
    ) {
        let faulty = ProcessId(faulty_pick % n);
        let mut mon = IncrementalChecker::new(n, &xi).unwrap();
        mon.mark_faulty(faulty);
        for p in 0..n {
            mon.append_init(ProcessId(p));
        }
        for &(from, to) in &script {
            let from_event = EventId(from % mon.graph().num_events());
            mon.append_send(from_event, ProcessId(to % n));
            prop_assert_eq!(
                mon.is_admissible(),
                check::is_admissible(mon.graph(), &xi).unwrap()
            );
        }
        prop_assert!(mon.graph().is_faulty(faulty));
    }
}
