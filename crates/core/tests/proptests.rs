//! Property tests for `abc-core`: the polynomial checker against
//! brute-force enumeration, Theorem 7 assignments, Corollary 1 on random
//! cycle sums, and cut invariants — on randomly generated execution graphs.

use abc_core::assign::{assign_delays, AssignError};
use abc_core::check;
use abc_core::cut::{causal_past, cut_interval, Cut};
use abc_core::cyclespace::{decompose, CycleVector};
use abc_core::enumerate::{enumerate_relevant_cycles, EnumerationLimits};
use abc_core::graph::{EventId, ExecutionGraph, ProcessId};
use abc_core::Xi;
use abc_rational::Ratio;
use proptest::prelude::*;

/// Builds a random message-driven execution graph from a script of
/// `(sender_event, receiver_process)` pairs (reduced modulo the current
/// state), over `n` processes.
fn build_graph(n: usize, script: &[(usize, usize)]) -> ExecutionGraph {
    let mut b = ExecutionGraph::builder(n);
    for p in 0..n {
        b.init(ProcessId(p));
    }
    for &(from, to) in script {
        let from_event = EventId(from % b.num_events());
        let to_process = ProcessId(to % n);
        b.send(from_event, to_process);
    }
    b.finish()
}

fn graph_strategy() -> impl Strategy<Value = ExecutionGraph> {
    (
        2usize..5,
        proptest::collection::vec((any::<usize>(), any::<usize>()), 0..12),
    )
        .prop_map(|(n, script)| build_graph(n, &script))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The polynomial max-ratio equals the brute-force maximum over all
    /// enumerated relevant cycles.
    #[test]
    fn checker_matches_enumeration(g in graph_strategy()) {
        let brute = enumerate_relevant_cycles(&g, EnumerationLimits::default())
            .cycles
            .iter()
            .filter_map(|c| c.classify().ratio())
            .max();
        prop_assert_eq!(check::max_relevant_cycle_ratio(&g).unwrap(), brute);
    }

    /// `is_admissible(g, Ξ)` iff `max_ratio(g) < Ξ` — and `has_relevant_cycle`
    /// agrees with the enumeration.
    #[test]
    fn admissibility_iff_ratio_below_xi(
        g in graph_strategy(),
        num in 5i64..40,
        den in 1i64..5,
    ) {
        prop_assume!(num > den); // Xi > 1
        let xi = Xi::new(Ratio::new(num, den)).unwrap();
        let max = check::max_relevant_cycle_ratio(&g).unwrap();
        let admissible = check::is_admissible(&g, &xi).unwrap();
        match &max {
            None => prop_assert!(admissible),
            Some(r) => prop_assert_eq!(admissible, r < xi.as_ratio()),
        }
        prop_assert_eq!(check::has_relevant_cycle(&g), max.is_some());
    }

    /// A violation witness, when produced, is a valid relevant cycle with
    /// ratio at least Ξ.
    #[test]
    fn violation_witnesses_are_valid(g in graph_strategy()) {
        let xi = Xi::from_fraction(3, 2);
        if let Some(w) = check::find_violation(&g, &xi).unwrap() {
            prop_assert!(w.validate(&g).is_ok());
            let c = w.classify();
            prop_assert!(c.relevant);
            prop_assert!(c.ratio().unwrap() >= Ratio::new(3, 2));
        }
    }

    /// Theorem 7 end to end: an assignment exists iff the graph is
    /// admissible; when it exists it is normalized and Θ-admissible for
    /// Θ = Ξ; when it does not, the witness violates.
    #[test]
    fn theorem7_assignment(g in graph_strategy(), num in 3i64..9, den in 1i64..4) {
        prop_assume!(num > den);
        let xi = Xi::new(Ratio::new(num, den)).unwrap();
        let admissible = check::is_admissible(&g, &xi).unwrap();
        match assign_delays(&g, &xi) {
            Ok(timed) => {
                prop_assert!(admissible);
                prop_assert!(timed.is_normalized(&g, &xi));
                prop_assert!(timed.is_theta_admissible(&g, xi.as_ratio()));
            }
            Err(AssignError::NotAdmissible(cycle)) => {
                prop_assert!(!admissible);
                prop_assert!(cycle.validate(&g).is_ok());
                prop_assert!(cycle.classify().violates(&xi));
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// Corollary 1: any non-negative integer combination of relevant cycles
    /// of an admissible graph satisfies |C−|/|C+| < Ξ (for Ξ strictly above
    /// the graph's max ratio), and the Eulerian decomposition round-trips
    /// the mass with every peel passing the case analysis.
    #[test]
    fn corollary1_on_random_sums(
        g in graph_strategy(),
        picks in proptest::collection::vec((any::<usize>(), 1i64..4), 1..5),
    ) {
        let relevant = enumerate_relevant_cycles(&g, EnumerationLimits::default()).cycles;
        prop_assume!(!relevant.is_empty());
        let max = check::max_relevant_cycle_ratio(&g).unwrap().unwrap();
        // Xi strictly above the max ratio: the graph is ABC-admissible.
        let xi = Xi::new(&max + &Ratio::new(1, 3)).unwrap();
        let mut sum = CycleVector::zero();
        for (idx, lambda) in &picks {
            let z = CycleVector::from_cycle(&relevant[idx % relevant.len()]);
            sum = sum.add(&z.scale(*lambda));
        }
        prop_assert!(sum.satisfies_corollary1(&xi), "sum ratio {:?} vs Xi {}", sum.ratio(), xi);
        let peels = decompose(&g, &sum).unwrap();
        let fwd: usize = peels.iter().map(|p| p.forward.len()).sum();
        let bwd: usize = peels.iter().map(|p| p.backward.len()).sum();
        prop_assert_eq!(fwd as i64, sum.forward_mass());
        prop_assert_eq!(bwd as i64, sum.backward_mass());
        // Note: Theorem 11 guarantees that a mixed-free decomposition whose
        // peels all pass the case analysis EXISTS; a greedy Eulerian peel
        // need not find that particular one, so only the sum-level claim
        // (Corollary 1, asserted above) and mass conservation are invariant.
        prop_assert!(peels.iter().all(|p| !p.forward.is_empty() || !p.backward.is_empty()));
    }

    /// Causal pasts are left-closed consistent-cut material, and cut
    /// intervals decompose as differences of pasts.
    #[test]
    fn cut_invariants(g in graph_strategy(), a in any::<usize>(), b in any::<usize>()) {
        prop_assume!(g.num_events() > 0);
        let ea = EventId(a % g.num_events());
        let eb = EventId(b % g.num_events());
        let past = causal_past(&g, ea);
        let cut = Cut::new(past.clone());
        prop_assert!(cut.is_left_closed(&g));
        prop_assert!(past.contains(ea));
        // Monotonicity: if ea *-> eb then ⟨ea⟩ ⊆ ⟨eb⟩.
        if g.happens_before(ea, eb) {
            prop_assert!(past.is_subset(&causal_past(&g, eb)));
            let interval = cut_interval(&g, ea, eb);
            prop_assert!(!interval.contains(ea));
            if ea != eb {
                prop_assert!(interval.contains(eb));
            }
        }
    }

    /// Exempting every message of a violating graph always restores
    /// admissibility (the dropping hook of Section 2).
    #[test]
    fn exempting_all_messages_restores_admissibility(g in graph_strategy()) {
        let xi = Xi::from_fraction(6, 5);
        prop_assume!(!check::is_admissible(&g, &xi).unwrap());
        // Rebuild with every message exempt.
        let mut b = ExecutionGraph::builder(g.num_processes());
        for p in 0..g.num_processes() {
            b.init(ProcessId(p));
        }
        for m in g.messages() {
            let (mid, _) = b.send(m.from, m.receiver);
            b.set_exempt(mid);
        }
        let g2 = b.finish();
        prop_assert!(check::is_admissible(&g2, &xi).unwrap());
    }
}
