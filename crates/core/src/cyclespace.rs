//! The paper's non-standard cycle space (Section 4.1).
//!
//! The Theorem 7 feasibility proof works in a vector space spanned by the
//! *oriented* cycles of the execution graph: each cycle `Z` maps to a
//! **cycle vector** with coefficient `+1` on its backward messages `Z−` and
//! `−1` on its forward messages `Z+` (local edges are dropped; Fig. 7 of
//! the paper shows two examples). Addition `⊕` is coefficient-wise; a
//! message oriented oppositely in two cycles (a *mixed edge*, like `e` in
//! Fig. 2) cancels.
//!
//! The paper's Lemmas 8–10 and Theorem 11 show that any ⊕-sum of relevant
//! cycles can be rewritten as a sum of cycles without mixed edges, from
//! which Corollary 1 follows: every non-negative integer combination `C` of
//! relevant cycle vectors satisfies `|C−|/|C+| < Ξ`. This module makes that
//! machinery executable:
//!
//! * [`CycleVector`] with `⊕` ([`CycleVector::add`]) and scalar scaling,
//! * the consistency relations of Definition 10,
//! * [`decompose`]: an Eulerian peeling of a cycle-space element into
//!   closed walks, witnessing that the element is a genuine ⊕-combination
//!   (per-process traversal balance). Theorem 11 guarantees that *some*
//!   decomposition is mixed-free with every piece passing the Corollary 1
//!   case analysis ([`PeeledCycle::satisfies_corollary1_case`]); the
//!   greedy peel exhibits the balance structure, while Corollary 1 itself
//!   is checked directly on sums ([`CycleVector::satisfies_corollary1`]).

use std::collections::BTreeMap;

use abc_rational::Ratio;

use crate::cycle::Cycle;
use crate::graph::{ExecutionGraph, MessageId, ProcessId};
use crate::xi::Xi;

/// A cycle-space element: integer coefficients per message
/// (`+1`·backward, `−1`·forward for a single cycle).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleVector {
    coeffs: BTreeMap<MessageId, i64>,
}

/// The Definition 10 consistency relation between two cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// No common messages (i-consistent by definition).
    Disjoint,
    /// All common messages identically oriented.
    IConsistent,
    /// All common messages oppositely oriented.
    OConsistent,
    /// Common messages with both orientations: not consistent.
    Inconsistent,
}

impl CycleVector {
    /// The zero vector.
    #[must_use]
    pub fn zero() -> CycleVector {
        CycleVector::default()
    }

    /// Builds the cycle vector of `cycle` per the paper's convention:
    /// `+1` for each backward message, `−1` for each forward message,
    /// relative to the Definition 3 orientation.
    #[must_use]
    pub fn from_cycle(cycle: &Cycle) -> CycleVector {
        let class = cycle.classify();
        let mut coeffs = BTreeMap::new();
        for (m, against_walk) in cycle.messages() {
            // `against_walk` is relative to the walk; flip if the chosen
            // orientation reverses the walk. Backward (traversed against
            // the orientation) => +1.
            let against_orientation = against_walk != class.orientation_reversed;
            let c: i64 = if against_orientation { 1 } else { -1 };
            *coeffs.entry(m).or_insert(0) += c;
        }
        coeffs.retain(|_, c| *c != 0);
        CycleVector { coeffs }
    }

    /// Coefficient of a message (0 if absent).
    #[must_use]
    pub fn coeff(&self, m: MessageId) -> i64 {
        self.coeffs.get(&m).copied().unwrap_or(0)
    }

    /// The non-zero entries.
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, i64)> + '_ {
        self.coeffs.iter().map(|(m, c)| (*m, *c))
    }

    /// Number of messages with non-zero coefficient.
    #[must_use]
    pub fn support_len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the vector is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `⊕`: coefficient-wise addition with cancellation of mixed edges.
    #[must_use]
    pub fn add(&self, other: &CycleVector) -> CycleVector {
        let mut coeffs = self.coeffs.clone();
        for (m, c) in &other.coeffs {
            *coeffs.entry(*m).or_insert(0) += c;
        }
        coeffs.retain(|_, c| *c != 0);
        CycleVector { coeffs }
    }

    /// Scales by a non-negative integer (`λ·Z` in the paper).
    #[must_use]
    pub fn scale(&self, lambda: i64) -> CycleVector {
        assert!(
            lambda >= 0,
            "cycle combinations use non-negative coefficients"
        );
        if lambda == 0 {
            return CycleVector::zero();
        }
        CycleVector {
            coeffs: self.coeffs.iter().map(|(m, c)| (*m, c * lambda)).collect(),
        }
    }

    /// `|C−|`: total positive coefficient mass (backward multiplicity).
    #[must_use]
    pub fn backward_mass(&self) -> i64 {
        self.coeffs.values().filter(|c| **c > 0).sum()
    }

    /// `|C+|`: total negative coefficient mass, as a positive number
    /// (forward multiplicity).
    #[must_use]
    pub fn forward_mass(&self) -> i64 {
        -self.coeffs.values().filter(|c| **c < 0).sum::<i64>()
    }

    /// `|C−|/|C+|`, or `None` when `|C+| = 0`.
    #[must_use]
    pub fn ratio(&self) -> Option<Ratio> {
        let f = self.forward_mass();
        (f > 0).then(|| Ratio::new(self.backward_mass(), f))
    }

    /// Corollary 1's conclusion for this element: `|C−|/|C+| < Ξ`
    /// (vacuously true for the zero vector; false when `|C+| = 0 ≠ |C−|`).
    #[must_use]
    pub fn satisfies_corollary1(&self, xi: &Xi) -> bool {
        if self.is_zero() {
            return true;
        }
        match self.ratio() {
            Some(r) => &r < xi.as_ratio(),
            None => false,
        }
    }

    /// The Definition 10 consistency of two cycle vectors.
    #[must_use]
    pub fn consistency(&self, other: &CycleVector) -> Consistency {
        let mut same = false;
        let mut opposite = false;
        for (m, c) in &self.coeffs {
            if let Some(d) = other.coeffs.get(m) {
                if c.signum() == d.signum() {
                    same = true;
                } else {
                    opposite = true;
                }
            }
        }
        match (same, opposite) {
            (false, false) => Consistency::Disjoint,
            (true, false) => Consistency::IConsistent,
            (false, true) => Consistency::OConsistent,
            (true, true) => Consistency::Inconsistent,
        }
    }
}

/// One closed walk peeled out of a cycle-space element by [`decompose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeeledCycle {
    /// Messages traversed forward (with their direction), with multiplicity.
    pub forward: Vec<MessageId>,
    /// Messages traversed backward, with multiplicity.
    pub backward: Vec<MessageId>,
}

impl PeeledCycle {
    /// The Corollary 1 case analysis for this peel: either it is
    /// "relevant-like" with `|M−|/|M+| < Ξ`, or its orientation is reversed
    /// w.r.t. the sum (`|M+| ≥ |M−|` contributes ratio ≤ 1 < Ξ).
    #[must_use]
    pub fn satisfies_corollary1_case(&self, xi: &Xi) -> bool {
        let f = self.forward.len() as i64;
        let b = self.backward.len() as i64;
        if f >= b {
            // Case 2: reversed orientation; contributes at most ratio 1.
            return true;
        }
        // Case 1: relevant-like; needs b/f < Ξ with f >= 1.
        f > 0 && &Ratio::new(b, f) < xi.as_ratio()
    }
}

/// Errors from [`decompose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecomposeError {
    /// The element is not a valid cycle-space member: some process has
    /// unbalanced in/out traversal degree.
    Unbalanced(ProcessId),
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::Unbalanced(p) => {
                write!(
                    f,
                    "traversal degree of {p} is unbalanced: not a cycle-space element"
                )
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Decomposes a cycle-space element into closed walks over the process
/// graph (Eulerian peeling) — the executable counterpart of the paper's
/// mixed-free decomposition (Theorem 11).
///
/// Each message with coefficient `c > 0` contributes `c` backward-traversal
/// arcs (receiver's process → sender's process); `c < 0` contributes `|c|`
/// forward arcs. The multiset is balanced per process for genuine ⊕-sums of
/// cycles; [`DecomposeError::Unbalanced`] flags anything else. The returned
/// peels partition the arc multiset exactly.
///
/// # Errors
///
/// [`DecomposeError::Unbalanced`] if the element is not a sum of cycles.
pub fn decompose(
    g: &ExecutionGraph,
    element: &CycleVector,
) -> Result<Vec<PeeledCycle>, DecomposeError> {
    // Build the process-level arc multiset.
    #[derive(Clone, Copy)]
    struct PArc {
        to: usize,
        msg: MessageId,
        forward: bool,
    }
    let n = g.num_processes();
    let mut out_arcs: Vec<Vec<PArc>> = vec![Vec::new(); n];
    let mut degree: Vec<i64> = vec![0; n];
    for (m, c) in element.iter() {
        let msg = g.message(m);
        let (from, to, forward, count) = if c > 0 {
            (msg.receiver.0, msg.sender.0, false, c)
        } else {
            (msg.sender.0, msg.receiver.0, true, -c)
        };
        for _ in 0..count {
            out_arcs[from].push(PArc {
                to,
                msg: m,
                forward,
            });
            degree[from] += 1;
            degree[to] -= 1;
        }
    }
    // Balance check: every process must have equal in- and out-degree.
    // (degree tracks out - in.)
    let mut indeg = vec![0i64; n];
    for (p, arcs) in out_arcs.iter().enumerate() {
        for a in arcs {
            indeg[a.to] += 1;
        }
        let _ = p;
    }
    for p in 0..n {
        if out_arcs[p].len() as i64 != indeg[p] {
            return Err(DecomposeError::Unbalanced(ProcessId(p)));
        }
    }
    // Hierholzer peeling: repeatedly walk unused arcs until returning to the
    // start process; each closed walk is one peel.
    let mut next_unused: Vec<usize> = vec![0; n];
    let mut peels = Vec::new();
    for start in 0..n {
        while next_unused[start] < out_arcs[start].len() {
            let mut walk_fwd = Vec::new();
            let mut walk_bwd = Vec::new();
            let mut cur = start;
            loop {
                let idx = next_unused[cur];
                debug_assert!(
                    idx < out_arcs[cur].len(),
                    "balanced graphs cannot strand a walk"
                );
                let arc = out_arcs[cur][idx];
                next_unused[cur] += 1;
                if arc.forward {
                    walk_fwd.push(arc.msg);
                } else {
                    walk_bwd.push(arc.msg);
                }
                cur = arc.to;
                if cur == start && next_unused[cur] >= out_arcs[cur].len() {
                    break;
                }
                if cur == start {
                    // Could continue, but closing here keeps peels small;
                    // continue only if the start still has unused arcs and
                    // we want maximal circuits. Close eagerly.
                    break;
                }
            }
            peels.push(PeeledCycle {
                forward: walk_fwd,
                backward: walk_bwd,
            });
        }
    }
    Ok(peels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CycleStep, ShadowEdge};
    use crate::graph::{EventId, ExecutionGraph, LocalEdge};

    fn msg(m: MessageId, against: bool) -> CycleStep {
        CycleStep {
            edge: ShadowEdge::Message(m),
            against,
        }
    }

    fn local(from: EventId, to: EventId, against: bool) -> CycleStep {
        CycleStep {
            edge: ShadowEdge::Local(LocalEdge { from, to }),
            against,
        }
    }

    /// Figure 2 of the paper: relevant cycles X and Y share message `e`,
    /// forward in X and backward in Y; `e` cancels in X ⊕ Y.
    ///
    /// Construction (processes q, p, r, s):
    ///   X: fast chain q → r → p (m1, m2) spanned by e = q → p arriving
    ///      later: relevant, ratio 2, e ∈ X+.
    ///   Y: fast chain q → p → s (e, m3) spanned by m5 = q → s arriving
    ///      later: relevant, ratio 2, e ∈ Y−.
    /// The combined cycle X ⊕ Y (all edges except e) is the relevant cycle
    /// "chain q → r → p → s spanned by m5", ratio 3.
    fn fig2_like() -> (ExecutionGraph, Cycle, Cycle, MessageId) {
        // Processes: 0 = q, 1 = p, 2 = r, 3 = s.
        let mut b = ExecutionGraph::builder(4);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        b.init(ProcessId(3));
        let (m1, r1) = b.send(q0, ProcessId(2)); // q -> r
        let (m2, p1) = b.send(r1, ProcessId(1)); // r -> p (fast, first at p)
        let (e, p2) = b.send(q0, ProcessId(1)); // shared message e (later at p)
        let (m3, s1) = b.send(p2, ProcessId(3)); // p -> s (continues from e)
        let (m5, s2) = b.send(q0, ProcessId(3)); // q -> s (slow, later at s)
        let g = b.finish();
        // X: e forward (q0 -> p2), local p2 -> p1 backward, m2 and m1 back.
        let x = Cycle::new(vec![
            msg(e, false),
            local(p1, p2, true),
            msg(m2, true),
            msg(m1, true),
        ]);
        x.validate(&g).expect("X is well-formed");
        // Y: m5 forward (q0 -> s2), local s2 -> s1 backward, m3 and e back.
        let y = Cycle::new(vec![
            msg(m5, false),
            local(s1, s2, true),
            msg(m3, true),
            msg(e, true),
        ]);
        y.validate(&g).expect("Y is well-formed");
        (g, x, y, e)
    }

    #[test]
    fn cycle_vector_signs_follow_orientation() {
        let (_g, x, _y, e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        // X: e is the lone forward message (coefficient -1), m1 and m2 are
        // backward (+1).
        assert_eq!(zx.coeff(e), -1);
        assert_eq!(zx.backward_mass(), 2);
        assert_eq!(zx.forward_mass(), 1);
        assert_eq!(zx.ratio(), Some(Ratio::from_integer(2)));
    }

    #[test]
    fn mixed_edge_cancels_in_sum() {
        let (_g, x, y, e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        let zy = CycleVector::from_cycle(&y);
        // Both X and Y are relevant with ratio 2; e is forward in X (−1)
        // and backward in Y (+1): o-consistent, and e cancels in X ⊕ Y.
        assert!(x.classify().relevant && y.classify().relevant);
        assert_eq!(zx.coeff(e), -1);
        assert_eq!(zy.coeff(e), 1);
        assert_eq!(zx.consistency(&zy), Consistency::OConsistent);
        let sum = zx.add(&zy);
        assert_eq!(sum.coeff(e), 0, "mixed edge must cancel in X ⊕ Y");
        // The combined cycle is the ratio-3 relevant cycle of the graph.
        assert_eq!(sum.ratio(), Some(Ratio::from_integer(3)));
    }

    #[test]
    fn add_and_scale_are_coefficientwise() {
        let (_g, x, _y, _e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        let doubled = zx.add(&zx);
        assert_eq!(doubled, zx.scale(2));
        assert_eq!(doubled.backward_mass(), 4);
        assert_eq!(zx.scale(0), CycleVector::zero());
        assert!(CycleVector::zero().is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scaling_is_rejected() {
        let (_g, x, _y, _e) = fig2_like();
        let _ = CycleVector::from_cycle(&x).scale(-1);
    }

    #[test]
    fn corollary1_for_sums_of_relevant_cycles() {
        let (g, x, _y, _e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        // X alone: ratio 2 < Ξ for Ξ = 3.
        assert!(zx.satisfies_corollary1(&Xi::from_integer(3)));
        assert!(!zx.satisfies_corollary1(&Xi::from_integer(2)));
        // Scaled sums keep the ratio.
        assert!(zx.scale(5).satisfies_corollary1(&Xi::from_integer(3)));
        let _ = g;
    }

    #[test]
    fn decompose_round_trips_the_mass() {
        let (g, x, y, _e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        let zy = CycleVector::from_cycle(&y);
        let sum = zx.add(&zy);
        // The graph's maximum relevant-cycle ratio is 3 (the combined
        // cycle), so the graph is ABC-admissible for Ξ = 7/2 and
        // Corollary 1 applies with that Ξ.
        let xi = Xi::from_fraction(7, 2);
        assert!(sum.satisfies_corollary1(&xi));
        let peels = decompose(&g, &sum).expect("sums of cycles are balanced");
        let fwd: usize = peels.iter().map(|p| p.forward.len()).sum();
        let bwd: usize = peels.iter().map(|p| p.backward.len()).sum();
        assert_eq!(fwd as i64, sum.forward_mass());
        assert_eq!(bwd as i64, sum.backward_mass());
        // For this sum the peel is the single combined ratio-3 cycle, which
        // passes the Corollary 1 case analysis. (In general a greedy peel
        // need not match the Theorem 11 decomposition; only the sum-level
        // bound is invariant.)
        for p in &peels {
            assert!(p.satisfies_corollary1_case(&xi));
        }
    }

    #[test]
    fn unbalanced_elements_are_rejected() {
        let (g, x, _y, _e) = fig2_like();
        let zx = CycleVector::from_cycle(&x);
        // Drop one entry to unbalance.
        let mut broken = CycleVector::zero();
        let mut dropped = false;
        for (m, c) in zx.iter() {
            if !dropped {
                dropped = true;
                continue;
            }
            broken = broken.add(&CycleVector {
                coeffs: [(m, c)].into_iter().collect(),
            });
        }
        assert!(matches!(
            decompose(&g, &broken),
            Err(DecomposeError::Unbalanced(_))
        ));
    }

    #[test]
    fn consistency_relation_cases() {
        let a = CycleVector {
            coeffs: [(MessageId(0), 1), (MessageId(1), -1)]
                .into_iter()
                .collect(),
        };
        let b = CycleVector {
            coeffs: [(MessageId(0), 1), (MessageId(2), 1)].into_iter().collect(),
        };
        let c = CycleVector {
            coeffs: [(MessageId(0), -1)].into_iter().collect(),
        };
        let d = CycleVector {
            coeffs: [(MessageId(7), 1)].into_iter().collect(),
        };
        let e = CycleVector {
            coeffs: [(MessageId(0), 1), (MessageId(1), 1)].into_iter().collect(),
        };
        assert_eq!(a.consistency(&b), Consistency::IConsistent);
        assert_eq!(a.consistency(&c), Consistency::OConsistent);
        assert_eq!(a.consistency(&d), Consistency::Disjoint);
        assert_eq!(a.consistency(&e), Consistency::Inconsistent);
    }
}
