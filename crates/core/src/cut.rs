//! Consistent cuts, causal pasts, and cut intervals (Definitions 5 and 6).
//!
//! The ABC model is time-free, so the paper states its clock-synchronization
//! guarantees relative to *consistent cuts* of the execution graph rather
//! than to instants of real time: a set `S` of events is a consistent cut if
//! it contains an event of every correct process and is left-closed under
//! the reflexive-transitive happens-before relation `∗→`. The *causal past*
//! (left closure) `⟨φ⟩` of an event and the *cut interval*
//! `[⟨φ⟩, ⟨ψ⟩] = ⟨ψ⟩ \ ⟨φ⟩` are the building blocks of the bounded-progress
//! condition (Definition 7), measured in `abc-clocksync`.

use crate::graph::{EventId, ExecutionGraph, ProcessId};

/// A dense set of events, backed by a bitset.
///
/// ```
/// use abc_core::cut::EventSet;
/// use abc_core::graph::EventId;
///
/// let mut s = EventSet::new(100);
/// s.insert(EventId(3));
/// s.insert(EventId(64));
/// assert!(s.contains(EventId(3)) && !s.contains(EventId(4)));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EventSet {
    bits: Vec<u64>,
    universe: usize,
}

impl EventSet {
    /// An empty set over a universe of `universe` events.
    #[must_use]
    pub fn new(universe: usize) -> EventSet {
        EventSet {
            bits: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The size of the universe this set ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts an event; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the universe.
    pub fn insert(&mut self, e: EventId) -> bool {
        assert!(e.0 < self.universe, "event outside universe");
        let (w, b) = (e.0 / 64, e.0 % 64);
        let fresh = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        fresh
    }

    /// Removes an event; returns `true` if it was present.
    pub fn remove(&mut self, e: EventId) -> bool {
        if e.0 >= self.universe {
            return false;
        }
        let (w, b) = (e.0 / 64, e.0 % 64);
        let present = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, e: EventId) -> bool {
        e.0 < self.universe && self.bits[e.0 / 64] & (1 << (e.0 % 64)) != 0
    }

    /// Number of events in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &EventSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// `self \ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn difference(&self, other: &EventSet) -> EventSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        EventSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & !b)
                .collect(),
            universe: self.universe,
        }
    }

    /// `self ∩ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersection(&self, other: &EventSet) -> EventSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        EventSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
            universe: self.universe,
        }
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &EventSet) -> bool {
        self.universe == other.universe
            && self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Iterates the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| EventId(w * 64 + b))
        })
    }
}

impl FromIterator<EventId> for EventSet {
    /// Collects events into a set sized by the largest id.
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> EventSet {
        let ids: Vec<EventId> = iter.into_iter().collect();
        let universe = ids.iter().map(|e| e.0 + 1).max().unwrap_or(0);
        let mut s = EventSet::new(universe);
        for e in ids {
            s.insert(e);
        }
        s
    }
}

/// The causal past (left closure) `⟨φ⟩` of an event, including `φ` itself.
#[must_use]
pub fn causal_past(g: &ExecutionGraph, phi: EventId) -> EventSet {
    let mut set = EventSet::new(g.num_events());
    let mut stack = vec![phi];
    set.insert(phi);
    while let Some(cur) = stack.pop() {
        for pred in g.direct_preds(cur) {
            if set.insert(pred) {
                stack.push(pred);
            }
        }
    }
    set
}

/// The left closure of an arbitrary event set.
#[must_use]
pub fn left_closure(g: &ExecutionGraph, events: &EventSet) -> EventSet {
    let mut set = EventSet::new(g.num_events());
    let mut stack: Vec<EventId> = events.iter().collect();
    for &e in &stack {
        set.insert(e);
    }
    while let Some(cur) = stack.pop() {
        for pred in g.direct_preds(cur) {
            if set.insert(pred) {
                stack.push(pred);
            }
        }
    }
    set
}

/// The consistent cut interval `[⟨φ⟩, ⟨ψ⟩] := ⟨ψ⟩ \ ⟨φ⟩` (Definition 6).
///
/// Meaningful when `φ ∗→ ψ`; the function does not enforce this.
#[must_use]
pub fn cut_interval(g: &ExecutionGraph, phi: EventId, psi: EventId) -> EventSet {
    causal_past(g, psi).difference(&causal_past(g, phi))
}

/// A cut of the execution graph (a set of events), with the Definition 5
/// predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    events: EventSet,
}

impl Cut {
    /// Wraps an event set as a cut.
    #[must_use]
    pub fn new(events: EventSet) -> Cut {
        Cut { events }
    }

    /// The underlying event set.
    #[must_use]
    pub fn events(&self) -> &EventSet {
        &self.events
    }

    /// Whether the cut is left-closed under `∗→`.
    #[must_use]
    pub fn is_left_closed(&self, g: &ExecutionGraph) -> bool {
        self.events
            .iter()
            .all(|e| g.direct_preds(e).all(|p| self.events.contains(p)))
    }

    /// Whether the cut contains an event of every correct process.
    #[must_use]
    pub fn covers_correct_processes(&self, g: &ExecutionGraph) -> bool {
        g.correct_processes()
            .all(|p| g.events_of(p).iter().any(|e| self.events.contains(*e)))
    }

    /// Definition 5: left-closed and covering every correct process.
    #[must_use]
    pub fn is_consistent(&self, g: &ExecutionGraph) -> bool {
        self.is_left_closed(g) && self.covers_correct_processes(g)
    }

    /// The frontier: the last event of each process inside the cut
    /// (`None` for processes with no event in the cut).
    #[must_use]
    pub fn frontier(&self, g: &ExecutionGraph) -> Vec<Option<EventId>> {
        (0..g.num_processes())
            .map(|p| {
                g.events_of(ProcessId(p))
                    .iter()
                    .rev()
                    .find(|e| self.events.contains(**e))
                    .copied()
            })
            .collect()
    }

    /// Replaces the cut by its left closure, making it left-closed.
    pub fn close_left(&mut self, g: &ExecutionGraph) {
        self.events = left_closure(g, &self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProcessId;

    /// p0 sends to p1, p1 replies, p0 sends again.
    fn chain_graph() -> (ExecutionGraph, [EventId; 5]) {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let c = b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(1));
        let (_, r2) = b.send(r1, ProcessId(0));
        let (_, r3) = b.send(r2, ProcessId(1));
        (b.finish(), [a, c, r1, r2, r3])
    }

    #[test]
    fn bitset_operations() {
        let mut s = EventSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(EventId(0)));
        assert!(s.insert(EventId(129)));
        assert!(!s.insert(EventId(0)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(EventId(0)));
        assert!(!s.remove(EventId(0)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![EventId(129)]);
        let mut t = EventSet::new(130);
        t.insert(EventId(5));
        t.union_with(&s);
        assert_eq!(t.len(), 2);
        assert!(s.is_subset(&t));
        assert_eq!(
            t.difference(&s).iter().collect::<Vec<_>>(),
            vec![EventId(5)]
        );
        assert_eq!(t.intersection(&s).len(), 1);
    }

    #[test]
    fn causal_past_follows_messages() {
        let (g, [a, c, r1, r2, r3]) = chain_graph();
        let past = causal_past(&g, r2);
        // r2 at p0 was triggered by p1's reply: past = {a, c, r1, r2}.
        assert!(past.contains(a) && past.contains(c) && past.contains(r1) && past.contains(r2));
        assert!(!past.contains(r3));
        assert_eq!(past.len(), 4);
        // The init event's past is itself.
        assert_eq!(causal_past(&g, a).len(), 1);
    }

    #[test]
    fn consistency_predicates() {
        let (g, [a, c, r1, r2, r3]) = chain_graph();
        let consistent = Cut::new([a, c, r1].into_iter().collect::<EventSet>());
        // Universe must match; rebuild with the right universe.
        let mut s = EventSet::new(g.num_events());
        for e in [a, c, r1] {
            s.insert(e);
        }
        let cut = Cut::new(s);
        assert!(cut.is_consistent(&g));
        // Dropping r1's cause c breaks left-closure.
        let mut s2 = EventSet::new(g.num_events());
        for e in [a, r1] {
            s2.insert(e);
        }
        let cut2 = Cut::new(s2);
        assert!(!cut2.is_left_closed(&g));
        assert!(!cut2.is_consistent(&g));
        // A left-closed cut missing a correct process is not consistent.
        let mut s3 = EventSet::new(g.num_events());
        s3.insert(a);
        let cut3 = Cut::new(s3);
        assert!(cut3.is_left_closed(&g));
        assert!(!cut3.covers_correct_processes(&g));
        // close_left repairs cut2.
        let mut cut2 = cut2;
        cut2.close_left(&g);
        assert!(cut2.is_consistent(&g));
        let _ = (consistent, r2, r3);
    }

    #[test]
    fn frontier_reports_last_events() {
        let (g, [a, c, r1, r2, _r3]) = chain_graph();
        let mut s = EventSet::new(g.num_events());
        for e in [a, c, r1, r2] {
            s.insert(e);
        }
        let cut = Cut::new(s);
        assert_eq!(cut.frontier(&g), vec![Some(r2), Some(r1)]);
        let _ = (a, c);
    }

    #[test]
    fn cut_interval_is_difference_of_pasts() {
        let (g, [a, c, r1, r2, r3]) = chain_graph();
        let interval = cut_interval(&g, r1, r3);
        // ⟨r3⟩ = all five events; ⟨r1⟩ = {a, c, r1}: interval = {r2, r3}.
        assert_eq!(interval.iter().collect::<Vec<_>>(), vec![r2, r3]);
        let _ = (a, c);
    }

    #[test]
    fn faulty_processes_not_required_for_coverage() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.mark_faulty(ProcessId(1));
        let g = b.finish();
        let mut s = EventSet::new(g.num_events());
        s.insert(a);
        assert!(Cut::new(s).is_consistent(&g));
    }
}
