//! Online (incremental) monitoring of the ABC synchrony condition.
//!
//! [`crate::check`] decides Definition 4 in `O(V·E)` — but from scratch,
//! over the whole execution, every time it is asked. A long-running system
//! that wants to *monitor* the condition as its execution unfolds cannot
//! afford a full Bellman–Ford pass per event: re-checking an execution of
//! `n` events after each of its events costs `O(n²·E)` overall.
//!
//! [`IncrementalChecker`] turns the batch reduction into a streaming one.
//! It mirrors the [`crate::graph::ExecutionGraphBuilder`] API (`append_init`
//! / `append_send`) and maintains Bellman–Ford *potentials* over the
//! traversal graph `T` of [`crate::check`]: a label `π(v)` per event such
//! that every arc `u → v` of weight `w` satisfies `π(v) ≤ π(u) + w`. Such
//! labels exist iff `T` has no negative cycle, i.e. iff the execution so
//! far is admissible. Appending an event adds at most three arcs (forward +
//! backward for its triggering message, one local back-arc), and the labels
//! are repaired by re-relaxing only the affected frontier — amortized far
//! below a full pass, and exactly zero work for events that do not disturb
//! any label. The first violation is latched together with a witness of the
//! same [`Cycle`] type the batch checker produces (violations never go away:
//! appending events only adds cycles).
//!
//! # Weights without a global scale factor
//!
//! The batch reduction encodes the predicate "some cycle has
//! `q·B − p·F ≥ 0`" by scaling arc weights with `K = #arcs + 1`, which
//! changes whenever an arc is added — useless incrementally. The monitor
//! instead uses *lexicographic pairs* `(p·[fwd] − q·[bwd], −1)` compared
//! component-wise: a cycle's pair sum is `(p·F − q·B, −len)`, which is
//! lexicographically negative iff `q·B − p·F ≥ 0` — the same predicate,
//! stable under insertion.
//!
//! # Example: streaming detection
//!
//! ```
//! use abc_core::monitor::IncrementalChecker;
//! use abc_core::graph::ProcessId;
//! use abc_core::Xi;
//!
//! // Monitor the 2-chain-spanned-by-a-slow-message execution for Ξ = 2.
//! let mut mon = IncrementalChecker::new(3, &Xi::from_integer(2)).unwrap();
//! let q = mon.append_init(ProcessId(0));
//! mon.append_init(ProcessId(1));
//! mon.append_init(ProcessId(2));
//! let (_, relay) = mon.append_send(q, ProcessId(2));
//! mon.append_send(relay, ProcessId(1)); // fast chain arrives first at p1
//! assert!(mon.is_admissible()); // no relevant cycle yet
//! mon.append_send(q, ProcessId(1)); // the slow spanning message closes it
//! let witness = mon.violation().expect("ratio 2/1 >= 2");
//! assert!(witness.classify().violates(mon.xi()));
//! ```

use std::collections::VecDeque;

use crate::check::{self, Arc, ArcKind, CheckError};
use crate::cycle::Cycle;
use crate::graph::{
    EventId, ExecutionGraph, ExecutionGraphBuilder, LocalEdge, MessageId, ProcessId, Trigger,
};
use crate::xi::Xi;

/// Lexicographic arc weight: `(p·[fwd] − q·[bwd], −1)`. Tuples compare
/// lexicographically in Rust, which is exactly the order the reduction
/// needs; components are added independently.
type Weight = (i128, i128);

/// Counters describing the monitor's work, for observability and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events appended so far.
    pub events: usize,
    /// Messages appended so far (including exempt ones).
    pub messages: usize,
    /// Traversal-graph arcs currently maintained.
    pub arcs: usize,
    /// Total label relaxations performed across all appends.
    pub relaxations: u64,
    /// Full batch-Bellman–Ford confirmations triggered (a violation latch,
    /// or — rarely — a false alarm of the relaxation-count heuristic).
    pub full_checks: u64,
}

/// Incremental decision of the ABC synchrony condition (Definition 4).
///
/// Mirrors the [`ExecutionGraphBuilder`] discipline: every process's first
/// event is [`append_init`], every other event is the receive event of an
/// [`append_send`]. Faulty processes must be declared with [`mark_faulty`]
/// *before* they send (their messages are exempt from the condition, and
/// the monitor never retracts arcs).
///
/// [`append_init`]: IncrementalChecker::append_init
/// [`append_send`]: IncrementalChecker::append_send
/// [`mark_faulty`]: IncrementalChecker::mark_faulty
#[derive(Clone, Debug)]
pub struct IncrementalChecker {
    xi: Xi,
    p: i128,
    q: i128,
    builder: ExecutionGraphBuilder,
    arcs: Vec<Arc>,
    /// Outgoing arc indices per event (traversal-graph adjacency).
    out_arcs: Vec<Vec<usize>>,
    /// Bellman–Ford potential per event; feasible (no tense arc) whenever
    /// `violation` is `None`.
    pot: Vec<Weight>,
    /// Per-append relaxation counts (reset via `touched` after each append).
    relax_count: Vec<u64>,
    touched: Vec<usize>,
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    violation: Option<Cycle>,
    stats: MonitorStats,
}

impl IncrementalChecker {
    /// Creates a monitor over `num_processes` processes for the parameter
    /// `Ξ`.
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed `i64` — the label
    /// arithmetic accumulates weights along relaxation paths and needs the
    /// headroom of `i128` above machine-word parts. (The batch checker
    /// accepts wider parts; astronomically large `Ξ` is its domain.)
    pub fn new(num_processes: usize, xi: &Xi) -> Result<IncrementalChecker, CheckError> {
        let (p, q) = xi.as_i64_parts().ok_or(CheckError::XiTooLarge)?;
        Ok(IncrementalChecker {
            xi: xi.clone(),
            p: i128::from(p),
            q: i128::from(q),
            builder: ExecutionGraph::builder(num_processes),
            arcs: Vec::new(),
            out_arcs: Vec::new(),
            pot: Vec::new(),
            relax_count: Vec::new(),
            touched: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            violation: None,
            stats: MonitorStats::default(),
        })
    }

    /// Builds a monitor by replaying an existing execution graph event by
    /// event (in its creation order, which is topological).
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] as in [`IncrementalChecker::new`].
    pub fn from_graph(g: &ExecutionGraph, xi: &Xi) -> Result<IncrementalChecker, CheckError> {
        let mut mon = IncrementalChecker::new(g.num_processes(), xi)?;
        for p in 0..g.num_processes() {
            if g.is_faulty(ProcessId(p)) {
                mon.builder.mark_faulty(ProcessId(p));
            }
        }
        for ev in g.events() {
            match ev.trigger {
                Trigger::Init => {
                    mon.append_init(ev.process);
                }
                Trigger::Message(m) => {
                    let msg = g.message(m);
                    mon.append_send_inner(msg.from, ev.process, msg.exempt);
                }
            }
        }
        Ok(mon)
    }

    /// The monitored parameter `Ξ`.
    #[must_use]
    pub fn xi(&self) -> &Xi {
        &self.xi
    }

    /// The execution graph accumulated so far (identical to what
    /// [`ExecutionGraphBuilder`] would have produced from the same calls).
    #[must_use]
    pub fn graph(&self) -> &ExecutionGraph {
        self.builder.graph()
    }

    /// Whether the execution appended so far satisfies the ABC condition.
    #[must_use]
    pub fn is_admissible(&self) -> bool {
        self.violation.is_none()
    }

    /// The first violating relevant cycle found, if any (latched: once a
    /// violation exists, appending more events cannot remove it).
    #[must_use]
    pub fn violation(&self) -> Option<&Cycle> {
        self.violation.as_ref()
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Marks process `p` Byzantine faulty: its future messages are exempt
    /// from the synchrony condition.
    ///
    /// # Panics
    ///
    /// Panics if `p` has already sent a message — the monitor cannot
    /// retract arcs, so faults must be declared up front (as a simulation
    /// does when the process is registered).
    pub fn mark_faulty(&mut self, p: ProcessId) {
        assert!(
            self.builder
                .graph()
                .messages()
                .iter()
                .all(|m| m.sender != p),
            "{p} must be marked faulty before it sends"
        );
        self.builder.mark_faulty(p);
    }

    /// Appends the wake-up (initial) event of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` already has events.
    pub fn append_init(&mut self, p: ProcessId) -> EventId {
        let id = self.builder.init(p);
        self.push_node();
        self.stats.events += 1;
        id
    }

    /// Appends a message from the computing step at `from` to process `to`
    /// (and its receive event), then re-checks the condition incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range or `to` has no init event yet.
    pub fn append_send(&mut self, from: EventId, to: ProcessId) -> (MessageId, EventId) {
        self.append_send_inner(from, to, false)
    }

    /// Like [`IncrementalChecker::append_send`], but the message is exempt
    /// from the synchrony condition (the paper's restricted-graph hook).
    pub fn append_send_exempt(&mut self, from: EventId, to: ProcessId) -> (MessageId, EventId) {
        self.append_send_inner(from, to, true)
    }

    fn append_send_inner(
        &mut self,
        from: EventId,
        to: ProcessId,
        exempt: bool,
    ) -> (MessageId, EventId) {
        let (mid, recv) = self.builder.send(from, to);
        if exempt {
            self.builder.set_exempt(mid);
        }
        self.push_node();
        self.stats.events += 1;
        self.stats.messages += 1;
        if self.violation.is_some() {
            // Latched: the verdict can never change, skip all arc work.
            return (mid, recv);
        }
        // Choose the new node's label directly instead of relaxing it from
        // scratch: the feasible window for `π(recv)` is
        //
        //   max(π(send) + (q,1), π(local_pred) + (0,1))  ≤  π(recv)
        //                                                ≤  π(send) + (p,−1)
        //
        // (lower bounds from recv's outgoing backward/local arcs, upper
        // bound from the incoming forward arc). Taking the *earliest*
        // feasible label — timestamp semantics: every message charged its
        // minimum delay `q` — keeps all existing labels untouched, so an
        // append that opens no window conflict costs zero relaxations. Only
        // when the window is empty (the message "spans": it arrives later
        // than the fast paths from its send event permit) is the label
        // capped to the upper bound and the tension propagated.
        let mut lower: Option<Weight> = None;
        let mut upper: Option<Weight> = None;
        if self.builder.graph().is_effective(mid) {
            self.push_arc(from.0, recv.0, ArcKind::Forward(mid));
            self.push_arc(recv.0, from.0, ArcKind::Backward(mid));
            let pu = self.pot[from.0];
            lower = Some((pu.0 + self.q, pu.1 + 1));
            upper = Some((pu.0 + self.p, pu.1 - 1));
        }
        if let Some(prev) = self.builder.graph().local_pred(recv) {
            self.push_arc(
                recv.0,
                prev.0,
                ArcKind::LocalBack(LocalEdge {
                    from: prev,
                    to: recv,
                }),
            );
            let pw = self.pot[prev.0];
            let bound = (pw.0, pw.1 + 1);
            lower = Some(match lower {
                Some(l) if l >= bound => l,
                _ => bound,
            });
        }
        let mut label = lower.unwrap_or((0, 0));
        let mut tense = false;
        if let Some(u) = upper {
            if label > u {
                label = u;
                tense = true;
            }
        }
        self.pot[recv.0] = label;
        if tense {
            self.enqueue(recv.0);
            self.restore_feasibility();
        }
        (mid, recv)
    }

    fn push_node(&mut self) {
        self.out_arcs.push(Vec::new());
        self.pot.push((0, 0));
        self.relax_count.push(0);
        self.in_queue.push(false);
    }

    fn push_arc(&mut self, from: usize, to: usize, kind: ArcKind) -> usize {
        let idx = self.arcs.len();
        self.arcs.push(Arc { from, to, kind });
        self.out_arcs[from].push(idx);
        self.stats.arcs += 1;
        idx
    }

    fn arc_weight(&self, kind: ArcKind) -> Weight {
        let first = match kind {
            ArcKind::Forward(_) => self.p,
            ArcKind::Backward(_) => -self.q,
            ArcKind::LocalBack(_) => 0,
        };
        (first, -1)
    }

    /// Relaxes `arc`; returns the head node if its label dropped.
    fn try_relax(&mut self, ai: usize) -> Option<usize> {
        let arc = self.arcs[ai];
        let w = self.arc_weight(arc.kind);
        let cand = (self.pot[arc.from].0 + w.0, self.pot[arc.from].1 + w.1);
        if cand < self.pot[arc.to] {
            self.pot[arc.to] = cand;
            if self.relax_count[arc.to] == 0 {
                self.touched.push(arc.to);
            }
            self.relax_count[arc.to] += 1;
            self.stats.relaxations += 1;
            Some(arc.to)
        } else {
            None
        }
    }

    /// Queue-based re-relaxation from the enqueued tense nodes until the
    /// labels are feasible again — or, if that cannot happen (a negative
    /// cycle through a new arc), until the relaxation-count heuristic trips
    /// and the batch detector confirms and extracts the witness.
    fn restore_feasibility(&mut self) {
        // Without negative cycles a label only improves via simple paths, so
        // > #nodes improvements of one node in a single repair is a strong
        // negative-cycle signal — but queue orderings can exceed it benignly,
        // so every trip is confirmed by the exact batch detector (and the
        // threshold doubles on a false alarm to keep repair near-linear).
        let mut threshold = self.pot.len() as u64 + 2;
        'repair: while let Some(u) = self.queue.pop_front() {
            self.in_queue[u] = false;
            for i in 0..self.out_arcs[u].len() {
                let ai = self.out_arcs[u][i];
                let Some(head) = self.try_relax(ai) else {
                    continue;
                };
                if self.relax_count[head] > threshold {
                    self.stats.full_checks += 1;
                    if let Some(indices) =
                        check::violating_cycle_arcs(&self.arcs, self.pot.len(), self.p, self.q)
                    {
                        let cycle = check::arcs_to_cycle(&self.arcs, &indices);
                        debug_assert!(cycle.validate(self.builder.graph()).is_ok());
                        assert!(
                            cycle.classify().violates(&self.xi),
                            "internal error: extracted cycle {cycle} does not violate Xi = {}",
                            self.xi
                        );
                        self.violation = Some(cycle);
                        break 'repair;
                    }
                    threshold = threshold.saturating_mul(2);
                }
                self.enqueue(head);
            }
        }
        self.queue.clear();
        for &v in &self.in_queue {
            debug_assert!(!v || self.violation.is_some());
        }
        for v in self.touched.drain(..) {
            self.relax_count[v] = 0;
            self.in_queue[v] = false;
        }
    }

    fn enqueue(&mut self, v: usize) {
        if !self.in_queue[v] {
            self.in_queue[v] = true;
            self.queue.push_back(v);
        }
    }

    /// Consumes the monitor, returning the accumulated graph and the
    /// violation witness (if any).
    #[must_use]
    pub fn finish(self) -> (ExecutionGraph, Option<Cycle>) {
        (self.builder.finish(), self.violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use abc_rational::Ratio;

    /// Replays the batch-test "two chains" shape through the monitor.
    fn stream_two_chain(hops: usize, xi: &Xi) -> IncrementalChecker {
        let mut mon = IncrementalChecker::new(hops + 1, xi).unwrap();
        let q = mon.append_init(ProcessId(0));
        for i in 1..=hops {
            mon.append_init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=hops {
            let (_, r) = mon.append_send(cur, ProcessId(i));
            cur = r;
        }
        mon.append_send(cur, ProcessId(1));
        assert!(
            mon.is_admissible(),
            "no relevant cycle before the spanning message"
        );
        mon.append_send(q, ProcessId(1));
        mon
    }

    #[test]
    fn detects_violation_exactly_at_the_closing_event() {
        for hops in 2..=6 {
            // Violating at Xi = hops (ratio == Xi), admissible just above.
            let at = Xi::from_integer(hops as i64);
            let mon = stream_two_chain(hops, &at);
            let w = mon.violation().expect("ratio hops >= hops");
            assert!(w.validate(mon.graph()).is_ok());
            assert!(w.classify().violates(&at));
            let above = Xi::new(Ratio::from_integer(hops as i64) + Ratio::new(1, 7)).unwrap();
            let mon = stream_two_chain(hops, &above);
            assert!(mon.is_admissible(), "hops = {hops}");
        }
    }

    #[test]
    fn violation_is_latched() {
        let xi = Xi::from_integer(2);
        let mut mon = stream_two_chain(3, &xi);
        assert!(!mon.is_admissible());
        let before = mon.violation().cloned();
        // Appending more traffic does not clear the latch.
        let (_, r) = mon.append_send(EventId(0), ProcessId(2));
        let _ = mon.append_send(r, ProcessId(0));
        assert_eq!(mon.violation().cloned(), before);
    }

    #[test]
    fn agrees_with_batch_after_every_event() {
        // A dense little exchange, checked step by step.
        let xi = Xi::from_fraction(3, 2);
        let mut mon = IncrementalChecker::new(3, &xi).unwrap();
        let script: &[(usize, usize)] = &[(0, 1), (1, 2), (2, 0), (0, 2), (3, 1), (2, 1), (1, 0)];
        let e0 = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_init(ProcessId(2));
        let _ = e0;
        for &(from, to) in script {
            let from = EventId(from % mon.graph().num_events());
            mon.append_send(from, ProcessId(to % 3));
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(mon.graph(), &xi).unwrap(),
                "monitor and batch disagree after appending from {from:?}"
            );
        }
    }

    #[test]
    fn faulty_and_exempt_messages_carry_no_arcs() {
        // two_chain(4) violates Xi = 3/2 — unless the chain's relay is
        // faulty or the spanning message is exempt.
        let xi = Xi::from_fraction(3, 2);
        let mut mon = IncrementalChecker::new(5, &xi).unwrap();
        mon.mark_faulty(ProcessId(4));
        let q = mon.append_init(ProcessId(0));
        for i in 1..=4 {
            mon.append_init(ProcessId(i));
        }
        let (_, r2) = mon.append_send(q, ProcessId(2));
        let (_, r3) = mon.append_send(r2, ProcessId(3));
        let (_, r4) = mon.append_send(r3, ProcessId(4)); // faulty relay
        mon.append_send(r4, ProcessId(1));
        mon.append_send(q, ProcessId(1));
        assert!(mon.is_admissible(), "faulty relay breaks the chain");
        assert_eq!(
            check::is_admissible(mon.graph(), &xi).unwrap(),
            mon.is_admissible()
        );

        let mut mon = IncrementalChecker::new(5, &xi).unwrap();
        let q = mon.append_init(ProcessId(0));
        for i in 1..=4 {
            mon.append_init(ProcessId(i));
        }
        let (_, r2) = mon.append_send(q, ProcessId(2));
        let (_, r3) = mon.append_send(r2, ProcessId(3));
        let (_, r4) = mon.append_send(r3, ProcessId(4));
        mon.append_send(r4, ProcessId(1));
        mon.append_send_exempt(q, ProcessId(1));
        assert!(mon.is_admissible(), "exempt spanning message");
        assert_eq!(
            check::is_admissible(mon.graph(), &xi).unwrap(),
            mon.is_admissible()
        );
    }

    #[test]
    fn mark_faulty_after_sending_panics() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        let a = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_send(a, ProcessId(1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.mark_faulty(ProcessId(0));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn from_graph_replays_faithfully() {
        let xi = Xi::from_fraction(5, 2);
        for hops in 2..=5 {
            let mut b = ExecutionGraph::builder(hops + 1);
            let q = b.init(ProcessId(0));
            for i in 1..=hops {
                b.init(ProcessId(i));
            }
            let mut cur = q;
            for i in 2..=hops {
                let (_, r) = b.send(cur, ProcessId(i));
                cur = r;
            }
            b.send(cur, ProcessId(1));
            b.send(q, ProcessId(1));
            let g = b.finish();
            let mon = IncrementalChecker::from_graph(&g, &xi).unwrap();
            assert_eq!(mon.graph(), &g);
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(&g, &xi).unwrap(),
                "hops = {hops}"
            );
        }
    }

    #[test]
    fn xi_beyond_i64_is_rejected() {
        let wide = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from(1i128 << 80),
            abc_rational::BigInt::from(3),
        ))
        .unwrap();
        assert_eq!(
            IncrementalChecker::new(2, &wide).err(),
            Some(CheckError::XiTooLarge)
        );
    }

    #[test]
    fn stats_reflect_the_stream() {
        // Comfortably admissible: every append's feasible window is open,
        // so the earliest-label assignment does zero relaxation work.
        let xi = Xi::from_integer(3);
        let mon = stream_two_chain(2, &xi);
        let s = mon.stats();
        assert_eq!(s.events, 6); // 3 inits + 3 receive events
        assert_eq!(s.messages, 3);
        assert!(s.arcs >= 2 * s.messages);
        assert_eq!(s.relaxations, 0, "no spanning message, no repair");
        assert_eq!(s.full_checks, 0);
        // A violating stream must do real work: tension propagation and the
        // confirming batch pass that extracts the witness.
        let xi = Xi::from_integer(2);
        let mon = stream_two_chain(2, &xi);
        assert!(!mon.is_admissible());
        assert!(mon.stats().relaxations > 0);
        assert!(mon.stats().full_checks >= 1);
    }
}
