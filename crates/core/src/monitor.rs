//! Online (incremental) monitoring of the ABC synchrony condition.
//!
//! [`crate::check`] decides Definition 4 in `O(V·E)` — but from scratch,
//! over the whole execution, every time it is asked. A long-running system
//! that wants to *monitor* the condition as its execution unfolds cannot
//! afford a full Bellman–Ford pass per event: re-checking an execution of
//! `n` events after each of its events costs `O(n²·E)` overall.
//!
//! [`IncrementalChecker`] turns the batch reduction into a streaming one.
//! It mirrors the [`crate::graph::ExecutionGraphBuilder`] API (`append_init`
//! / `append_send`) and maintains Bellman–Ford *potentials* over the same
//! arena-backed [`TraversalGraph`] the batch checker walks (grown
//! incrementally here instead of built in one pass): a label `π(v)` per
//! event such that every arc `u → v` of weight `w` satisfies
//! `π(v) ≤ π(u) + w`. Such labels exist iff `T` has no negative cycle, i.e.
//! iff the execution so far is admissible. Appending an event adds at most
//! three arcs (forward + backward for its triggering message, one local
//! back-arc), and the labels are repaired by re-relaxing only the affected
//! frontier — amortized far below a full pass, and exactly zero work for
//! events that do not disturb any label. The first violation is latched
//! together with a witness of the same [`Cycle`] type the batch checker
//! produces (violations never go away: appending events only adds cycles).
//!
//! # Weights without a global scale factor
//!
//! The batch reduction encodes the predicate "some cycle has
//! `q·B − p·F ≥ 0`" by scaling arc weights with `K = #arcs + 1`, which
//! changes whenever an arc is added — useless incrementally. The monitor
//! instead uses *lexicographic pairs* `(p·[fwd] − q·[bwd], −1)` compared
//! component-wise: a cycle's pair sum is `(p·F − q·B, −len)`, which is
//! lexicographically negative iff `q·B − p·F ≥ 0` — the same predicate,
//! stable under insertion.
//!
//! # Canonical witnesses
//!
//! When a violation is confirmed, every *new* violating cycle necessarily
//! passes through the event `v` whose append created it (all new arcs are
//! incident to `v`), and — because the pre-append graph was feasible — has
//! the canonical shape *forward arc `u → v`, local back-arc `v → prev`,
//! then a pre-existing path `prev ⇝ u`*. The monitor therefore extracts
//! its witness as the most-violating such cycle via one single-source
//! shortest-path pass over the pre-append arcs. This makes the witness a
//! pure function of the live traversal graph — independent of relaxation
//! order, queue state, *and of how much settled prefix has been pruned*,
//! which is what keeps pruned and unpruned monitors byte-identical.
//!
//! # Bounded memory: settled-prefix pruning
//!
//! A long-lived monitor (an `abc-service` session, a days-long simulation)
//! must not hold every event forever. Violation evidence in the ABC model
//! is local: a new violating cycle always runs through the event just
//! appended, and the only ways it can reach back into an old prefix
//! `[0, W)` are the *boundary arcs* that cross `W` — so once the caller
//! promises that no **future** `append_send` will name a send event below
//! `W` (the `oldest_inflight_send` watermark; only the application knows
//! its in-flight messages), the prefix is *settled*: its internal arcs are
//! frozen forever, and [`IncrementalChecker::prune_settled`] compacts it
//! away after **condensing** its boundary:
//!
//! * every (entry arc, exit arc) pair crossing the cut is replaced by one
//!   **shortcut arc** between their live endpoints, weighted by the exact
//!   shortest path through the settled region (plus the crossing arcs) and
//!   carrying its step-by-step expansion so witnesses can be reproduced
//!   byte-for-byte;
//! * every process whose newest event falls below the cut leaves behind a
//!   **frontier row**: its frozen potential plus the condensed shortest
//!   paths from that event to each exit, materialized as shortcut arcs by
//!   the process's next receive (whose local edge is the one future arc
//!   that may still point into the region).
//!
//! Because the settled region's arcs can never change, those condensations
//! are exact for all time: a negative cycle exists in the compacted graph
//! iff one exists in the full graph, the canonical confirmation finds the
//! same most-violating cycle with the same total weight, and expanding the
//! shortcuts reproduces the identical [`Cycle`] witness. Verdicts,
//! violation latch points, witnesses, and summaries are **byte-identical**
//! with and without pruning, at any call cadence. Memory becomes
//! `O(processes + active window + in-flight messages + boundary
//! condensation)` instead of `O(all events)` — the condensation term is
//! the pairwise shortcuts of the (few) arcs crossing each cut, plus their
//! stored expansions; [`MonitorStats`] reports `pruned_events` and the
//! live high-water marks. Call [`IncrementalChecker::enable_pruning`]
//! first to also drop the full [`ExecutionGraph`] mirror (after which
//! [`IncrementalChecker::graph`] is unavailable — use
//! [`IncrementalChecker::violation_summary`] for witness reporting).
//!
//! # Live synchrony margin
//!
//! Beyond the binary verdict, the monitor can report how *close* the
//! execution is to the tripwire: [`IncrementalChecker::current_margin`]
//! returns the exact maximum `|Z−|/|Z+|` over all relevant cycles so far
//! (the same value [`crate::check::max_relevant_cycle_ratio`] computes
//! batch-side), and [`IncrementalChecker::margin_upper_bound`] derives a
//! cheap `O(arcs)` upper bound from the feasible potentials — the fast
//! path that gates the exact probe. Pruned monitors stay exact through two
//! devices: the **margin floor** (margins only grow, so the exact margin
//! is folded into a floor right before each prune, and later probes only
//! range above it) and per-shortcut **signature envelopes** (each boundary
//! shortcut keeps the lower envelope of its crossing paths' `x·F − B`
//! cost lines over probe ratios at or above the floor, so probes below
//! `Ξ` see the exact minimum crossing cost, not just the `Ξ`-optimal path
//! the violation machinery stores). Margin tracking is opt-in for pruning
//! monitors ([`IncrementalChecker::enable_margin_tracking`]) because the
//! envelopes cost extra work at every prune.
//!
//! # Example: streaming detection
//!
//! ```
//! use abc_core::monitor::IncrementalChecker;
//! use abc_core::graph::ProcessId;
//! use abc_core::Xi;
//!
//! // Monitor the 2-chain-spanned-by-a-slow-message execution for Ξ = 2.
//! let mut mon = IncrementalChecker::new(3, &Xi::from_integer(2)).unwrap();
//! let q = mon.append_init(ProcessId(0));
//! mon.append_init(ProcessId(1));
//! mon.append_init(ProcessId(2));
//! let (_, relay) = mon.append_send(q, ProcessId(2));
//! mon.append_send(relay, ProcessId(1)); // fast chain arrives first at p1
//! assert!(mon.is_admissible()); // no relevant cycle yet
//! mon.append_send(q, ProcessId(1)); // the slow spanning message closes it
//! let witness = mon.violation().expect("ratio 2/1 >= 2");
//! assert!(witness.classify().violates(mon.xi()));
//! ```

use std::collections::VecDeque;

use abc_rational::{BigInt, Ratio};

use crate::check::{self, CheckError};
use crate::cycle::{Cycle, CycleStep, ShadowEdge, WitnessSummary};
use crate::graph::{
    EventId, ExecutionGraph, ExecutionGraphBuilder, LocalEdge, MessageId, ProcessId, Trigger,
};
use crate::traversal::{ArcKind, TraversalGraph};
use crate::xi::Xi;

// Flight-recorder hooks (no-ops unless the embedding process called
// `abc_obs::enable`). The hot append path gets only relaxed counter
// adds; RAII spans are reserved for the rare phases (frontier repair,
// violation confirmation, prune condensation, margin probes).
static OBS_APPENDS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.appends");
static OBS_ARCS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.arcs");
static OBS_RELAXATIONS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.relaxations");
static OBS_REPAIRS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.frontier_repairs");
static OBS_CONFIRMS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.confirm_sssp");
static OBS_PRUNED_EVENTS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.pruned_events");
static OBS_PRUNED_ARCS: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.pruned_arcs");
static OBS_PROBES: abc_obs::CounterDef = abc_obs::CounterDef::new("monitor.margin_probes");

/// Lexicographic arc weight: `(p·[fwd] − q·[bwd], −1)`. Tuples compare
/// lexicographically in Rust, which is exactly the order the reduction
/// needs; components are added independently.
type Weight = (i128, i128);

/// Counters describing the monitor's work and footprint, for observability
/// and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events appended so far (including pruned ones).
    pub events: usize,
    /// Messages appended so far (including exempt ones).
    pub messages: usize,
    /// Traversal-graph arcs created so far (including pruned ones).
    pub arcs: usize,
    /// Total label relaxations performed across all appends.
    pub relaxations: u64,
    /// Violation confirmations triggered (a violation latch, or — rarely —
    /// a false alarm of the relaxation-count heuristic).
    pub full_checks: u64,
    /// Events compacted away by [`IncrementalChecker::prune_settled`].
    pub pruned_events: usize,
    /// Arcs compacted away by [`IncrementalChecker::prune_settled`].
    pub pruned_arcs: usize,
    /// High-water mark of simultaneously live (non-pruned) events — the
    /// monitor's memory is proportional to this, not to `events`.
    pub live_events_peak: usize,
    /// High-water mark of simultaneously live arcs.
    pub live_arcs_peak: usize,
}

/// One margin *signature* of a condensed settled-region path: its forward
/// and backward message counts, plus the expansion needed to reproduce a
/// witness through it. While the `weight`/`steps` of [`ShortcutInfo`] and
/// [`RowOut`] describe the one path that is lex-optimal at `Ξ`, margin
/// probes evaluate cost lines `x·f − b` at probe ratios `x < Ξ`, where a
/// different crossing path may be cheaper — so margin tracking keeps, per
/// condensed arc, the *lower envelope* of all crossing paths' cost lines
/// over the closed interval `[floor, ∞)` of still-reachable probe ratios.
#[derive(Clone, Debug)]
struct MarginSig {
    /// Forward message steps along the path.
    f: i128,
    /// Backward message steps along the path.
    b: i128,
    /// The condensed steps, in traversal order (tail → head).
    steps: Vec<CycleStep>,
    /// Processes of interior vertices (`procs.len() == steps.len() - 1`).
    procs: Vec<ProcessId>,
}

/// A condensed boundary path of a pruned prefix: the exact lexicographic
/// weight of the shortest settled-region path it stands for, plus the
/// expansion needed to reproduce witnesses byte-for-byte.
#[derive(Clone, Debug)]
struct ShortcutInfo {
    weight: Weight,
    /// The condensed steps, in traversal order (tail → head).
    steps: Vec<CycleStep>,
    /// Processes of the expansion's *interior* vertices (between the live
    /// endpoints): `procs.len() == steps.len() - 1`.
    procs: Vec<ProcessId>,
    /// Margin-signature envelope of *all* condensed paths behind this arc
    /// (empty when margin tracking is off).
    sigs: Vec<MarginSig>,
}

/// One condensed path out of a pruned frontier event: `prev ⇝ head`
/// (ending on a live event), with its expansion.
#[derive(Clone, Debug)]
struct RowOut {
    /// Live head event (global id).
    head: usize,
    /// Exact weight of the condensed path `prev ⇝ head`.
    weight: Weight,
    /// Steps of the condensed path, tail-first.
    steps: Vec<CycleStep>,
    /// Processes of interior vertices (`procs.len() == steps.len() - 1`).
    procs: Vec<ProcessId>,
    /// Margin-signature envelope of all condensed `prev ⇝ head` paths
    /// (empty when margin tracking is off).
    sigs: Vec<MarginSig>,
}

/// An exact live-margin sample: the current maximum relevant-cycle ratio
/// `|Z−|/|Z+|` over the whole monitored execution, and — when one was
/// extracted — a summary of the tightest cycle attaining it.
///
/// Produced by [`IncrementalChecker::current_margin`]; equals what
/// [`crate::check::max_relevant_cycle_ratio`] reports on the same
/// execution. The witness is `None` exactly when the margin is attained
/// only at ratio `1` (where the cheapest certificate may be a degenerate
/// back-and-forth walk rather than a genuine relevant cycle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MarginReport {
    /// The exact maximum `|Z−|/|Z+|` over all relevant cycles so far.
    pub ratio: Ratio,
    /// Summary of a tightest cycle attaining `ratio`, if one was extracted.
    pub witness: Option<WitnessSummary>,
}

/// What a pruned per-process frontier leaves behind: the frozen potential
/// of the process's newest (compacted) event, and the condensed paths from
/// it to every live exit. Read exactly once, by the process's next append,
/// which materializes the paths as shortcut arcs hanging off the new
/// receive's local edge.
#[derive(Clone, Debug)]
struct FrontierRow {
    label: Weight,
    outs: Vec<RowOut>,
}

/// The append that opened the current repair, for violation confirmation:
/// every cycle the append can have created runs `u → v → prev → ⋯ → u`.
#[derive(Clone, Debug)]
struct ConfirmCtx {
    /// Send event of the appended message.
    u: usize,
    /// The appended receive event.
    v: usize,
    /// `v`'s local predecessor: the global event id, and whether it is
    /// still live (below-base predecessors were compacted by pruning).
    prev_global: usize,
    prev_live: bool,
    /// The frontier row of `v`'s process when `prev` was compacted: seeds
    /// the confirmation's shortest-path pass in place of `dist[prev] = 0`.
    seeds: Option<FrontierRow>,
    /// The appended message.
    mid: MessageId,
    /// Arena length before this append's arcs: `arcs[..old_arcs]` is the
    /// pre-append (feasible) traversal graph.
    old_arcs: usize,
}

/// Incremental decision of the ABC synchrony condition (Definition 4).
///
/// Mirrors the [`ExecutionGraphBuilder`] discipline: every process's first
/// event is [`append_init`], every other event is the receive event of an
/// [`append_send`]. Faulty processes must be declared with [`mark_faulty`]
/// *before* they send (their messages are exempt from the condition, and
/// the monitor never retracts arcs).
///
/// [`append_init`]: IncrementalChecker::append_init
/// [`append_send`]: IncrementalChecker::append_send
/// [`mark_faulty`]: IncrementalChecker::mark_faulty
#[derive(Clone, Debug)]
pub struct IncrementalChecker {
    xi: Xi,
    p: i128,
    q: i128,
    num_processes: usize,
    faulty: Vec<bool>,
    /// Whether each process has sent at least one message (the
    /// [`mark_faulty`](IncrementalChecker::mark_faulty) guard).
    has_sent: Vec<bool>,
    /// Full execution-graph mirror, dropped when pruning is enabled. All
    /// monitoring decisions run on the windowed state below; the mirror
    /// only serves [`IncrementalChecker::graph`].
    builder: Option<ExecutionGraphBuilder>,
    /// The shared CSR traversal graph, grown arc by arc (and compacted
    /// from the front by pruning).
    tg: TraversalGraph,
    /// Process of each live event (windowed by `tg.base()`).
    proc_of: Vec<ProcessId>,
    /// Bellman–Ford potential per live event; feasible (no tense arc)
    /// whenever `violation` is `None`.
    pot: Vec<Weight>,
    /// Per-append relaxation counts (reset via `touched` after each append).
    relax_count: Vec<u64>,
    in_queue: Vec<bool>,
    touched: Vec<usize>,
    queue: VecDeque<usize>,
    /// Latest event id of each process (survives pruning — it guards
    /// double-init and locates local predecessors).
    last_event: Vec<Option<usize>>,
    /// What a pruned per-process frontier left behind (see [`FrontierRow`]);
    /// recomposed by later prunes, consumed by the process's next append.
    frontier_row: Vec<Option<FrontierRow>>,
    /// Expansion table for the arena's [`ArcKind::Shortcut`] arcs; rebuilt
    /// (compacted) at every prune.
    shortcuts: Vec<ShortcutInfo>,
    total_messages: usize,
    pending: Option<ConfirmCtx>,
    violation: Option<Cycle>,
    violation_summary: Option<WitnessSummary>,
    /// Whether margin-signature envelopes are maintained across prunes
    /// (see [`IncrementalChecker::enable_margin_tracking`]).
    margin_tracking: bool,
    /// Monotone floor on the execution's margin: the exact live margin is
    /// folded in right before every prune, so probes after the prune only
    /// range above it (which keeps the signature envelopes finite).
    margin_floor: Option<Ratio>,
    /// Witness summary attaining `margin_floor`, when one was extracted.
    margin_floor_witness: Option<WitnessSummary>,
    stats: MonitorStats,
}

impl IncrementalChecker {
    /// Creates a monitor over `num_processes` processes for the parameter
    /// `Ξ`.
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed `i64` — the label
    /// arithmetic accumulates weights along relaxation paths and needs the
    /// headroom of `i128` above machine-word parts. (The batch checker
    /// accepts wider parts; astronomically large `Ξ` is its domain.)
    pub fn new(num_processes: usize, xi: &Xi) -> Result<IncrementalChecker, CheckError> {
        let (p, q) = xi.as_i64_parts().ok_or(CheckError::XiTooLarge)?;
        Ok(IncrementalChecker {
            xi: xi.clone(),
            p: i128::from(p),
            q: i128::from(q),
            num_processes,
            faulty: vec![false; num_processes],
            has_sent: vec![false; num_processes],
            builder: Some(ExecutionGraph::builder(num_processes)),
            tg: TraversalGraph::new(),
            proc_of: Vec::new(),
            pot: Vec::new(),
            relax_count: Vec::new(),
            in_queue: Vec::new(),
            touched: Vec::new(),
            queue: VecDeque::new(),
            last_event: vec![None; num_processes],
            frontier_row: vec![None; num_processes],
            shortcuts: Vec::new(),
            total_messages: 0,
            pending: None,
            violation: None,
            violation_summary: None,
            margin_tracking: false,
            margin_floor: None,
            margin_floor_witness: None,
            stats: MonitorStats::default(),
        })
    }

    /// Builds a monitor by replaying an existing execution graph event by
    /// event (in its creation order, which is topological).
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] as in [`IncrementalChecker::new`].
    pub fn from_graph(g: &ExecutionGraph, xi: &Xi) -> Result<IncrementalChecker, CheckError> {
        let mut mon = IncrementalChecker::new(g.num_processes(), xi)?;
        for p in 0..g.num_processes() {
            if g.is_faulty(ProcessId(p)) {
                mon.mark_faulty(ProcessId(p));
            }
        }
        for ev in g.events() {
            match ev.trigger {
                Trigger::Init => {
                    mon.append_init(ev.process);
                }
                Trigger::Message(m) => {
                    let msg = g.message(m);
                    mon.append_send_inner(msg.from, ev.process, msg.exempt);
                }
            }
        }
        Ok(mon)
    }

    /// Drops the full execution-graph mirror so memory stays bounded by the
    /// live window: from here on only [`IncrementalChecker::prune_settled`]
    /// bookkeeping is kept per event, and [`IncrementalChecker::graph`] /
    /// [`IncrementalChecker::finish`] are unavailable (use
    /// [`IncrementalChecker::violation_summary`] for witness reporting).
    ///
    /// Pruning itself ([`IncrementalChecker::prune_settled`]) also works
    /// with the mirror kept — useful when verdict-identical comparison
    /// against the full graph is wanted — but only this call makes the
    /// memory bound `O(processes + active window + in-flight)` real.
    ///
    /// # Panics
    ///
    /// Panics if events have already been appended.
    pub fn enable_pruning(&mut self) {
        assert!(
            self.tg.total_nodes() == 0,
            "enable_pruning() must be called before any event is appended"
        );
        self.builder = None;
    }

    /// Keeps margin tracking exact across [`IncrementalChecker::prune_settled`]:
    /// every prune folds the exact live margin into a monotone floor and
    /// equips the condensed boundary shortcuts with margin-signature
    /// envelopes, so [`IncrementalChecker::current_margin`] stays equal to
    /// the batch [`crate::check::max_relevant_cycle_ratio`] on the full
    /// (never-pruned) execution. Costs extra work at each prune; without
    /// it, margin queries on a pruning monitor whose mirror was dropped
    /// ([`IncrementalChecker::enable_pruning`]) are unavailable.
    ///
    /// # Panics
    ///
    /// Panics if events were already pruned — the signatures of past
    /// prunes cannot be reconstructed.
    pub fn enable_margin_tracking(&mut self) {
        assert!(
            self.stats.pruned_events == 0,
            "enable_margin_tracking() must be called before the first prune_settled()"
        );
        self.margin_tracking = true;
    }

    /// The monitored parameter `Ξ`.
    #[must_use]
    pub fn xi(&self) -> &Xi {
        &self.xi
    }

    /// The execution graph accumulated so far (identical to what
    /// [`ExecutionGraphBuilder`] would have produced from the same calls).
    ///
    /// # Panics
    ///
    /// Panics if [`IncrementalChecker::enable_pruning`] dropped the mirror.
    #[must_use]
    pub fn graph(&self) -> &ExecutionGraph {
        self.builder
            .as_ref()
            .expect("graph() is unavailable on a pruning monitor (enable_pruning was called)")
            .graph()
    }

    /// Whether the execution appended so far satisfies the ABC condition.
    #[must_use]
    pub fn is_admissible(&self) -> bool {
        self.violation.is_none()
    }

    /// The first violating relevant cycle found, if any (latched: once a
    /// violation exists, appending more events cannot remove it).
    #[must_use]
    pub fn violation(&self) -> Option<&Cycle> {
        self.violation.as_ref()
    }

    /// The summary of the latched violation witness, if any — computed from
    /// the live window at latch time, so it is available (and identical)
    /// with or without pruning, with or without the graph mirror.
    #[must_use]
    pub fn violation_summary(&self) -> Option<&WitnessSummary> {
        self.violation_summary.as_ref()
    }

    /// Work counters and footprint marks.
    #[must_use]
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Events currently held live (not pruned).
    #[must_use]
    pub fn live_events(&self) -> usize {
        self.tg.num_live_nodes()
    }

    /// Arcs currently held live (not pruned).
    #[must_use]
    pub fn live_arcs(&self) -> usize {
        self.tg.num_arcs()
    }

    /// Whether process `p` has any event yet (works in every mode; the
    /// pruning-safe replacement for `graph().events_of(p).is_empty()`).
    #[must_use]
    pub fn process_has_events(&self, p: ProcessId) -> bool {
        self.last_event[p.0].is_some()
    }

    /// Marks process `p` Byzantine faulty: its future messages are exempt
    /// from the synchrony condition.
    ///
    /// # Panics
    ///
    /// Panics if `p` has already sent a message — the monitor cannot
    /// retract arcs, so faults must be declared up front (as a simulation
    /// does when the process is registered).
    pub fn mark_faulty(&mut self, p: ProcessId) {
        assert!(
            !self.has_sent[p.0],
            "{p} must be marked faulty before it sends"
        );
        self.faulty[p.0] = true;
        if let Some(b) = &mut self.builder {
            b.mark_faulty(p);
        }
    }

    /// Appends the wake-up (initial) event of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` already has events.
    pub fn append_init(&mut self, p: ProcessId) -> EventId {
        assert!(self.last_event[p.0].is_none(), "{p} already initialized");
        let id = self.push_node(p);
        self.last_event[p.0] = Some(id);
        self.stats.events += 1;
        if let Some(b) = &mut self.builder {
            let mirrored = b.init(p);
            debug_assert_eq!(mirrored.0, id);
        }
        EventId(id)
    }

    /// Appends a message from the computing step at `from` to process `to`
    /// (and its receive event), then re-checks the condition incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, already pruned, or `to` has no
    /// init event yet.
    pub fn append_send(&mut self, from: EventId, to: ProcessId) -> (MessageId, EventId) {
        self.append_send_inner(from, to, false)
    }

    /// Like [`IncrementalChecker::append_send`], but the message is exempt
    /// from the synchrony condition (the paper's restricted-graph hook).
    pub fn append_send_exempt(&mut self, from: EventId, to: ProcessId) -> (MessageId, EventId) {
        self.append_send_inner(from, to, true)
    }

    fn append_send_inner(
        &mut self,
        from: EventId,
        to: ProcessId,
        exempt: bool,
    ) -> (MessageId, EventId) {
        assert!(from.0 < self.tg.total_nodes(), "unknown send event");
        assert!(
            from.0 >= self.tg.base(),
            "send event {from} was already pruned: the prune_settled watermark promised \
             no further sends below e{}",
            self.tg.base()
        );
        assert!(
            self.last_event[to.0].is_some(),
            "{to} must be initialized before receiving"
        );
        OBS_APPENDS.add(1);
        // Arcs are counted as one batched add at the exit (forward +
        // backward + order + any shortcut crossings land together): one
        // recorder touch per append instead of one per arc.
        let arcs_before = self.stats.arcs;
        let base = self.tg.base();
        let sender = self.proc_of[from.0 - base];
        let effective = !exempt && !self.faulty[sender.0];
        let mid = MessageId(self.total_messages);
        self.total_messages += 1;
        self.has_sent[sender.0] = true;
        let old_arcs = self.tg.num_arcs();
        let prev_global = self.last_event[to.0].expect("receiver is initialized");
        let recv = self.push_node(to);
        self.last_event[to.0] = Some(recv);
        self.stats.events += 1;
        self.stats.messages += 1;
        if let Some(b) = &mut self.builder {
            let (mirrored_mid, mirrored_recv) = b.send(from, to);
            debug_assert_eq!((mirrored_mid, mirrored_recv.0), (mid, recv));
            if exempt {
                b.set_exempt(mirrored_mid);
            }
        }
        if self.violation.is_some() {
            // Latched: the verdict can never change, skip all arc work.
            return (mid, EventId(recv));
        }
        // Choose the new node's label directly instead of relaxing it from
        // scratch: the feasible window for `π(recv)` is
        //
        //   max(π(send) + (q,1), π(local_pred) + (0,1))  ≤  π(recv)
        //                                                ≤  π(send) + (p,−1)
        //
        // (lower bounds from recv's outgoing backward/local arcs, upper
        // bound from the incoming forward arc). Taking the *earliest*
        // feasible label — timestamp semantics: every message charged its
        // minimum delay `q` — keeps all existing labels untouched, so an
        // append that opens no window conflict costs zero relaxations. Only
        // when the window is empty (the message "spans": it arrives later
        // than the fast paths from its send event permit) is the label
        // capped to the upper bound and the tension propagated.
        let mut lower: Option<Weight> = None;
        let mut upper: Option<Weight> = None;
        if effective {
            self.push_arc(from.0, recv, ArcKind::Forward(mid));
            self.push_arc(recv, from.0, ArcKind::Backward(mid));
            let pu = self.pot[from.0 - base];
            lower = Some((pu.0 + self.q, pu.1 + 1));
            upper = Some((pu.0 + self.p, pu.1 - 1));
        }
        let live_prev = prev_global >= base;
        let mut row: Option<FrontierRow> = None;
        if live_prev {
            self.push_arc(
                recv,
                prev_global,
                ArcKind::LocalBack(LocalEdge {
                    from: EventId(prev_global),
                    to: EventId(recv),
                }),
            );
        } else {
            // `prev` was compacted: materialize its frontier row — the
            // condensed `prev ⇝ exit` paths, prefixed with the local edge
            // `recv → prev` — as shortcut arcs out of the new receive, so
            // the settled region stays exactly reachable.
            let r = self.frontier_row[to.0]
                .take()
                .expect("a pruned frontier always leaves its row behind");
            for out in &r.outs {
                let id = self.shortcuts.len();
                let local_step = CycleStep {
                    edge: ShadowEdge::Local(LocalEdge {
                        from: EventId(prev_global),
                        to: EventId(recv),
                    }),
                    against: true,
                };
                let mut steps = Vec::with_capacity(out.steps.len() + 1);
                steps.push(local_step.clone());
                steps.extend(out.steps.iter().cloned());
                let mut procs = Vec::with_capacity(out.procs.len() + 1);
                procs.push(to); // `prev` belongs to the receiving process
                procs.extend(out.procs.iter().cloned());
                // Every signature path gets the same local-edge prefix; a
                // local step carries no message, so `f`/`b` are unchanged.
                let sigs = out
                    .sigs
                    .iter()
                    .map(|s| {
                        let mut steps = Vec::with_capacity(s.steps.len() + 1);
                        steps.push(local_step.clone());
                        steps.extend(s.steps.iter().cloned());
                        let mut procs = Vec::with_capacity(s.procs.len() + 1);
                        procs.push(to);
                        procs.extend(s.procs.iter().cloned());
                        MarginSig {
                            f: s.f,
                            b: s.b,
                            steps,
                            procs,
                        }
                    })
                    .collect();
                self.shortcuts.push(ShortcutInfo {
                    weight: (out.weight.0, out.weight.1 - 1),
                    steps,
                    procs,
                    sigs,
                });
                self.push_arc(recv, out.head, ArcKind::Shortcut(id));
            }
            row = Some(r);
        }
        let pw = if live_prev {
            self.pot[prev_global - base]
        } else {
            row.as_ref().expect("row taken above").label
        };
        let bound = (pw.0, pw.1 + 1);
        lower = Some(match lower {
            Some(l) if l >= bound => l,
            _ => bound,
        });
        let mut label = lower.unwrap_or((0, 0));
        let mut tense = false;
        if let Some(u) = upper {
            if label > u {
                label = u;
                tense = true;
            }
        }
        self.pot[recv - base] = label;
        if tense {
            self.pending = Some(ConfirmCtx {
                u: from.0,
                v: recv,
                prev_global,
                prev_live: live_prev,
                seeds: row,
                mid,
                old_arcs,
            });
            self.enqueue(recv);
            self.restore_feasibility();
            self.pending = None;
        }
        OBS_ARCS.add((self.stats.arcs - arcs_before) as u64);
        (mid, EventId(recv))
    }

    fn push_node(&mut self, p: ProcessId) -> usize {
        let id = self.tg.push_node();
        self.proc_of.push(p);
        self.pot.push((0, 0));
        self.relax_count.push(0);
        self.in_queue.push(false);
        self.stats.live_events_peak = self.stats.live_events_peak.max(self.tg.num_live_nodes());
        id
    }

    fn push_arc(&mut self, from: usize, to: usize, kind: ArcKind) {
        self.tg.push_arc(from, to, kind);
        self.stats.arcs += 1;
        self.stats.live_arcs_peak = self.stats.live_arcs_peak.max(self.tg.num_arcs());
    }

    fn arc_weight(&self, kind: ArcKind) -> Weight {
        let first = match kind {
            ArcKind::Forward(_) => self.p,
            ArcKind::Backward(_) => -self.q,
            ArcKind::LocalBack(_) => 0,
            ArcKind::Shortcut(id) => return self.shortcuts[id].weight,
        };
        (first, -1)
    }

    /// Relaxes `arc`; returns the head node (global id) if its label
    /// dropped.
    fn try_relax(&mut self, ai: usize) -> Option<usize> {
        let arc = self.tg.arcs()[ai];
        let base = self.tg.base();
        let w = self.arc_weight(arc.kind);
        let from = arc.from - base;
        let to = arc.to - base;
        let cand = (self.pot[from].0 + w.0, self.pot[from].1 + w.1);
        if cand < self.pot[to] {
            self.pot[to] = cand;
            if self.relax_count[to] == 0 {
                self.touched.push(arc.to);
            }
            self.relax_count[to] += 1;
            self.stats.relaxations += 1;
            Some(arc.to)
        } else {
            None
        }
    }

    /// Queue-based re-relaxation from the enqueued tense nodes until the
    /// labels are feasible again — or, if that cannot happen (a negative
    /// cycle through a new arc), until the relaxation-count heuristic trips
    /// and the exact canonical confirmation latches the witness.
    fn restore_feasibility(&mut self) {
        let _span = abc_obs::span("monitor.frontier_repair");
        OBS_REPAIRS.add(1);
        let relaxations_before = self.stats.relaxations;
        // Without negative cycles a label only improves via simple paths, so
        // > #nodes improvements of one node in a single repair is a strong
        // negative-cycle signal — but queue orderings can exceed it benignly,
        // so every trip is confirmed by the exact canonical check (and the
        // threshold doubles on a false alarm to keep repair near-linear).
        let mut threshold = self.pot.len() as u64 + 2;
        'repair: while let Some(u) = self.queue.pop_front() {
            self.in_queue[u - self.tg.base()] = false;
            let mut cursor = self.tg.first_out(u);
            while let Some(ai) = cursor {
                cursor = self.tg.next_out(ai);
                let Some(head) = self.try_relax(ai) else {
                    continue;
                };
                if self.relax_count[head - self.tg.base()] > threshold {
                    self.stats.full_checks += 1;
                    if let Some((cycle, summary)) = self.confirm_violation() {
                        assert!(
                            summary.classification.violates(&self.xi),
                            "internal error: extracted cycle {cycle} does not violate Xi = {}",
                            self.xi
                        );
                        if let Some(b) = &self.builder {
                            debug_assert!(cycle.validate(b.graph()).is_ok());
                            debug_assert_eq!(summary, cycle.summarize(b.graph()));
                        }
                        self.violation = Some(cycle);
                        self.violation_summary = Some(summary);
                        break 'repair;
                    }
                    threshold = threshold.saturating_mul(2);
                }
                self.enqueue(head);
            }
        }
        self.queue.clear();
        let base = self.tg.base();
        for v in self.touched.drain(..) {
            self.relax_count[v - base] = 0;
            self.in_queue[v - base] = false;
        }
        OBS_RELAXATIONS.add(self.stats.relaxations - relaxations_before);
    }

    fn enqueue(&mut self, v: usize) {
        if !self.in_queue[v - self.tg.base()] {
            self.in_queue[v - self.tg.base()] = true;
            self.queue.push_back(v);
        }
    }

    /// Seeded shortest-path pass over the selected arena arcs (by index),
    /// relaxed in descending index order per round — backward and local
    /// arcs point to older events, so each round propagates whole
    /// descending chains. `seeds` are `(global node, initial label)` pairs
    /// (lex-min kept per node, first seed winning ties). Returns
    /// `(dist, pred, seed_of)` windowed by `base`/`width`: `pred` is the
    /// arc index that last improved a node, `seed_of` the index of the
    /// seed still owning its label (cleared once a relaxation beats it).
    ///
    /// # Panics
    ///
    /// Panics if relaxation does not converge within `width` rounds — the
    /// caller's arc set must be free of negative cycles (pre-append arcs
    /// during confirmation, settled prefixes during condensation).
    #[allow(clippy::type_complexity)]
    fn seeded_sssp(
        &self,
        arc_indices: &[usize],
        base: usize,
        width: usize,
        seeds: &[(usize, Weight)],
    ) -> (Vec<Option<Weight>>, Vec<Option<usize>>, Vec<Option<usize>>) {
        let arcs = self.tg.arcs();
        let mut dist: Vec<Option<Weight>> = vec![None; width];
        let mut pred: Vec<Option<usize>> = vec![None; width];
        let mut seed_of: Vec<Option<usize>> = vec![None; width];
        for (k, &(node, w)) in seeds.iter().enumerate() {
            let slot = node - base;
            if dist[slot].is_none_or(|x| w < x) {
                dist[slot] = Some(w);
                seed_of[slot] = Some(k);
            }
        }
        let mut converged = false;
        for _round in 0..=width {
            let mut changed = false;
            for &ai in arc_indices.iter().rev() {
                let arc = arcs[ai];
                let Some(d) = dist[arc.from - base] else {
                    continue;
                };
                let w = self.arc_weight(arc.kind);
                let cand = (d.0 + w.0, d.1 + w.1);
                let slot = arc.to - base;
                if dist[slot].is_none_or(|x| cand < x) {
                    dist[slot] = Some(cand);
                    pred[slot] = Some(ai);
                    seed_of[slot] = None;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        assert!(
            converged,
            "internal error: seeded shortest-path region contains a negative cycle"
        );
        (dist, pred, seed_of)
    }

    /// Exact violation confirmation via the canonical cycle shape (module
    /// docs): the append of `v` created a violating cycle iff
    /// `w(u→v) + w(v→prev) + shortest-path(prev ⇝ u over pre-append arcs)`
    /// is lexicographically negative. Pre-append arcs are feasible (no
    /// negative cycle), so the seeded shortest-path pass terminates.
    fn confirm_violation(&self) -> Option<(Cycle, WitnessSummary)> {
        let _span = abc_obs::span("monitor.confirm_sssp");
        OBS_CONFIRMS.add(1);
        let ctx = self
            .pending
            .as_ref()
            .expect("repairs always carry their append");
        let base = self.tg.base();
        let n = self.tg.num_live_nodes();
        let arcs = &self.tg.arcs()[..ctx.old_arcs];
        // A live `prev` seeds the pass at zero; a compacted one seeds it
        // with its condensed `prev ⇝ exit` paths, so `dist[u]` is the same
        // shortest `prev ⇝ u` distance the full graph would yield.
        let seeds: Vec<(usize, Weight)> = if ctx.prev_live {
            vec![(ctx.prev_global, (0, 0))]
        } else {
            let row = ctx.seeds.as_ref()?;
            if row.outs.is_empty() {
                return None;
            }
            row.outs.iter().map(|o| (o.head, o.weight)).collect()
        };
        let pre_append: Vec<usize> = (0..ctx.old_arcs).collect();
        let (dist, pred, seed_of) = self.seeded_sssp(&pre_append, base, n, &seeds);
        let du = dist[ctx.u - base]?;
        let w_fwd = self.arc_weight(ArcKind::Forward(ctx.mid));
        let w_local = (0i128, -1i128);
        let total = (du.0 + w_fwd.0 + w_local.0, du.1 + w_fwd.1 + w_local.1);
        if total >= (0, 0) {
            return None;
        }
        // Collect the path prev ⇝ u by walking predecessors back from u;
        // the walk bottoms out at a seeded node (a compacted `prev`'s seed
        // carries the condensed expansion to splice into the witness).
        let mut path = Vec::new();
        let mut node = ctx.u;
        let seed = loop {
            match pred[node - base] {
                Some(ai) => {
                    path.push(ai);
                    node = arcs[ai].from;
                }
                None => break seed_of[node - base].expect("unseeded dead end on the path"),
            }
        };
        path.reverse();
        let seed = if ctx.prev_live {
            debug_assert_eq!(node, ctx.prev_global, "live-prev paths end at prev");
            None
        } else {
            Some(seed)
        };
        // Assemble the witness steps and, in parallel, the process of every
        // vertex the cycle visits (shortcut arcs expand to their condensed
        // steps and stored interior processes).
        let mut steps = Vec::with_capacity(path.len() + 2);
        let mut procs_seq: Vec<ProcessId> = Vec::with_capacity(path.len() + 2);
        steps.push(CycleStep {
            edge: ShadowEdge::Message(ctx.mid),
            against: false,
        });
        procs_seq.push(self.proc_of[ctx.u - base]);
        steps.push(CycleStep {
            edge: ShadowEdge::Local(LocalEdge {
                from: EventId(ctx.prev_global),
                to: EventId(ctx.v),
            }),
            against: true,
        });
        procs_seq.push(self.proc_of[ctx.v - base]);
        if let Some(k) = seed {
            let out = &ctx.seeds.as_ref().expect("seed implies a row").outs[k];
            // `prev` belongs to `v`'s process; then the condensed interior.
            procs_seq.push(self.proc_of[ctx.v - base]);
            procs_seq.extend(out.procs.iter().copied());
            steps.extend(out.steps.iter().cloned());
        }
        for &ai in &path {
            let arc = arcs[ai];
            procs_seq.push(self.proc_of[arc.from - base]);
            match arc.kind {
                ArcKind::Forward(m) => steps.push(CycleStep {
                    edge: ShadowEdge::Message(m),
                    against: false,
                }),
                ArcKind::Backward(m) => steps.push(CycleStep {
                    edge: ShadowEdge::Message(m),
                    against: true,
                }),
                ArcKind::LocalBack(l) => steps.push(CycleStep {
                    edge: ShadowEdge::Local(l),
                    against: true,
                }),
                ArcKind::Shortcut(id) => {
                    let info = &self.shortcuts[id];
                    steps.extend(info.steps.iter().cloned());
                    procs_seq.extend(info.procs.iter().copied());
                }
            }
        }
        let cycle = Cycle::new(steps);
        // Summarize from the live window (no graph needed): process path in
        // traversal order, consecutive repeats collapsed, closing repeat
        // dropped — exactly `Cycle::summarize`.
        let mut process_path: Vec<ProcessId> = Vec::new();
        for &p in &procs_seq {
            if process_path.last() != Some(&p) {
                process_path.push(p);
            }
        }
        if process_path.len() > 1 && process_path.first() == process_path.last() {
            process_path.pop();
        }
        let summary = WitnessSummary {
            classification: cycle.classify(),
            process_path,
            steps: cycle.steps().len(),
        };
        Some((cycle, summary))
    }

    /// Compacts the settled prefix `[base, W)` of the monitored execution,
    /// freeing its events, arcs, potentials and bookkeeping. The cut `W` is
    /// the caller's watermark: `oldest_inflight_send` promises that **no
    /// future [`append_send`](IncrementalChecker::append_send) names a send
    /// event below it** (`None` = no old event will ever be named again —
    /// the stream is effectively over). A later append below the watermark
    /// panics — that promise is the *only* condition; in-flight messages
    /// whose send event falls below the cut are handled by the boundary
    /// condensation (see the module docs), not forbidden.
    ///
    /// Verdicts, violation latch points, and witnesses are **byte-identical**
    /// with and without pruning, at any call cadence. Returns the number of
    /// events compacted by this call.
    pub fn prune_settled(&mut self, oldest_inflight_send: Option<EventId>) -> usize {
        let _span = abc_obs::span("monitor.prune");
        let total = self.tg.total_nodes();
        let base = self.tg.base();
        debug_assert!(self.queue.is_empty(), "prune between appends only");
        let w = oldest_inflight_send.map_or(total, |e| e.0.min(total));
        if w <= base {
            return 0;
        }
        if self.violation.is_none() {
            if self.margin_tracking {
                // Fold the exact live margin into the monotone floor
                // *before* the prefix is condensed: probes after the prune
                // only range above the floor, which is what keeps the
                // boundary signature envelopes finite and exact.
                self.fold_margin_floor();
            }
            // Replace every path through the condemned prefix with an exact
            // live-to-live shortcut before the arcs disappear. Once the
            // verdict is latched no future confirmation ever walks the
            // arcs, so a latched monitor compacts without condensing.
            self.condense_boundary(w);
        }
        let dropped = w - base;
        let (nodes, arcs) = self.tg.compact_below(w);
        debug_assert_eq!(nodes, dropped);
        self.proc_of.drain(..dropped);
        self.pot.drain(..dropped);
        self.relax_count.drain(..dropped);
        self.in_queue.drain(..dropped);
        self.stats.pruned_events += nodes;
        self.stats.pruned_arcs += arcs;
        OBS_PRUNED_EVENTS.add(nodes as u64);
        OBS_PRUNED_ARCS.add(arcs as u64);
        nodes
    }

    /// Condenses the boundary of the to-be-pruned prefix `[base, w)`,
    /// ahead of `compact_below(w)`:
    ///
    /// * every (entry arc, exit arc) pair whose crossing path through the
    ///   prefix exists becomes one shortcut arc between the live endpoints,
    ///   weighted by entry + shortest internal path + exit (with the full
    ///   step expansion stored for witness reproduction);
    /// * every process whose newest event falls below the cut gets a
    ///   [`FrontierRow`] freezing its potential and its condensed paths to
    ///   each exit; stale rows (frozen at an earlier prune) whose heads now
    ///   fall below the cut are recomposed through the new prefix.
    ///
    /// The prefix's internal arcs can never change after the cut (future
    /// message arcs attach at or above the watermark, future local arcs
    /// attach to frontier rows), so these condensations stay exact forever.
    fn condense_boundary(&mut self, w: usize) {
        let base = self.tg.base();
        let win = w - base;
        // Classify the arena against the cut.
        let mut internal: Vec<usize> = Vec::new();
        let mut entries: Vec<usize> = Vec::new();
        let mut exits: Vec<usize> = Vec::new();
        for (ai, a) in self.tg.arcs().iter().enumerate() {
            match (a.from < w, a.to < w) {
                (true, true) => internal.push(ai),
                (false, true) => entries.push(ai),
                (true, false) => exits.push(ai),
                (false, false) => {}
            }
        }
        // Landing points that need a shortest-path tree inside the prefix:
        // entry-arc heads, freshly pruned frontiers, stale row heads.
        let mut landing_idx: Vec<Option<usize>> = vec![None; win];
        let mut landings: Vec<usize> = Vec::new();
        let add_landing =
            |landing_idx: &mut Vec<Option<usize>>, landings: &mut Vec<usize>, v: usize| {
                if landing_idx[v - base].is_none() {
                    landing_idx[v - base] = Some(landings.len());
                    landings.push(v);
                }
            };
        if !exits.is_empty() {
            for &ai in &entries {
                add_landing(&mut landing_idx, &mut landings, self.tg.arcs()[ai].to);
            }
            for p in 0..self.num_processes {
                match self.last_event[p] {
                    Some(le) if le >= base && le < w => {
                        add_landing(&mut landing_idx, &mut landings, le);
                    }
                    Some(le) if le < base => {
                        if let Some(row) = &self.frontier_row[p] {
                            for out in &row.outs {
                                if out.head < w {
                                    add_landing(&mut landing_idx, &mut landings, out.head);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // One shortest-path tree per landing, over the internal arcs only
        // (same seeded pass as the confirmation's — settled prefixes
        // typically converge in a handful of rounds).
        let mut dists: Vec<Vec<Option<Weight>>> = Vec::with_capacity(landings.len());
        let mut preds: Vec<Vec<Option<usize>>> = Vec::with_capacity(landings.len());
        for &start in &landings {
            let (dist, pred, _) = self.seeded_sssp(&internal, base, win, &[(start, (0, 0))]);
            dists.push(dist);
            preds.push(pred);
        }
        // Margin tracking: the parametric companion of the lex trees above.
        // `exit_sigs[li][bi]` is the signature envelope of *all* paths
        // `landings[li] ⇝ head(exits[bi])` (internal signature labels
        // extended by the exit arc), over probe ratios at or above the
        // just-folded margin floor.
        let (lo_n, lo_d) = self.margin_floor_parts();
        let exit_sigs: Vec<Vec<Vec<MarginSig>>> = if self.margin_tracking {
            landings
                .iter()
                .map(|&start| {
                    let labels = self.margin_sig_sssp(&internal, base, win, start);
                    exits
                        .iter()
                        .map(|&b| {
                            let exit_arc = self.tg.arcs()[b];
                            let deltas = self.arc_margin_sigs(exit_arc.kind);
                            let mut cands = Vec::new();
                            for l in &labels[exit_arc.from - base] {
                                let joint = (!l.steps.is_empty())
                                    .then(|| self.proc_of[exit_arc.from - base]);
                                for d in &deltas {
                                    cands.extend(sig_concat(l, joint, d));
                                }
                            }
                            margin_envelope(cands, lo_n, lo_d)
                        })
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        // The expansion of one arc: its steps and interior processes.
        let expand = |kind: ArcKind| -> (Vec<CycleStep>, Vec<ProcessId>) {
            match kind {
                ArcKind::Forward(m) => (
                    vec![CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: false,
                    }],
                    Vec::new(),
                ),
                ArcKind::Backward(m) => (
                    vec![CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: true,
                    }],
                    Vec::new(),
                ),
                ArcKind::LocalBack(l) => (
                    vec![CycleStep {
                        edge: ShadowEdge::Local(l),
                        against: true,
                    }],
                    Vec::new(),
                ),
                ArcKind::Shortcut(id) => {
                    let info = &self.shortcuts[id];
                    (info.steps.clone(), info.procs.clone())
                }
            }
        };
        // The composite `landings[li] ⇝ head(exit b)` going shortest-path
        // inside the prefix then out through `b`: (weight, steps, interior
        // procs), with the landing itself excluded from the procs.
        let compose_to_exit =
            |li: usize, b: usize| -> Option<(Weight, Vec<CycleStep>, Vec<ProcessId>)> {
                let exit_arc = self.tg.arcs()[b];
                let d = dists[li][exit_arc.from - base]?;
                let mut chain: Vec<usize> = Vec::new();
                let mut node = exit_arc.from;
                while node != landings[li] {
                    let ai = preds[li][node - base].expect("reachable nodes have predecessors");
                    chain.push(ai);
                    node = self.tg.arcs()[ai].from;
                }
                chain.reverse();
                chain.push(b);
                let bw = self.arc_weight(exit_arc.kind);
                let weight = (d.0 + bw.0, d.1 + bw.1);
                let mut steps = Vec::new();
                let mut procs = Vec::new();
                for (i, &ai) in chain.iter().enumerate() {
                    let arc = self.tg.arcs()[ai];
                    if i > 0 {
                        procs.push(self.proc_of[arc.from - base]);
                    }
                    let (s, ip) = expand(arc.kind);
                    steps.extend(s);
                    procs.extend(ip);
                }
                Some((weight, steps, procs))
            };
        // Entry → exit shortcuts, lex-min deduped per live endpoint pair —
        // both among this prune's candidates and against shortcut arcs that
        // survive the cut (long-lived boundaries would otherwise pile up
        // parallel arcs prune after prune).
        let mut live_shortcut: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for a in self.tg.arcs() {
            if a.from >= w && a.to >= w {
                if let ArcKind::Shortcut(id) = a.kind {
                    live_shortcut
                        .entry((a.from, a.to))
                        .and_modify(|e| {
                            if self.shortcuts[id].weight < self.shortcuts[*e].weight {
                                *e = id;
                            }
                        })
                        .or_insert(id);
                }
            }
        }
        let mut shortcut_slots: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let mut new_arcs: Vec<(usize, usize, ShortcutInfo)> = Vec::new();
        let mut replacements: Vec<(usize, ShortcutInfo)> = Vec::new();
        let mut updated_weights: std::collections::HashMap<usize, Weight> =
            std::collections::HashMap::new();
        // Signature merges for *surviving* shortcut arcs, keyed by old id
        // and applied after the table remap: a survivor absorbs the
        // envelopes of every new crossing path between its endpoints even
        // when its lex weight does not improve — a probe below `Ξ` may
        // prefer the new path.
        let mut sig_updates: std::collections::HashMap<usize, Vec<MarginSig>> =
            std::collections::HashMap::new();
        for &ea in entries.iter().filter(|_| !exits.is_empty()) {
            let entry_arc = self.tg.arcs()[ea];
            let li = landing_idx[entry_arc.to - base].expect("entry heads are landings");
            let ew = self.arc_weight(entry_arc.kind);
            for (bi, &b) in exits.iter().enumerate() {
                let Some((cw, csteps, cprocs)) = compose_to_exit(li, b) else {
                    continue;
                };
                let from = entry_arc.from;
                let to = self.tg.arcs()[b].to;
                let weight = (ew.0 + cw.0, ew.1 + cw.1);
                if from == to && weight >= (0, 0) {
                    // A non-negative self-loop can never improve a shortest
                    // path nor close a violating cycle: drop it. (A negative
                    // one would be a negative cycle — impossible while the
                    // verdict is open.) Margin probes lose nothing either:
                    // any cycle through the loop existed before this prune,
                    // so its ratio is already folded into the margin floor.
                    continue;
                }
                debug_assert!(
                    from != to || weight < (0, 0) || self.violation.is_some(),
                    "unlatched monitors have no negative self-loops"
                );
                let sigs = if self.margin_tracking {
                    let mut cands = Vec::new();
                    for e in &self.arc_margin_sigs(entry_arc.kind) {
                        for s in &exit_sigs[li][bi] {
                            cands.extend(sig_concat(e, Some(self.proc_of[entry_arc.to - base]), s));
                        }
                    }
                    margin_envelope(cands, lo_n, lo_d)
                } else {
                    Vec::new()
                };
                if let Some(&id) = live_shortcut.get(&(from, to)) {
                    // A surviving shortcut already covers this endpoint
                    // pair: keep whichever path is shorter, in place.
                    // (`updated_weights` overlays in-flight improvements so
                    // later candidates compare against the best so far.)
                    if self.margin_tracking {
                        let mut cands = sig_updates
                            .remove(&id)
                            .unwrap_or_else(|| self.shortcuts[id].sigs.clone());
                        cands.extend(sigs);
                        sig_updates.insert(id, margin_envelope(cands, lo_n, lo_d));
                    }
                    let current = updated_weights
                        .get(&id)
                        .copied()
                        .unwrap_or(self.shortcuts[id].weight);
                    if weight < current {
                        let (mut steps, mut procs) = expand(entry_arc.kind);
                        procs.push(self.proc_of[entry_arc.to - base]);
                        steps.extend(csteps);
                        procs.extend(cprocs);
                        replacements.push((
                            id,
                            ShortcutInfo {
                                weight,
                                steps,
                                procs,
                                // Placeholder: `sig_updates` lands after the
                                // remap and carries the merged envelope.
                                sigs: Vec::new(),
                            },
                        ));
                        updated_weights.insert(id, weight);
                    }
                    continue;
                }
                let (mut steps, mut procs) = expand(entry_arc.kind);
                procs.push(self.proc_of[entry_arc.to - base]);
                steps.extend(csteps);
                procs.extend(cprocs);
                let info = ShortcutInfo {
                    weight,
                    steps,
                    procs,
                    sigs,
                };
                match shortcut_slots.entry((from, to)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(new_arcs.len());
                        new_arcs.push((from, to, info));
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let slot = &mut new_arcs[*e.get()].2;
                        if self.margin_tracking {
                            let mut cands = std::mem::take(&mut slot.sigs);
                            cands.extend(info.sigs);
                            slot.sigs = margin_envelope(cands, lo_n, lo_d);
                        }
                        if info.weight < slot.weight {
                            slot.weight = info.weight;
                            slot.steps = info.steps;
                            slot.procs = info.procs;
                        }
                    }
                }
            }
        }
        // Frontier rows: freeze fresh ones, recompose stale ones. Per live
        // head, the lex-min path wins the row slot, but the signature
        // envelopes of *all* candidate paths to that head are merged — the
        // same weight-vs-signature split as for shortcut arcs.
        let margin_tracking = self.margin_tracking;
        let push_min = |outs: &mut Vec<RowOut>, mut cand: RowOut| match outs
            .iter_mut()
            .find(|o| o.head == cand.head)
        {
            Some(o) => {
                if margin_tracking {
                    let mut cands = std::mem::take(&mut o.sigs);
                    cands.append(&mut cand.sigs);
                    cand.sigs = margin_envelope(cands, lo_n, lo_d);
                }
                if cand.weight < o.weight {
                    *o = cand;
                } else if margin_tracking {
                    o.sigs = cand.sigs;
                }
            }
            None => outs.push(cand),
        };
        let mut new_rows: Vec<(usize, FrontierRow)> = Vec::new();
        for p in 0..self.num_processes {
            match self.last_event[p] {
                Some(le) if le >= base && le < w => {
                    let mut outs: Vec<RowOut> = Vec::new();
                    if !exits.is_empty() {
                        let li = landing_idx[le - base].expect("fresh frontiers are landings");
                        for (bi, &b) in exits.iter().enumerate() {
                            let Some((weight, steps, procs)) = compose_to_exit(li, b) else {
                                continue;
                            };
                            let sigs = if margin_tracking {
                                exit_sigs[li][bi].clone()
                            } else {
                                Vec::new()
                            };
                            push_min(
                                &mut outs,
                                RowOut {
                                    head: self.tg.arcs()[b].to,
                                    weight,
                                    steps,
                                    procs,
                                    sigs,
                                },
                            );
                        }
                    }
                    new_rows.push((
                        p,
                        FrontierRow {
                            label: self.pot[le - base],
                            outs,
                        },
                    ));
                }
                Some(le) if le < base => {
                    let Some(row) = &self.frontier_row[p] else {
                        continue;
                    };
                    let mut outs: Vec<RowOut> = Vec::new();
                    for out in &row.outs {
                        if out.head >= w {
                            push_min(&mut outs, out.clone());
                            continue;
                        }
                        if exits.is_empty() {
                            continue;
                        }
                        let li = landing_idx[out.head - base].expect("stale heads are landings");
                        for (bi, &b) in exits.iter().enumerate() {
                            let Some((cw, csteps, cprocs)) = compose_to_exit(li, b) else {
                                continue;
                            };
                            let mut steps = out.steps.clone();
                            let mut procs = out.procs.clone();
                            procs.push(self.proc_of[out.head - base]);
                            steps.extend(csteps);
                            procs.extend(cprocs);
                            let sigs = if margin_tracking {
                                let joint = Some(self.proc_of[out.head - base]);
                                let mut cands = Vec::new();
                                for s in &out.sigs {
                                    for c in &exit_sigs[li][bi] {
                                        cands.extend(sig_concat(s, joint, c));
                                    }
                                }
                                margin_envelope(cands, lo_n, lo_d)
                            } else {
                                Vec::new()
                            };
                            push_min(
                                &mut outs,
                                RowOut {
                                    head: self.tg.arcs()[b].to,
                                    weight: (out.weight.0 + cw.0, out.weight.1 + cw.1),
                                    steps,
                                    procs,
                                    sigs,
                                },
                            );
                        }
                    }
                    new_rows.push((
                        p,
                        FrontierRow {
                            label: row.label,
                            outs,
                        },
                    ));
                }
                _ => {}
            }
        }
        // Apply: rebuild the shortcut table (survivors keep their info under
        // new ids, consumed entries vanish with their arcs), then push the
        // fresh shortcut arcs and install the rows.
        let old_table = std::mem::take(&mut self.shortcuts);
        let mut remap: Vec<Option<usize>> = vec![None; old_table.len()];
        let mut new_table: Vec<ShortcutInfo> = Vec::new();
        for a in self.tg.arcs() {
            if a.from >= w && a.to >= w {
                if let ArcKind::Shortcut(id) = a.kind {
                    if remap[id].is_none() {
                        remap[id] = Some(new_table.len());
                        new_table.push(old_table[id].clone());
                    }
                }
            }
        }
        for a in self.tg.arcs_mut() {
            if a.from >= w && a.to >= w {
                if let ArcKind::Shortcut(id) = a.kind {
                    a.kind = ArcKind::Shortcut(remap[id].expect("survivor was remapped"));
                }
            }
        }
        for (old_id, info) in replacements {
            let new_id = remap[old_id].expect("replaced shortcuts survive the cut");
            new_table[new_id] = info;
        }
        for (old_id, sigs) in sig_updates {
            let new_id = remap[old_id].expect("sig-merged shortcuts survive the cut");
            new_table[new_id].sigs = sigs;
        }
        self.shortcuts = new_table;
        for (from, to, info) in new_arcs {
            let id = self.shortcuts.len();
            self.shortcuts.push(info);
            self.push_arc(from, to, ArcKind::Shortcut(id));
        }
        for (p, row) in new_rows {
            self.frontier_row[p] = Some(row);
        }
    }

    /// The margin floor as `i128` parts (`1/1` when no floor is set: the
    /// envelope interval then starts at the smallest relevant ratio).
    fn margin_floor_parts(&self) -> (i128, i128) {
        match &self.margin_floor {
            Some(r) => (
                r.numer()
                    .to_i128()
                    .expect("margin floors are small rationals"),
                r.denom()
                    .to_i128()
                    .expect("margin floors are small rationals"),
            ),
            None => (1, 1),
        }
    }

    /// The margin signatures of one live arc: plain arcs carry their single
    /// step, shortcut arcs their stored envelope.
    fn arc_margin_sigs(&self, kind: ArcKind) -> Vec<MarginSig> {
        let single = |f: i128, b: i128, edge: ShadowEdge, against: bool| {
            vec![MarginSig {
                f,
                b,
                steps: vec![CycleStep { edge, against }],
                procs: Vec::new(),
            }]
        };
        match kind {
            ArcKind::Forward(m) => single(1, 0, ShadowEdge::Message(m), false),
            ArcKind::Backward(m) => single(0, 1, ShadowEdge::Message(m), true),
            ArcKind::LocalBack(l) => single(0, 0, ShadowEdge::Local(l), true),
            ArcKind::Shortcut(id) => self.shortcuts[id].sigs.clone(),
        }
    }

    /// Signature-envelope shortest paths from `start` over the internal
    /// arcs — the parametric companion of
    /// [`IncrementalChecker::seeded_sssp`]: instead of the one lex-optimal
    /// path at `Ξ`, every node keeps the lower envelope of all incoming
    /// path signatures over probe ratios at or above the margin floor.
    ///
    /// Terminates because an insert only succeeds when a node's envelope
    /// strictly improves on some open sub-interval, and prefix cycles cost
    /// `≥ 0` everywhere on it (their ratios were folded into the floor
    /// right before condensation), so lapped signatures never survive the
    /// envelope.
    fn margin_sig_sssp(
        &self,
        internal: &[usize],
        base: usize,
        win: usize,
        start: usize,
    ) -> Vec<Vec<MarginSig>> {
        let (lo_n, lo_d) = self.margin_floor_parts();
        let arcs = self.tg.arcs();
        let mut labels: Vec<Vec<MarginSig>> = vec![Vec::new(); win];
        labels[start - base] = vec![MarginSig {
            f: 0,
            b: 0,
            steps: Vec::new(),
            procs: Vec::new(),
        }];
        let mut rounds: usize = 0;
        loop {
            let mut changed = false;
            for &ai in internal.iter().rev() {
                let arc = arcs[ai];
                if labels[arc.from - base].is_empty() {
                    continue;
                }
                let from_labels = labels[arc.from - base].clone();
                let deltas = self.arc_margin_sigs(arc.kind);
                for l in &from_labels {
                    let joint = (!l.steps.is_empty()).then(|| self.proc_of[arc.from - base]);
                    for d in &deltas {
                        let Some(cand) = sig_concat(l, joint, d) else {
                            continue;
                        };
                        changed |=
                            margin_envelope_insert(&mut labels[arc.to - base], cand, lo_n, lo_d);
                    }
                }
            }
            if !changed {
                return labels;
            }
            rounds += 1;
            assert!(
                rounds <= 100_000,
                "internal error: margin signature envelopes failed to converge"
            );
        }
    }

    /// Folds the exact live margin into the monotone floor: margins never
    /// shrink as an execution grows, so the pre-prune margin bounds every
    /// later one from below. Runs right before each condensation so that
    /// probes after the prune only range above the floor.
    fn fold_margin_floor(&mut self) {
        // Fast path: if the potentials already bound the live window at or
        // below the floor, the fold cannot raise it.
        if let (Some(floor), Some(bound)) = (&self.margin_floor, self.margin_upper_bound()) {
            if bound <= *floor {
                return;
            }
        }
        let folded = self
            .window_margin()
            .expect("margin fold overflowed the probe weights");
        if let Some((ratio, witness)) = folded {
            if self.margin_floor.as_ref().is_none_or(|f| ratio > *f) {
                self.margin_floor_witness = witness;
                self.margin_floor = Some(ratio);
            }
        }
    }

    /// Windowed negative-cycle probe at ratio `a/b` (`a > b ≥ 1`): the
    /// live-arena mirror of [`crate::check`]'s violating-cycle extraction,
    /// with shortcut arcs charged the cheapest line of their signature
    /// envelope. Returns the cycle as `(arc index, chosen signature)`
    /// pairs in traversal order if one with ratio `≥ a/b` exists.
    fn window_cycle_at(&self, a: i128, b: i128) -> Option<Vec<(usize, Option<usize>)>> {
        let base = self.tg.base();
        let n = self.tg.num_live_nodes();
        let arcs = self.tg.arcs();
        if n == 0 || arcs.is_empty() {
            return None;
        }
        let k = i128::try_from(arcs.len()).expect("arc count fits i128") + 1;
        // Scaled weight and (for shortcuts) the signature attaining it.
        let weights: Vec<(i128, Option<usize>)> = arcs
            .iter()
            .map(|arc| match arc.kind {
                ArcKind::Forward(_) => (a * k - 1, None),
                ArcKind::Backward(_) => (-b * k - 1, None),
                ArcKind::LocalBack(_) => (-1, None),
                ArcKind::Shortcut(id) => {
                    let sigs = &self.shortcuts[id].sigs;
                    let (si, cost) = sigs
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (i, a * s.f - b * s.b))
                        .min_by_key(|&(_, c)| c)
                        .expect("margin probes need signature envelopes");
                    (cost * k - 1, Some(si))
                }
            })
            .collect();
        let mut dist = vec![0i128; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut changed_node = None;
        for round in 0..=n {
            let mut changed = None;
            for (ai, arc) in arcs.iter().enumerate() {
                let cand = dist[arc.from - base] + weights[ai].0;
                if cand < dist[arc.to - base] {
                    dist[arc.to - base] = cand;
                    pred[arc.to - base] = Some(ai);
                    changed = Some(arc.to);
                }
            }
            match changed {
                None => return None,
                Some(node) if round == n => changed_node = Some(node),
                Some(_) => {}
            }
        }
        // A relaxation happened in the final round: walk back to land
        // inside the negative cycle, then collect it.
        let mut node = changed_node.expect("loop ended via final-round relaxation");
        for _ in 0..n {
            node = arcs[pred[node - base].expect("relaxed nodes have predecessors")].from;
        }
        let start = node;
        let mut picks = Vec::new();
        loop {
            let ai = pred[node - base].expect("cycle nodes have predecessors");
            picks.push((ai, weights[ai].1));
            node = arcs[ai].from;
            if node == start {
                break;
            }
        }
        picks.reverse(); // predecessor walk collects arcs destination-first
        Some(picks)
    }

    /// Windowed reversal-free ratio-1 probe: does the live arena close a
    /// relevant cycle with `|Z−| ≥ |Z+|`? The live-arena mirror of the
    /// batch line-graph pass (immediate forward/backward re-traversal of
    /// one message excluded). Shortcut arcs expand into one probe arc per
    /// stored signature so the exclusion also applies across shortcut
    /// junctions: a walk may not leave a shortcut by reversing the last
    /// message of its expansion (signature interiors are reversal-free by
    /// construction — see [`sig_concat`]).
    fn window_relevant_ratio1(&self) -> bool {
        let arcs = self.tg.arcs();
        if arcs.is_empty() {
            return false;
        }
        let base = self.tg.base();
        // Probe arcs: plain arcs carry their own step as both boundary
        // steps; each shortcut signature becomes its own parallel arc
        // bounded by its expansion's first and last steps.
        struct ProbeArc {
            tail: usize,
            head: usize,
            cost: i128, // f − b of the expansion; scaled by k below
            first: Option<CycleStep>,
            last: Option<CycleStep>,
        }
        let mut probes: Vec<ProbeArc> = Vec::new();
        for arc in arcs {
            let (tail, head) = (arc.from - base, arc.to - base);
            match arc.kind {
                ArcKind::Forward(m) => {
                    let s = CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: false,
                    };
                    probes.push(ProbeArc {
                        tail,
                        head,
                        cost: 1,
                        first: Some(s),
                        last: Some(s),
                    });
                }
                ArcKind::Backward(m) => {
                    let s = CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: true,
                    };
                    probes.push(ProbeArc {
                        tail,
                        head,
                        cost: -1,
                        first: Some(s),
                        last: Some(s),
                    });
                }
                ArcKind::LocalBack(_) => {
                    probes.push(ProbeArc {
                        tail,
                        head,
                        cost: 0,
                        first: None,
                        last: None,
                    });
                }
                ArcKind::Shortcut(id) => {
                    let sigs = &self.shortcuts[id].sigs;
                    debug_assert!(!sigs.is_empty(), "margin probes need signature envelopes");
                    for s in sigs {
                        probes.push(ProbeArc {
                            tail,
                            head,
                            cost: s.f - s.b,
                            first: s.steps.first().copied(),
                            last: s.steps.last().copied(),
                        });
                    }
                }
            }
        }
        let p_count = probes.len();
        let k = i128::try_from(p_count).expect("arc count fits i128") + 1;
        let num_nodes = self.tg.num_live_nodes();
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (pi, p) in probes.iter().enumerate() {
            incoming[p.head].push(pi);
        }
        // `dist[p]` = best walk cost ending with probe arc `p`. Per node we
        // keep the best incoming dist and the best with a *different*
        // closing step: an outgoing arc conflicts with exactly one closing
        // step (the reverse of its first), so one of the two always
        // applies.
        let mut dist = vec![0i128; p_count];
        for _round in 0..=p_count {
            let mut best: Vec<Option<(i128, Option<CycleStep>)>> = vec![None; num_nodes];
            let mut second: Vec<Option<(i128, Option<CycleStep>)>> = vec![None; num_nodes];
            for v in 0..num_nodes {
                for &pi in &incoming[v] {
                    let d = dist[pi];
                    let s = probes[pi].last;
                    match best[v] {
                        None => best[v] = Some((d, s)),
                        Some((bd, bs)) if bs == s => {
                            if d < bd {
                                best[v] = Some((d, s));
                            }
                        }
                        Some((bd, bs)) => {
                            if d < bd {
                                // The old best competes for second; a second
                                // sharing the new best's step is superseded.
                                match second[v] {
                                    Some((sd, ss)) if ss != s && sd < bd => {}
                                    _ => second[v] = Some((bd, bs)),
                                }
                                best[v] = Some((d, s));
                            } else {
                                match second[v] {
                                    Some((sd, ss)) if ss == s => {
                                        if d < sd {
                                            second[v] = Some((d, s));
                                        }
                                    }
                                    Some((sd, _)) => {
                                        if d < sd {
                                            second[v] = Some((d, s));
                                        }
                                    }
                                    None => second[v] = Some((d, s)),
                                }
                            }
                        }
                    }
                }
            }
            let mut changed = false;
            for (pi, p) in probes.iter().enumerate() {
                let Some((bd, bs)) = best[p.tail] else {
                    continue;
                };
                let conflicts = |closing: Option<CycleStep>| {
                    matches!(
                        (closing, p.first),
                        (Some(a), Some(b)) if step_reverses(&a, &b)
                    )
                };
                let inc = if conflicts(bs) {
                    match second[p.tail] {
                        Some((sd, ss)) => {
                            debug_assert!(
                                !conflicts(ss),
                                "second differs from the conflicting step"
                            );
                            sd
                        }
                        None => continue,
                    }
                } else {
                    bd
                };
                let cand = inc + p.cost * k - 1;
                if cand < dist[pi] {
                    dist[pi] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    }

    /// Expands a probe cycle (arc + chosen-signature picks, traversal
    /// order) into a witness summary — the same assembly as the violation
    /// confirmation's, shortcut arcs spliced from the chosen signature.
    fn expand_window_cycle(&self, picks: &[(usize, Option<usize>)]) -> WitnessSummary {
        let base = self.tg.base();
        let arcs = self.tg.arcs();
        let mut steps: Vec<CycleStep> = Vec::new();
        let mut procs_seq: Vec<ProcessId> = Vec::new();
        for &(ai, si) in picks {
            let arc = arcs[ai];
            procs_seq.push(self.proc_of[arc.from - base]);
            match arc.kind {
                ArcKind::Forward(m) => steps.push(CycleStep {
                    edge: ShadowEdge::Message(m),
                    against: false,
                }),
                ArcKind::Backward(m) => steps.push(CycleStep {
                    edge: ShadowEdge::Message(m),
                    against: true,
                }),
                ArcKind::LocalBack(l) => steps.push(CycleStep {
                    edge: ShadowEdge::Local(l),
                    against: true,
                }),
                ArcKind::Shortcut(id) => {
                    let sig =
                        &self.shortcuts[id].sigs[si.expect("shortcut picks carry their signature")];
                    steps.extend(sig.steps.iter().cloned());
                    procs_seq.extend(sig.procs.iter().copied());
                }
            }
        }
        let cycle = Cycle::new(steps);
        let mut process_path: Vec<ProcessId> = Vec::new();
        for &p in &procs_seq {
            if process_path.last() != Some(&p) {
                process_path.push(p);
            }
        }
        if process_path.len() > 1 && process_path.first() == process_path.last() {
            process_path.pop();
        }
        WitnessSummary {
            classification: cycle.classify(),
            process_path,
            steps: cycle.steps().len(),
        }
    }

    /// Exact margin for a pruning monitor: the max of the folded floor and
    /// the live window's best cycle ratio, found by rational bisection over
    /// the windowed probes (the live-arena mirror of
    /// [`crate::check::max_relevant_cycle_ratio`], with shortcut arcs
    /// charged their signature envelopes).
    #[allow(clippy::type_complexity)]
    fn window_margin(&self) -> Result<Option<(Ratio, Option<WitnessSummary>)>, CheckError> {
        debug_assert!(
            self.violation.is_none(),
            "latched margins come from the witness summary"
        );
        let floor = || {
            self.margin_floor
                .clone()
                .map(|r| (r, self.margin_floor_witness.clone()))
        };
        // Per-cycle step bounds: how many forward/backward message steps a
        // live cycle can take (shortcut arcs contribute their largest
        // signature component), and the largest per-arc signature mass.
        let mut f_bound: i128 = 0;
        let mut b_bound: i128 = 0;
        let mut arc_mass: i128 = 1;
        for arc in self.tg.arcs() {
            let (f, b) = match arc.kind {
                ArcKind::Forward(_) => (1, 0),
                ArcKind::Backward(_) => (0, 1),
                ArcKind::LocalBack(_) => (0, 0),
                ArcKind::Shortcut(id) => {
                    let sigs = &self.shortcuts[id].sigs;
                    (
                        sigs.iter().map(|s| s.f).max().unwrap_or(0),
                        sigs.iter().map(|s| s.b).max().unwrap_or(0),
                    )
                }
            };
            f_bound += f;
            b_bound += b;
            arc_mass = arc_mass.max(f + b);
        }
        let m = i64::try_from(f_bound.max(b_bound)).map_err(|_| CheckError::GraphTooLarge)?;
        if m == 0 {
            // No live message steps at all: the floor is the whole story.
            return Ok(floor());
        }
        // Overflow guard, mirroring the batch checker's: probe parts stay
        // ≤ max_part, each arc weight is ≤ part·mass scaled by k ≤ arcs+1,
        // and a relaxation path accumulates ≤ nodes+1 of them.
        let max_part = check::max_bisection_part(m).ok_or(CheckError::GraphTooLarge)?;
        let size = i128::try_from(self.tg.num_live_nodes().max(self.tg.num_arcs()))
            .expect("usize fits i128");
        let _ = max_part
            .checked_mul(arc_mass)
            .and_then(|x| x.checked_mul(size + 2))
            .and_then(|x| x.checked_mul(size + 2))
            .ok_or(CheckError::GraphTooLarge)?;
        let spacing_denom = m.checked_mul(m).ok_or(CheckError::GraphTooLarge)?;
        let exists_ge = |r: &Ratio| -> bool {
            let a = r
                .numer()
                .to_i128()
                .expect("bisection parts fit i128 (guarded up front)");
            let b = r
                .denom()
                .to_i128()
                .expect("bisection parts fit i128 (guarded up front)");
            if a > b {
                self.window_cycle_at(a, b).is_some()
            } else {
                self.window_relevant_ratio1()
            }
        };
        let mut lo = match &self.margin_floor {
            Some(f) => f.clone(),
            None => {
                if !exists_ge(&Ratio::one()) {
                    return Ok(None);
                }
                Ratio::one()
            }
        };
        let mut hi = Ratio::from_integer(m + 1);
        if lo >= hi {
            // The live window is too small to beat the floor.
            return Ok(floor());
        }
        // Invariant: exists_ge(hi) is false, and exists_ge(lo) is true *or*
        // `lo` is the floor (attained by a pruned cycle, maybe not a live
        // one) — either way the margin lies in [lo, hi), and the final
        // verification probe keeps the result exact in both cases.
        let spacing = Ratio::new(1, spacing_denom) / Ratio::from_integer(2);
        while &hi - &lo > spacing {
            let mid = lo.midpoint(&hi);
            if exists_ge(&mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Recover the unique B/F with F ≤ m in [lo, hi), as in the batch.
        let mut best: Option<Ratio> = None;
        for f in 1..=m {
            let fr = Ratio::from_integer(f);
            let prod = &hi * &fr;
            let b = if prod.is_integer() {
                prod.numer().clone() - BigInt::one()
            } else {
                prod.floor()
            };
            let b = b.to_i64().ok_or(CheckError::GraphTooLarge)?;
            if b < 1 {
                continue;
            }
            let cand = Ratio::new(b, f);
            if cand >= lo && best.as_ref().is_none_or(|x| cand > *x) {
                best = Some(cand);
            }
        }
        let Some(cand) = best else {
            return Ok(floor());
        };
        let a = cand
            .numer()
            .to_i128()
            .expect("recovered parts fit i128 (guarded up front)");
        let b = cand
            .denom()
            .to_i128()
            .expect("recovered parts fit i128 (guarded up front)");
        if a == b {
            // Ratio exactly 1: either the floor is already there (margins
            // are monotone, so it must then be exactly 1 itself), or the
            // ratio-1 gate above certified a live cycle. Either way there
            // is no canonical witness cycle to extract at ratio 1.
            debug_assert!(self
                .margin_floor
                .as_ref()
                .is_none_or(|f| *f == Ratio::one()));
            return Ok(Some((cand, None)));
        }
        match self.window_cycle_at(a, b) {
            Some(picks) => {
                let summary = self.expand_window_cycle(&picks);
                debug_assert_eq!(summary.classification.ratio(), Some(cand.clone()));
                Ok(Some((cand, Some(summary))))
            }
            None => {
                // The candidate interval contains only the (pruned) floor;
                // the live window stays below it.
                assert!(
                    self.margin_floor.is_some(),
                    "internal error: unverifiable window margin candidate"
                );
                Ok(floor())
            }
        }
    }

    /// The execution's current **synchrony margin**: the exact maximum
    /// relevant-cycle ratio `|Z−|/|Z+|` over everything appended so far, or
    /// `Ok(None)` while no relevant cycle exists. Matches the batch
    /// [`crate::check::max_relevant_cycle_ratio`] over the same events at
    /// every point of the stream — pruned or not — so the margin is a
    /// monotone "distance to violation" gauge: the monitor stays admissible
    /// exactly while the margin is below `Ξ`, and once the verdict latches
    /// the margin freezes at the witness's ratio.
    ///
    /// ```
    /// use abc_core::monitor::IncrementalChecker;
    /// use abc_core::graph::ProcessId;
    /// use abc_core::Xi;
    /// use abc_rational::Ratio;
    ///
    /// let xi = Xi::from_integer(3);
    /// let mut mon = IncrementalChecker::new(3, &xi)?;
    /// let q = mon.append_init(ProcessId(0));
    /// mon.append_init(ProcessId(1));
    /// mon.append_init(ProcessId(2));
    /// assert_eq!(mon.current_margin()?, None); // acyclic: no cycle yet
    /// // Fast chain 0 → 2 → 1, spanned by a slow direct message 0 → 1.
    /// let (_, r) = mon.append_send(q, ProcessId(2));
    /// mon.append_send(r, ProcessId(1));
    /// mon.append_send(q, ProcessId(1));
    /// let margin = mon.current_margin()?.expect("the span closes a cycle");
    /// assert_eq!(margin.ratio, Ratio::from_integer(2)); // 2 hops against 1
    /// assert!(mon.is_admissible()); // margin 2 is still below Ξ = 3
    /// # Ok::<(), abc_core::check::CheckError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`CheckError::GraphTooLarge`] when the (windowed) bisection
    /// arithmetic would overflow, exactly as in the batch probe.
    ///
    /// # Panics
    ///
    /// Panics on a pruning monitor whose mirror was dropped unless
    /// [`IncrementalChecker::enable_margin_tracking`] was called before the
    /// first prune.
    pub fn current_margin(&self) -> Result<Option<MarginReport>, CheckError> {
        let _span = abc_obs::span("monitor.margin_probe");
        OBS_PROBES.add(1);
        if let Some(s) = &self.violation_summary {
            let ratio = s
                .classification
                .ratio()
                .expect("latched witnesses are relevant cycles");
            return Ok(Some(MarginReport {
                ratio,
                witness: Some(s.clone()),
            }));
        }
        if let Some(builder) = &self.builder {
            let g = builder.graph();
            let Some(ratio) = check::max_relevant_cycle_ratio(g)? else {
                return Ok(None);
            };
            let witness = if ratio > Ratio::one() {
                let tg = TraversalGraph::from_graph(g);
                let p = ratio.numer().to_i128().expect("margin parts fit i128");
                let q = ratio.denom().to_i128().expect("margin parts fit i128");
                let idxs = check::violating_cycle_arcs(tg.arcs(), g.num_events(), p, q)
                    .expect("the margin ratio is attained by a cycle");
                let cycle = check::arcs_to_cycle(tg.arcs(), &idxs);
                Some(cycle.summarize(g))
            } else {
                // At ratio exactly 1 the cheapest certificate may be a
                // degenerate out-and-back walk: report no witness.
                None
            };
            return Ok(Some(MarginReport { ratio, witness }));
        }
        assert!(
            self.margin_tracking,
            "current_margin() on a pruning monitor requires enable_margin_tracking() \
             before the first prune_settled()"
        );
        Ok(self
            .window_margin()?
            .map(|(ratio, witness)| MarginReport { ratio, witness }))
    }

    /// A cheap upper bound on [`IncrementalChecker::current_margin`]: an
    /// `O(live arcs)` scan of the feasible Bellman–Ford potentials, no
    /// shortest-path probe. For every live forward arc the potential
    /// stretch `Δ = π(recv).0 − π(send).0` certifies that no relevant
    /// cycle through that message has ratio above `Δ/q` (scaling the
    /// potentials by `1/q` yields a feasible potential for the probe at
    /// that ratio; boundary-shortcut signatures with `f > 0` contribute
    /// `(Δ + q·b)/(q·f)` the same way), so the maximum stretch, combined
    /// with the folded floor, bounds the margin from above. The bound is
    /// never above `Ξ` while the verdict is open, equals the latched ratio
    /// after, and is `None` only when no relevant cycle can exist at all.
    ///
    /// This is the fast path for threshold alerting: only when the bound
    /// crosses a warning threshold does an exact (and much costlier)
    /// [`current_margin`](IncrementalChecker::current_margin) probe need
    /// to run.
    ///
    /// # Panics
    ///
    /// Panics on a pruning monitor whose mirror was dropped unless margin
    /// tracking is enabled (pruned shortcut arcs need their signatures).
    #[must_use]
    pub fn margin_upper_bound(&self) -> Option<Ratio> {
        let _span = abc_obs::span("monitor.margin_bound");
        if let Some(s) = &self.violation_summary {
            return s.classification.ratio();
        }
        assert!(
            self.builder.is_some() || self.stats.pruned_events == 0 || self.margin_tracking,
            "margin_upper_bound() on a pruning monitor requires enable_margin_tracking() \
             before the first prune_settled()"
        );
        let base = self.tg.base();
        // Max candidate as an i128 fraction (numerator, positive denominator).
        let mut best: Option<(i128, i128)> = None;
        let mut push = |num: i128, den: i128| {
            debug_assert!(den > 0);
            if best.is_none_or(|(bn, bd)| num * bd > bn * den) {
                best = Some((num, den));
            }
        };
        for arc in self.tg.arcs() {
            let d = self.pot[arc.to - base].0 - self.pot[arc.from - base].0;
            match arc.kind {
                ArcKind::Forward(_) => push(d, self.q),
                ArcKind::Shortcut(id) => {
                    for s in &self.shortcuts[id].sigs {
                        if s.f > 0 {
                            push(d + self.q * s.b, self.q * s.f);
                        }
                    }
                }
                ArcKind::Backward(_) | ArcKind::LocalBack(_) => {}
            }
        }
        let scan = best.map(|(n, d)| Ratio::from_bigints(BigInt::from(n), BigInt::from(d)));
        match (scan, self.margin_floor.clone()) {
            (Some(s), Some(f)) => Some(if s > f { s } else { f }),
            (s, f) => s.or(f),
        }
    }

    /// Consumes the monitor, returning the accumulated graph and the
    /// violation witness (if any).
    ///
    /// # Panics
    ///
    /// Panics if [`IncrementalChecker::enable_pruning`] dropped the mirror.
    #[must_use]
    pub fn finish(self) -> (ExecutionGraph, Option<Cycle>) {
        let builder = self
            .builder
            .expect("finish() is unavailable on a pruning monitor (enable_pruning was called)");
        (builder.finish(), self.violation)
    }
}

/// Do consecutive walk steps `a` then `b` immediately re-traverse one
/// message in opposite directions? Such walks are excluded from cycles
/// (the batch checker's line graph forbids them), and dropping them loses
/// no optimal signature at probe ratios `≥ 1`: contracting the pair yields
/// a valid walk whose cost is lower by `x − 1 ≥ 0`, and that walk is
/// explored on its own.
fn step_reverses(a: &CycleStep, b: &CycleStep) -> bool {
    match (a.edge, b.edge) {
        (ShadowEdge::Message(m1), ShadowEdge::Message(m2)) => m1 == m2 && a.against != b.against,
        _ => false,
    }
}

/// Concatenates two path signatures meeting at the vertex with process
/// `joint` (`None` when the left path is empty — the meeting vertex is the
/// composite's start and stays excluded from the interior). Returns `None`
/// when the junction would immediately reverse one message — see
/// [`step_reverses`].
fn sig_concat(a: &MarginSig, joint: Option<ProcessId>, d: &MarginSig) -> Option<MarginSig> {
    if let (Some(last), Some(first)) = (a.steps.last(), d.steps.first()) {
        if step_reverses(last, first) {
            return None;
        }
    }
    let mut steps = Vec::with_capacity(a.steps.len() + d.steps.len());
    steps.extend(a.steps.iter().cloned());
    steps.extend(d.steps.iter().cloned());
    let mut procs = Vec::with_capacity(a.procs.len() + d.procs.len() + 1);
    procs.extend(a.procs.iter().copied());
    procs.extend(joint);
    procs.extend(d.procs.iter().copied());
    Some(MarginSig {
        f: a.f + d.f,
        b: a.b + d.b,
        steps,
        procs,
    })
}

/// The probe ratio where the cost lines of `hi` and `lo` intersect, as a
/// positive-denominator fraction. Requires `hi.f > lo.f`.
fn sig_isect(hi: &MarginSig, lo: &MarginSig) -> (i128, i128) {
    debug_assert!(hi.f > lo.f);
    (hi.b - lo.b, hi.f - lo.f)
}

/// `a ≤ b` for fractions with positive denominators.
fn frac_le(a: (i128, i128), b: (i128, i128)) -> bool {
    debug_assert!(a.1 > 0 && b.1 > 0);
    a.0 * b.1 <= b.0 * a.1
}

/// Rebuilds the lower envelope of the cost lines `x·f − b` over the closed
/// probe-ratio interval `x ∈ [lo, ∞)` (`lo = lo_n/lo_d > 0`): keeps exactly
/// the signatures attaining the pointwise minimum on a nonempty open
/// sub-interval (weak dominance — a line tying the minimum at one point
/// only is dropped), deterministically preferring earlier candidates on
/// exact `(f, b)` ties.
fn margin_envelope(mut lines: Vec<MarginSig>, lo_n: i128, lo_d: i128) -> Vec<MarginSig> {
    if lines.len() <= 1 {
        return lines;
    }
    // Per slope only the lowest line (max `b`) can win; the stable sort
    // keeps the first-seen representative of exact ties.
    lines.sort_by(|a, b| a.f.cmp(&b.f).then(b.b.cmp(&a.b)));
    lines.dedup_by(|cur, kept| cur.f == kept.f);
    // Steepest-first hull scan: hull[i] wins an interval left of
    // hull[i+1]'s; a line whose takeover point is not strictly right of
    // its predecessor's takeover never wins anywhere.
    let mut hull: Vec<MarginSig> = Vec::new();
    for line in lines.into_iter().rev() {
        while hull.len() >= 2 {
            let last = &hull[hull.len() - 1];
            let prev = &hull[hull.len() - 2];
            if frac_le(sig_isect(last, &line), sig_isect(prev, last)) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(line);
    }
    // Clip at `lo`: leading (steepest) lines already overtaken there never
    // win on the closed interval.
    let mut start = 0;
    while start + 1 < hull.len() && frac_le(sig_isect(&hull[start], &hull[start + 1]), (lo_n, lo_d))
    {
        start += 1;
    }
    hull.drain(..start);
    hull
}

/// Envelope-inserts `cand` into `sigs`; returns whether `cand` survived
/// (improved the envelope somewhere on `[lo, ∞)`). Exact `(f, b)`
/// duplicates keep the incumbent, so label-correcting passes cannot cycle
/// through zero-cost loops.
fn margin_envelope_insert(
    sigs: &mut Vec<MarginSig>,
    cand: MarginSig,
    lo_n: i128,
    lo_d: i128,
) -> bool {
    let key = (cand.f, cand.b);
    if sigs.iter().any(|s| (s.f, s.b) == key) {
        return false;
    }
    let mut lines = std::mem::take(sigs);
    lines.push(cand);
    *sigs = margin_envelope(lines, lo_n, lo_d);
    sigs.iter().any(|s| (s.f, s.b) == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use abc_rational::Ratio;

    /// Replays the batch-test "two chains" shape through the monitor.
    fn stream_two_chain(hops: usize, xi: &Xi) -> IncrementalChecker {
        let mut mon = IncrementalChecker::new(hops + 1, xi).unwrap();
        let q = mon.append_init(ProcessId(0));
        for i in 1..=hops {
            mon.append_init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=hops {
            let (_, r) = mon.append_send(cur, ProcessId(i));
            cur = r;
        }
        mon.append_send(cur, ProcessId(1));
        assert!(
            mon.is_admissible(),
            "no relevant cycle before the spanning message"
        );
        mon.append_send(q, ProcessId(1));
        mon
    }

    #[test]
    fn detects_violation_exactly_at_the_closing_event() {
        for hops in 2..=6 {
            // Violating at Xi = hops (ratio == Xi), admissible just above.
            let at = Xi::from_integer(hops as i64);
            let mon = stream_two_chain(hops, &at);
            let w = mon.violation().expect("ratio hops >= hops");
            assert!(w.validate(mon.graph()).is_ok());
            assert!(w.classify().violates(&at));
            let above = Xi::new(Ratio::from_integer(hops as i64) + Ratio::new(1, 7)).unwrap();
            let mon = stream_two_chain(hops, &above);
            assert!(mon.is_admissible(), "hops = {hops}");
        }
    }

    #[test]
    fn violation_is_latched() {
        let xi = Xi::from_integer(2);
        let mut mon = stream_two_chain(3, &xi);
        assert!(!mon.is_admissible());
        let before = mon.violation().cloned();
        // Appending more traffic does not clear the latch.
        let (_, r) = mon.append_send(EventId(0), ProcessId(2));
        let _ = mon.append_send(r, ProcessId(0));
        assert_eq!(mon.violation().cloned(), before);
    }

    #[test]
    fn agrees_with_batch_after_every_event() {
        // A dense little exchange, checked step by step.
        let xi = Xi::from_fraction(3, 2);
        let mut mon = IncrementalChecker::new(3, &xi).unwrap();
        let script: &[(usize, usize)] = &[(0, 1), (1, 2), (2, 0), (0, 2), (3, 1), (2, 1), (1, 0)];
        let e0 = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_init(ProcessId(2));
        let _ = e0;
        for &(from, to) in script {
            let from = EventId(from % mon.graph().num_events());
            mon.append_send(from, ProcessId(to % 3));
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(mon.graph(), &xi).unwrap(),
                "monitor and batch disagree after appending from {from:?}"
            );
        }
    }

    #[test]
    fn faulty_and_exempt_messages_carry_no_arcs() {
        // two_chain(4) violates Xi = 3/2 — unless the chain's relay is
        // faulty or the spanning message is exempt.
        let xi = Xi::from_fraction(3, 2);
        let mut mon = IncrementalChecker::new(5, &xi).unwrap();
        mon.mark_faulty(ProcessId(4));
        let q = mon.append_init(ProcessId(0));
        for i in 1..=4 {
            mon.append_init(ProcessId(i));
        }
        let (_, r2) = mon.append_send(q, ProcessId(2));
        let (_, r3) = mon.append_send(r2, ProcessId(3));
        let (_, r4) = mon.append_send(r3, ProcessId(4)); // faulty relay
        mon.append_send(r4, ProcessId(1));
        mon.append_send(q, ProcessId(1));
        assert!(mon.is_admissible(), "faulty relay breaks the chain");
        assert_eq!(
            check::is_admissible(mon.graph(), &xi).unwrap(),
            mon.is_admissible()
        );

        let mut mon = IncrementalChecker::new(5, &xi).unwrap();
        let q = mon.append_init(ProcessId(0));
        for i in 1..=4 {
            mon.append_init(ProcessId(i));
        }
        let (_, r2) = mon.append_send(q, ProcessId(2));
        let (_, r3) = mon.append_send(r2, ProcessId(3));
        let (_, r4) = mon.append_send(r3, ProcessId(4));
        mon.append_send(r4, ProcessId(1));
        mon.append_send_exempt(q, ProcessId(1));
        assert!(mon.is_admissible(), "exempt spanning message");
        assert_eq!(
            check::is_admissible(mon.graph(), &xi).unwrap(),
            mon.is_admissible()
        );
    }

    #[test]
    fn mark_faulty_after_sending_panics() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        let a = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_send(a, ProcessId(1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.mark_faulty(ProcessId(0));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn from_graph_replays_faithfully() {
        let xi = Xi::from_fraction(5, 2);
        for hops in 2..=5 {
            let mut b = ExecutionGraph::builder(hops + 1);
            let q = b.init(ProcessId(0));
            for i in 1..=hops {
                b.init(ProcessId(i));
            }
            let mut cur = q;
            for i in 2..=hops {
                let (_, r) = b.send(cur, ProcessId(i));
                cur = r;
            }
            b.send(cur, ProcessId(1));
            b.send(q, ProcessId(1));
            let g = b.finish();
            let mon = IncrementalChecker::from_graph(&g, &xi).unwrap();
            assert_eq!(mon.graph(), &g);
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(&g, &xi).unwrap(),
                "hops = {hops}"
            );
        }
    }

    #[test]
    fn xi_beyond_i64_is_rejected() {
        let wide = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from(1i128 << 80),
            abc_rational::BigInt::from(3),
        ))
        .unwrap();
        assert_eq!(
            IncrementalChecker::new(2, &wide).err(),
            Some(CheckError::XiTooLarge)
        );
    }

    #[test]
    fn stats_reflect_the_stream() {
        // Comfortably admissible: every append's feasible window is open,
        // so the earliest-label assignment does zero relaxation work.
        let xi = Xi::from_integer(3);
        let mon = stream_two_chain(2, &xi);
        let s = mon.stats();
        assert_eq!(s.events, 6); // 3 inits + 3 receive events
        assert_eq!(s.messages, 3);
        assert!(s.arcs >= 2 * s.messages);
        assert_eq!(s.relaxations, 0, "no spanning message, no repair");
        assert_eq!(s.full_checks, 0);
        assert_eq!(s.pruned_events, 0);
        assert_eq!(s.live_events_peak, 6);
        // A violating stream must do real work: tension propagation and the
        // confirming canonical pass that extracts the witness.
        let xi = Xi::from_integer(2);
        let mon = stream_two_chain(2, &xi);
        assert!(!mon.is_admissible());
        assert!(mon.stats().relaxations > 0);
        assert!(mon.stats().full_checks >= 1);
    }

    #[test]
    fn violation_summary_matches_the_graph_summary() {
        let xi = Xi::from_integer(2);
        let mon = stream_two_chain(4, &xi);
        let w = mon.violation().expect("ratio 4 >= 2");
        let summary = mon.violation_summary().expect("summary latched with it");
        assert_eq!(summary, &w.summarize(mon.graph()));
        assert!(summary.classification.violates(&xi));
    }

    /// Streams a near-frontier script into two monitors, pruning one of
    /// them after every append with an honest watermark (scripts only ever
    /// send from the last `horizon` events), and asserts identical
    /// verdicts and witness bytes at every step.
    fn assert_prune_equivalent(n: usize, script: &[(usize, usize)], xi: &Xi) {
        const HORIZON: usize = 3;
        let mut plain = IncrementalChecker::new(n, xi).unwrap();
        let mut pruned = IncrementalChecker::new(n, xi).unwrap();
        pruned.enable_pruning();
        for p in 0..n {
            plain.append_init(ProcessId(p));
            pruned.append_init(ProcessId(p));
        }
        let mut total = n;
        for &(back, to) in script {
            let from = EventId(total - 1 - (back % HORIZON.min(total)));
            plain.append_send(from, ProcessId(to % n));
            pruned.append_send(from, ProcessId(to % n));
            total += 1;
            assert_eq!(plain.is_admissible(), pruned.is_admissible());
            assert_eq!(
                plain.violation_summary().map(|s| s.wire().to_string()),
                pruned.violation_summary().map(|s| s.wire().to_string())
            );
            // Honest promise: future sends name one of the last HORIZON
            // events only.
            pruned.prune_settled(Some(EventId(total.saturating_sub(HORIZON))));
        }
        assert_eq!(plain.stats().events, pruned.stats().events);
    }

    #[test]
    fn pruned_monitor_latches_identical_witnesses() {
        // A long, prunable admissible ping-pong prefix, then a violating
        // two-chain pattern built at the live frontier: the pruned monitor
        // must have compacted real state *and* still latch byte-identical
        // verdict + witness.
        for hops in 2..=5 {
            let xi = Xi::from_integer(2);
            let n = hops + 1;
            let mut plain = IncrementalChecker::new(n, &xi).unwrap();
            let mut pruned = IncrementalChecker::new(n, &xi).unwrap();
            pruned.enable_pruning();
            let mut cur = plain.append_init(ProcessId(0));
            pruned.append_init(ProcessId(0));
            for i in 1..n {
                plain.append_init(ProcessId(i));
                pruned.append_init(ProcessId(i));
            }
            // Phase 1: 100 immediately-delivered ping-pongs between p0 and
            // p1, pruning as the frontier advances.
            for round in 0..100 {
                let to = if round % 2 == 0 {
                    ProcessId(1)
                } else {
                    ProcessId(0)
                };
                let (_, r) = plain.append_send(cur, to);
                pruned.append_send(cur, to);
                cur = r;
                pruned.prune_settled(Some(cur));
            }
            // Everything but the live frontier event is compacted round by
            // round: ~(n inits + 100 ping-pongs) events pruned in total.
            assert!(
                pruned.stats().pruned_events > 90,
                "expected substantial pruning, got {}",
                pruned.stats().pruned_events
            );
            assert!(
                pruned.live_events() < 4,
                "window stayed at {} events",
                pruned.live_events()
            );
            // Phase 2: the two-chain violation rooted at the live frontier
            // event `q = cur`. Its spanning message keeps `q` in flight, so
            // the honest watermark is `q` from here on.
            let q = cur;
            pruned.prune_settled(Some(q));
            let mut chain = q;
            for i in 2..=hops {
                let (_, r) = plain.append_send(chain, ProcessId(i));
                pruned.append_send(chain, ProcessId(i));
                chain = r;
            }
            plain.append_send(chain, ProcessId(1));
            pruned.append_send(chain, ProcessId(1));
            assert!(plain.is_admissible() && pruned.is_admissible());
            plain.append_send(q, ProcessId(1));
            pruned.append_send(q, ProcessId(1));
            assert!(!plain.is_admissible(), "hops = {hops}");
            assert_eq!(plain.is_admissible(), pruned.is_admissible());
            assert_eq!(
                plain
                    .violation_summary()
                    .map(|s| s.wire().to_string())
                    .unwrap(),
                pruned
                    .violation_summary()
                    .map(|s| s.wire().to_string())
                    .unwrap(),
                "hops = {hops}"
            );
            assert_eq!(
                format!("{}", plain.violation().unwrap()),
                format!("{}", pruned.violation().unwrap()),
                "the full Cycle is byte-identical too"
            );
        }
    }

    #[test]
    fn pruning_compacts_settled_prefixes_and_keeps_verdicts() {
        // A long admissible ping-pong between two processes: with no
        // messages in flight after each delivery, nearly everything before
        // the per-process frontiers is settled.
        let xi = Xi::from_integer(3);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        mon.enable_pruning();
        let mut cur = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        let mut pruned_total = 0;
        for round in 0..200 {
            let to = ProcessId((round + 1) % 2);
            let (_, r) = mon.append_send(cur, to);
            cur = r;
            // The only in-flight message was just delivered; next send
            // comes from `cur`.
            pruned_total += mon.prune_settled(Some(cur));
        }
        assert!(mon.is_admissible());
        // Each of the ~202 events is compacted exactly once; only the live
        // frontier survives.
        assert!(pruned_total > 190, "pruned only {pruned_total}");
        assert_eq!(mon.stats().pruned_events, pruned_total);
        assert!(
            mon.live_events() < 10,
            "window stayed at {} events",
            mon.live_events()
        );
        assert!(mon.stats().live_events_peak < 12);
        // The bookkeeping still matches: totals count everything.
        assert_eq!(mon.stats().events, 202);
    }

    #[test]
    fn append_below_the_watermark_panics() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        mon.enable_pruning();
        let a = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        let (_, r) = mon.append_send(a, ProcessId(1));
        mon.prune_settled(Some(r));
        assert!(mon.stats().pruned_events > 0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.append_send(a, ProcessId(1));
        }));
        assert!(res.is_err(), "the watermark promise must be enforced");
    }

    #[test]
    fn graph_access_panics_once_pruning_is_enabled() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(1, &xi).unwrap();
        mon.enable_pruning();
        mon.append_init(ProcessId(0));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = mon.graph();
        }));
        assert!(res.is_err());
    }

    #[test]
    fn prune_cuts_through_crossing_messages_exactly() {
        // The watermark cut slices right through messages whose send event
        // is compacted while their receive stays live: the boundary
        // condensation must keep the settled region exactly reachable, so
        // a violation later closed *through* it latches with the same
        // witness bytes as an unpruned monitor.
        let xi = Xi::from_integer(2);
        let mut plain = IncrementalChecker::new(3, &xi).unwrap();
        let mut pruned = IncrementalChecker::new(3, &xi).unwrap();
        pruned.enable_pruning();
        let step = |m: &mut IncrementalChecker| {
            let a = m.append_init(ProcessId(0));
            m.append_init(ProcessId(1));
            m.append_init(ProcessId(2));
            let (_, r1) = m.append_send(a, ProcessId(1));
            // Delivered promptly (before the r1 -> p2 relay), so the prefix
            // stays admissible — but the send event `a` is about to be
            // compacted while the receive stays live: a crossing message.
            let (_, rx) = m.append_send(a, ProcessId(2));
            let (_, r2) = m.append_send(r1, ProcessId(2));
            (rx, r2)
        };
        let (rx, q) = step(&mut plain);
        step(&mut pruned);
        let cut = pruned.prune_settled(Some(rx));
        assert_eq!(cut, 4, "events 0..4 compacted at the watermark");
        assert!(pruned.stats().pruned_events > 0);
        // Close a two-chain violation rooted at the live frontier: its
        // confirmation walks paths that dip through the pruned region (via
        // the materialized frontier rows) — weights must match exactly.
        for m in [&mut plain, &mut pruned] {
            let (_, r4) = m.append_send(q, ProcessId(0));
            m.append_send(r4, ProcessId(1));
            assert!(m.is_admissible());
            m.append_send(q, ProcessId(1)); // spans the 2-chain: ratio 2
        }
        assert!(!plain.is_admissible());
        assert!(!pruned.is_admissible());
        assert_eq!(
            format!("{}", plain.violation().unwrap()),
            format!("{}", pruned.violation().unwrap())
        );
        assert_eq!(
            plain.violation_summary().unwrap().wire().to_string(),
            pruned.violation_summary().unwrap().wire().to_string()
        );
    }

    #[test]
    fn prune_equivalence_smoke_on_dense_scripts() {
        // Dense random-ish exchanges with all-delivered semantics.
        let xi = Xi::from_fraction(3, 2);
        assert_prune_equivalent(3, &[(0, 1), (1, 2), (2, 0), (0, 2), (3, 1), (2, 1)], &xi);
        assert_prune_equivalent(4, &[(0, 1), (4, 2), (1, 3), (2, 0), (5, 1), (3, 2)], &xi);
    }

    /// Drives the same script through an unpruned monitor and a pruning,
    /// margin-tracking one; at every event both margins must equal the
    /// batch `max_relevant_cycle_ratio` over the full graph, witnesses
    /// must attain the margin, and the cheap bound must dominate it.
    fn assert_margin_prune_equivalent(n: usize, script: &[(usize, usize)], xi: &Xi) {
        const HORIZON: usize = 3;
        let mut plain = IncrementalChecker::new(n, xi).unwrap();
        let mut pruned = IncrementalChecker::new(n, xi).unwrap();
        pruned.enable_pruning();
        pruned.enable_margin_tracking();
        for p in 0..n {
            plain.append_init(ProcessId(p));
            pruned.append_init(ProcessId(p));
        }
        let mut total = n;
        for &(back, to) in script {
            let from = EventId(total - 1 - (back % HORIZON.min(total)));
            plain.append_send(from, ProcessId(to % n));
            pruned.append_send(from, ProcessId(to % n));
            total += 1;
            let plain_margin = plain.current_margin().unwrap();
            let pruned_margin = pruned.current_margin().unwrap();
            if plain_margin.as_ref().map(|m| m.ratio.clone())
                != pruned_margin.as_ref().map(|m| m.ratio.clone())
            {
                panic!(
                    "margins diverge at event {total}: plain {:?} pruned {:?} admissible {} xi {:?}",
                    plain_margin.as_ref().map(|m| m.ratio.clone()),
                    pruned_margin.as_ref().map(|m| m.ratio.clone()),
                    plain.is_admissible(),
                    xi.as_ratio(),
                );
            }
            if plain.is_admissible() {
                let batch = check::max_relevant_cycle_ratio(plain.graph()).unwrap();
                assert_eq!(
                    plain_margin.as_ref().map(|m| m.ratio.clone()),
                    batch,
                    "margin disagrees with batch at event {total}"
                );
            } else {
                // Latched: both froze at the (identical) witness ratio.
                let latched = plain.violation_summary().unwrap().classification.ratio();
                assert_eq!(plain_margin.as_ref().map(|m| m.ratio.clone()), latched);
            }
            for report in [&plain_margin, &pruned_margin].into_iter().flatten() {
                if let Some(w) = &report.witness {
                    assert!(w.classification.relevant, "margin witness must be relevant");
                    assert_eq!(w.classification.ratio(), Some(report.ratio.clone()));
                }
            }
            for (mon, margin) in [(&plain, &plain_margin), (&pruned, &pruned_margin)] {
                match (mon.margin_upper_bound(), margin) {
                    (Some(bound), Some(m)) => {
                        assert!(bound >= m.ratio, "bound {bound} below margin {}", m.ratio);
                        if mon.is_admissible() {
                            assert!(bound <= *xi.as_ratio(), "open-verdict bound above Ξ");
                        }
                    }
                    (None, Some(m)) => panic!("no bound despite margin {}", m.ratio),
                    (_, None) => {}
                }
            }
            pruned.prune_settled(Some(EventId(total.saturating_sub(HORIZON))));
        }
    }

    #[test]
    fn margin_matches_batch_under_pruning_on_dense_scripts() {
        let scripts: &[(usize, &[(usize, usize)])] = &[
            (3, &[(0, 1), (1, 2), (2, 0), (0, 2), (3, 1), (2, 1), (1, 0)]),
            (4, &[(0, 1), (4, 2), (1, 3), (2, 0), (5, 1), (3, 2), (0, 3)]),
            (2, &[(0, 1), (0, 0), (1, 1), (2, 0), (0, 1), (1, 0)]),
        ];
        for xi in [Xi::from_fraction(3, 2), Xi::from_integer(4)] {
            for &(n, script) in scripts {
                assert_margin_prune_equivalent(n, script, &xi);
            }
        }
    }

    #[test]
    fn margin_reports_the_two_chain_ratio() {
        for hops in 2..=5 {
            let ratio = Ratio::from_integer(hops as i64);
            // Admissible just above: the margin is exactly `hops`.
            let above = Xi::new(ratio.clone() + Ratio::new(1, 7)).unwrap();
            let mon = stream_two_chain(hops, &above);
            assert!(mon.is_admissible());
            let m = mon.current_margin().unwrap().expect("cycle exists");
            assert_eq!(m.ratio, ratio);
            let w = m.witness.expect("margins above 1 carry a witness");
            assert!(w.classification.relevant);
            assert_eq!(w.classification.ratio(), Some(ratio.clone()));
            let bound = mon.margin_upper_bound().expect("candidates exist");
            assert!(bound >= ratio && bound <= *above.as_ratio());
            // Latched at Ξ = hops: the margin freezes at the witness.
            let at = Xi::from_integer(hops as i64);
            let mon = stream_two_chain(hops, &at);
            assert!(!mon.is_admissible());
            let m = mon.current_margin().unwrap().unwrap();
            assert_eq!(m.ratio, ratio);
            assert_eq!(m.witness.as_ref(), mon.violation_summary());
            assert_eq!(mon.margin_upper_bound(), Some(ratio));
        }
    }

    #[test]
    fn margin_floor_survives_pruning_the_witness_away() {
        // A ratio-3 two-chain, then a long prunable ping-pong: the margin
        // must stay 3 (served from the folded floor, witness intact) after
        // every trace of the cycle has been compacted away.
        let xi = Xi::from_integer(4);
        let n = 4;
        let mut plain = IncrementalChecker::new(n, &xi).unwrap();
        let mut pruned = IncrementalChecker::new(n, &xi).unwrap();
        pruned.enable_pruning();
        pruned.enable_margin_tracking();
        let q = plain.append_init(ProcessId(0));
        pruned.append_init(ProcessId(0));
        for i in 1..n {
            plain.append_init(ProcessId(i));
            pruned.append_init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=3 {
            let (_, r) = plain.append_send(cur, ProcessId(i));
            pruned.append_send(cur, ProcessId(i));
            cur = r;
        }
        let (_, r) = plain.append_send(cur, ProcessId(1));
        pruned.append_send(cur, ProcessId(1));
        let _ = r;
        let (_, span) = plain.append_send(q, ProcessId(1));
        pruned.append_send(q, ProcessId(1));
        let three = Ratio::from_integer(3);
        assert_eq!(pruned.current_margin().unwrap().unwrap().ratio, three);
        // Ping-pong p1 ⇄ p0 rooted at the spanning receive, pruning every
        // round: the two-chain is fully compacted early on.
        let mut cur = span;
        for round in 0..50 {
            let to = ProcessId(round % 2);
            let (_, r) = plain.append_send(cur, to);
            pruned.append_send(cur, to);
            cur = r;
            pruned.prune_settled(Some(cur));
            let m = pruned.current_margin().unwrap().expect("floor persists");
            assert_eq!(m.ratio, three, "round {round}");
            let w = m.witness.expect("floor keeps its witness");
            assert!(w.classification.relevant);
            assert_eq!(w.classification.ratio(), Some(three.clone()));
            assert_eq!(
                plain.current_margin().unwrap().unwrap().ratio,
                three,
                "round {round}"
            );
            assert!(pruned.margin_upper_bound().unwrap() >= three);
        }
        assert!(
            pruned.live_events() < 5,
            "window stayed at {} events",
            pruned.live_events()
        );
        assert!(pruned.stats().pruned_events > 40);
    }

    #[test]
    fn margin_tracking_after_a_prune_panics() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        mon.enable_pruning();
        let a = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_send(a, ProcessId(1));
        mon.prune_settled(None);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.enable_margin_tracking();
        }));
        assert!(res.is_err(), "tracking after a prune must be rejected");
    }

    #[test]
    fn margin_queries_on_untracked_pruning_monitors_panic() {
        let xi = Xi::from_integer(2);
        let mut mon = IncrementalChecker::new(2, &xi).unwrap();
        mon.enable_pruning();
        let a = mon.append_init(ProcessId(0));
        mon.append_init(ProcessId(1));
        mon.append_send(a, ProcessId(1));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.current_margin().unwrap();
        }));
        assert!(res.is_err(), "margin without tracking must be rejected");
    }
}
