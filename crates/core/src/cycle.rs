//! Causal chains, cycles, and the relevant/non-relevant classification
//! (Definitions 2 and 3 of the paper).
//!
//! A *cycle* `Z` in an execution graph `G` is a subgraph corresponding to a
//! cycle of the undirected shadow graph `Ĝ`. Its edges are partitioned into
//! two classes of identically-directed edges; writing `Z−`/`Z+` for the
//! restriction of the classes to messages, the class labelling is chosen so
//! that `|Z+| ≤ |Z−|`. The *orientation* of `Z` is the direction of the
//! forward edges `Z+`, and `Z` is **relevant** iff every local edge is a
//! backward edge. The ABC synchrony condition (Definition 4) then requires
//! `|Z−|/|Z+| < Ξ` for every relevant cycle.
//!
//! This module represents cycles as closed walks of *steps* (an edge plus
//! the direction in which the walk traverses it), validates them against a
//! graph, and classifies them per Definition 3. Figures 1, 3 and 4 of the
//! paper appear as unit tests.

use std::collections::HashSet;
use std::fmt;

use abc_rational::Ratio;

use crate::graph::{EventId, ExecutionGraph, LocalEdge, MessageId};
use crate::xi::Xi;

/// An edge of the shadow graph: a message or a local edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShadowEdge {
    /// A message (non-local edge).
    Message(MessageId),
    /// A local edge between consecutive events of one process.
    Local(LocalEdge),
}

/// One step of a cycle traversal: an edge and whether the walk runs against
/// the edge's direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CycleStep {
    /// The edge being traversed.
    pub edge: ShadowEdge,
    /// `true` iff the walk traverses the edge from head to tail (against
    /// its direction in the execution graph).
    pub against: bool,
}

impl CycleStep {
    /// Traversal start event in graph `g`.
    #[must_use]
    pub fn start(&self, g: &ExecutionGraph) -> EventId {
        let (from, to) = endpoints(self.edge, g);
        if self.against {
            to
        } else {
            from
        }
    }

    /// Traversal end event in graph `g`.
    #[must_use]
    pub fn end(&self, g: &ExecutionGraph) -> EventId {
        let (from, to) = endpoints(self.edge, g);
        if self.against {
            from
        } else {
            to
        }
    }
}

fn endpoints(edge: ShadowEdge, g: &ExecutionGraph) -> (EventId, EventId) {
    match edge {
        ShadowEdge::Message(m) => {
            let msg = g.message(m);
            (msg.from, msg.to)
        }
        ShadowEdge::Local(l) => (l.from, l.to),
    }
}

/// A cycle: a closed walk in the shadow graph with pairwise-distinct edges
/// and pairwise-distinct vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    steps: Vec<CycleStep>,
}

/// Errors reported by [`Cycle::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleError {
    /// A cycle needs at least two steps.
    TooShort,
    /// Step `i` does not start where step `i − 1` ends.
    BrokenChain(usize),
    /// The walk does not return to its starting event.
    NotClosed,
    /// An edge appears twice.
    RepeatedEdge(usize),
    /// A vertex is visited twice (other than start = end).
    RepeatedVertex(usize),
    /// A message step uses a message that is exempt from the synchrony
    /// condition (sent by a faulty process or explicitly exempted).
    IneffectiveMessage(MessageId),
    /// A local step's edge does not exist in the graph.
    UnknownLocalEdge(LocalEdge),
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::TooShort => write!(f, "cycle has fewer than two steps"),
            CycleError::BrokenChain(i) => write!(f, "step {i} does not continue the walk"),
            CycleError::NotClosed => write!(f, "walk does not return to its start"),
            CycleError::RepeatedEdge(i) => write!(f, "step {i} repeats an edge"),
            CycleError::RepeatedVertex(i) => write!(f, "step {i} revisits a vertex"),
            CycleError::IneffectiveMessage(m) => {
                write!(f, "message {m} is exempt from the synchrony condition")
            }
            CycleError::UnknownLocalEdge(l) => {
                write!(f, "no local edge {} -> {} in the graph", l.from, l.to)
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// The Definition 3 classification of a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// `|Z−|`: number of backward messages.
    pub backward_messages: usize,
    /// `|Z+|`: number of forward messages.
    pub forward_messages: usize,
    /// Number of local edges that are backward w.r.t. the orientation.
    pub backward_locals: usize,
    /// Number of local edges that are forward w.r.t. the orientation.
    pub forward_locals: usize,
    /// Whether the chosen orientation is the reverse of the walk direction.
    pub orientation_reversed: bool,
    /// Whether the cycle is relevant (all local edges backward).
    pub relevant: bool,
}

impl Classification {
    /// `|Z−|/|Z+|`, or `None` when `|Z+| = 0` (only possible for
    /// non-relevant cycles).
    #[must_use]
    pub fn ratio(&self) -> Option<Ratio> {
        (self.forward_messages > 0).then(|| {
            Ratio::new(
                i64::try_from(self.backward_messages).expect("cycle size fits i64"),
                i64::try_from(self.forward_messages).expect("cycle size fits i64"),
            )
        })
    }

    /// Whether this cycle *violates* the ABC synchrony condition for `xi`:
    /// it is relevant and `|Z−|/|Z+| ≥ Ξ`.
    #[must_use]
    pub fn violates(&self, xi: &Xi) -> bool {
        if !self.relevant {
            return false;
        }
        match self.ratio() {
            Some(r) => &r >= xi.as_ratio(),
            None => unreachable!("relevant cycles have at least one forward message"),
        }
    }
}

impl Cycle {
    /// Creates a cycle from traversal steps (validated lazily; call
    /// [`Cycle::validate`] to check against a graph).
    #[must_use]
    pub fn new(steps: Vec<CycleStep>) -> Cycle {
        Cycle { steps }
    }

    /// The traversal steps.
    #[must_use]
    pub fn steps(&self) -> &[CycleStep] {
        &self.steps
    }

    /// Messages of the cycle with their traversal direction
    /// (`true` = against the message direction).
    pub fn messages(&self) -> impl Iterator<Item = (MessageId, bool)> + '_ {
        self.steps.iter().filter_map(|s| match s.edge {
            ShadowEdge::Message(m) => Some((m, s.against)),
            ShadowEdge::Local(_) => None,
        })
    }

    /// Number of messages (the *length* `|Z|` in Definition 2 counts
    /// non-local edges).
    #[must_use]
    pub fn num_messages(&self) -> usize {
        self.messages().count()
    }

    /// The vertex sequence visited by the walk (one entry per step,
    /// starting events).
    #[must_use]
    pub fn vertices(&self, g: &ExecutionGraph) -> Vec<EventId> {
        self.steps.iter().map(|s| s.start(g)).collect()
    }

    /// Validates the walk against `g`: chained, closed, edge- and
    /// vertex-simple, and using only effective messages and existing local
    /// edges.
    ///
    /// # Errors
    ///
    /// Returns the first [`CycleError`] found.
    pub fn validate(&self, g: &ExecutionGraph) -> Result<(), CycleError> {
        if self.steps.len() < 2 {
            return Err(CycleError::TooShort);
        }
        for (i, step) in self.steps.iter().enumerate() {
            match step.edge {
                ShadowEdge::Message(m) => {
                    if !g.is_effective(m) {
                        return Err(CycleError::IneffectiveMessage(m));
                    }
                }
                ShadowEdge::Local(l) => {
                    if g.local_succ(l.from) != Some(l.to) {
                        return Err(CycleError::UnknownLocalEdge(l));
                    }
                }
            }
            let prev = &self.steps[(i + self.steps.len() - 1) % self.steps.len()];
            if prev.end(g) != step.start(g) {
                if i == 0 {
                    return Err(CycleError::NotClosed);
                }
                return Err(CycleError::BrokenChain(i));
            }
        }
        let mut edges = HashSet::new();
        for (i, step) in self.steps.iter().enumerate() {
            if !edges.insert(step.edge) {
                return Err(CycleError::RepeatedEdge(i));
            }
        }
        let mut vertices = HashSet::new();
        for (i, step) in self.steps.iter().enumerate() {
            if !vertices.insert(step.start(g)) {
                return Err(CycleError::RepeatedVertex(i));
            }
        }
        Ok(())
    }

    /// Classifies the cycle per Definition 3.
    ///
    /// The two edge classes are the steps traversed along vs. against their
    /// edge direction; the class with fewer *messages* becomes the forward
    /// class `Z+` (ties are broken towards relevance: if either choice makes
    /// all local edges backward, that choice is taken).
    #[must_use]
    pub fn classify(&self) -> Classification {
        let mut msgs_along = 0usize;
        let mut msgs_against = 0usize;
        let mut locals_along = 0usize;
        let mut locals_against = 0usize;
        for step in &self.steps {
            match (step.edge, step.against) {
                (ShadowEdge::Message(_), false) => msgs_along += 1,
                (ShadowEdge::Message(_), true) => msgs_against += 1,
                (ShadowEdge::Local(_), false) => locals_along += 1,
                (ShadowEdge::Local(_), true) => locals_against += 1,
            }
        }
        // Orientation: forward class = fewer messages. On a tie, prefer the
        // orientation that makes the cycle relevant, defaulting to the walk
        // direction.
        let reversed = match msgs_along.cmp(&msgs_against) {
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => locals_along != 0 && locals_against == 0,
        };
        let (fwd_msgs, bwd_msgs, fwd_locals, bwd_locals) = if reversed {
            (msgs_against, msgs_along, locals_against, locals_along)
        } else {
            (msgs_along, msgs_against, locals_along, locals_against)
        };
        Classification {
            backward_messages: bwd_msgs,
            forward_messages: fwd_msgs,
            backward_locals: bwd_locals,
            forward_locals: fwd_locals,
            orientation_reversed: reversed,
            relevant: fwd_locals == 0,
        }
    }
}

/// A human-oriented summary of a violation witness: the process path the
/// cycle visits plus its Definition 3 classification. This is what CLIs and
/// reports print instead of the raw edge list ([`Cycle`]'s `Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessSummary {
    /// The classification of the summarized cycle.
    pub classification: Classification,
    /// Processes visited by the walk, in traversal order, deduplicated
    /// along consecutive repeats (a chain through one process appears once).
    pub process_path: Vec<crate::graph::ProcessId>,
    /// Number of steps (edges) in the walk.
    pub steps: usize,
}

impl Cycle {
    /// Summarizes the cycle against its graph: process path + ratio.
    #[must_use]
    pub fn summarize(&self, g: &ExecutionGraph) -> WitnessSummary {
        let mut path = Vec::new();
        for step in &self.steps {
            let p = g.event(step.start(g)).process;
            if path.last() != Some(&p) {
                path.push(p);
            }
        }
        if path.len() > 1 && path.first() == path.last() {
            path.pop();
        }
        WitnessSummary {
            classification: self.classify(),
            process_path: path,
            steps: self.steps.len(),
        }
    }
}

/// Single-token wire rendering of a [`WitnessSummary`], for line-oriented
/// protocols: no spaces, so a violation witness fits into one field of a
/// reply line (`abc-service` replies `violation <seq> <wire>`). Produced by
/// [`WitnessSummary::wire`], parsed back by [`WitnessSummary::from_wire`];
/// the round trip is exact, so client and server can compare verdicts byte
/// for byte.
#[derive(Clone, Copy, Debug)]
pub struct WireWitness<'a>(&'a WitnessSummary);

impl fmt::Display for WireWitness<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        let c = &s.classification;
        write!(
            f,
            "zm={}/{};zl={}/{};rev={};rel={};steps={};path=",
            c.backward_messages,
            c.forward_messages,
            c.backward_locals,
            c.forward_locals,
            u8::from(c.orientation_reversed),
            u8::from(c.relevant),
            s.steps,
        )?;
        for (i, p) in s.process_path.iter().enumerate() {
            if i > 0 {
                write!(f, ">")?;
            }
            write!(f, "{}", p.0)?;
        }
        Ok(())
    }
}

impl WitnessSummary {
    /// The compact single-token wire form (see [`WireWitness`]).
    #[must_use]
    pub fn wire(&self) -> WireWitness<'_> {
        WireWitness(self)
    }

    /// Parses the wire form produced by [`WitnessSummary::wire`].
    ///
    /// # Errors
    ///
    /// A human-readable message on any malformed field.
    pub fn from_wire(s: &str) -> Result<WitnessSummary, String> {
        let mut fields: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for part in s.split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("witness wire form: expected key=value, got {part:?}"))?;
            if fields.insert(k, v).is_some() {
                return Err(format!("witness wire form: duplicate key {k:?}"));
            }
        }
        let get = |k: &str| {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| format!("witness wire form: missing key {k:?}"))
        };
        let pair = |k: &str| -> Result<(usize, usize), String> {
            let v = get(k)?;
            let (a, b) = v
                .split_once('/')
                .ok_or_else(|| format!("witness wire form: {k} expects a/b, got {v:?}"))?;
            Ok((
                a.parse().map_err(|e| format!("{k}: {e}"))?,
                b.parse().map_err(|e| format!("{k}: {e}"))?,
            ))
        };
        let flag = |k: &str| -> Result<bool, String> {
            match get(k)? {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(format!("witness wire form: {k} expects 0/1, got {other:?}")),
            }
        };
        let (backward_messages, forward_messages) = pair("zm")?;
        let (backward_locals, forward_locals) = pair("zl")?;
        let orientation_reversed = flag("rev")?;
        let relevant = flag("rel")?;
        let steps: usize = get("steps")?.parse().map_err(|e| format!("steps: {e}"))?;
        let path_field = get("path")?;
        let mut process_path = Vec::new();
        if !path_field.is_empty() {
            for p in path_field.split('>') {
                process_path.push(crate::graph::ProcessId(
                    p.parse().map_err(|e| format!("path: {e}"))?,
                ));
            }
        }
        if fields.len() != 6 {
            return Err("witness wire form: unexpected extra keys".into());
        }
        Ok(WitnessSummary {
            classification: Classification {
                backward_messages,
                forward_messages,
                backward_locals,
                forward_locals,
                orientation_reversed,
                relevant,
            },
            process_path,
            steps,
        })
    }
}

impl fmt::Display for WitnessSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.classification;
        match c.ratio() {
            Some(r) => write!(
                f,
                "|Z-|/|Z+| = {}/{} = {r}",
                c.backward_messages, c.forward_messages
            )?,
            None => write!(f, "|Z-|/|Z+| = {}/0", c.backward_messages)?,
        }
        write!(
            f,
            " ({}relevant, {} steps) via ",
            if c.relevant { "" } else { "non-" },
            self.steps
        )?;
        for (i, p) in self.process_path.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match s.edge {
                ShadowEdge::Message(m) => {
                    write!(f, "{}{}", if s.against { "-" } else { "+" }, m)?;
                }
                ShadowEdge::Local(l) => {
                    write!(
                        f,
                        "{}l({}->{})",
                        if s.against { "-" } else { "+" },
                        l.from,
                        l.to
                    )?;
                }
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProcessId;

    fn msg(m: MessageId, against: bool) -> CycleStep {
        CycleStep {
            edge: ShadowEdge::Message(m),
            against,
        }
    }

    fn local(from: EventId, to: EventId, against: bool) -> CycleStep {
        CycleStep {
            edge: ShadowEdge::Local(LocalEdge { from, to }),
            against,
        }
    }

    /// Figure 1: a "slow" chain C1 of 4 messages spans a chain C2 of 5
    /// messages between the same endpoint processes.
    ///
    /// Returns `(graph, cycle)` where the cycle traverses C1 forward, the
    /// local edge at `p` backward, and C2 backward.
    fn fig1() -> (ExecutionGraph, Cycle) {
        // Processes: 0 = q, 1 = p, 2..=5 = C2 relays, 6..=8 = C1 relays.
        let mut b = ExecutionGraph::builder(9);
        let q0 = b.init(ProcessId(0));
        let _p0 = b.init(ProcessId(1));
        for i in 2..9 {
            b.init(ProcessId(i));
        }
        // C2: q -> r2 -> r3 -> r4 -> r5 -> p (messages m0..m4).
        let (m0, a1) = b.send(q0, ProcessId(2));
        let (m1, a2) = b.send(a1, ProcessId(3));
        let (m2, a3) = b.send(a2, ProcessId(4));
        let (m3, a4) = b.send(a3, ProcessId(5));
        let (m4, u) = b.send(a4, ProcessId(1)); // arrives first at p
                                                // C1: q -> s6 -> s7 -> s8 -> p (messages m5..m8).
        let (m5, c1) = b.send(q0, ProcessId(6));
        let (m6, c2) = b.send(c1, ProcessId(7));
        let (m7, c3) = b.send(c2, ProcessId(8));
        let (m8, w) = b.send(c3, ProcessId(1)); // arrives second at p
        let g = b.finish();
        let cycle = Cycle::new(vec![
            msg(m5, false),
            msg(m6, false),
            msg(m7, false),
            msg(m8, false),
            local(u, w, true),
            msg(m4, true),
            msg(m3, true),
            msg(m2, true),
            msg(m1, true),
            msg(m0, true),
        ]);
        cycle.validate(&g).expect("figure 1 cycle is well-formed");
        (g, cycle)
    }

    #[test]
    fn fig1_is_relevant_with_ratio_five_fourths() {
        let (_g, cycle) = fig1();
        let c = cycle.classify();
        assert!(c.relevant);
        assert_eq!(c.forward_messages, 4); // C1
        assert_eq!(c.backward_messages, 5); // C2
        assert_eq!(c.backward_locals, 1);
        assert_eq!(c.ratio(), Some(Ratio::new(5, 4)));
        // Admissible for Xi = 3/2, violating for Xi = 5/4 (ratio == Xi is a
        // violation because Definition 4 requires strict inequality).
        assert!(!c.violates(&Xi::from_fraction(3, 2)));
        assert!(c.violates(&Xi::from_fraction(5, 4)));
    }

    /// Figures 3 and 4: ping-pong with `p_fast` while a reply from `p_slow`
    /// is outstanding. If the slow reply arrives *after* the fast chain's
    /// final event, a relevant cycle with ratio 4/2 = Ξ closes (Fig. 3);
    /// if it arrives *before*, the cycle is non-relevant (Fig. 4).
    fn pingpong(reply_last: bool) -> (ExecutionGraph, Cycle) {
        let mut b = ExecutionGraph::builder(3);
        let p0 = b.init(ProcessId(0)); // p
        b.init(ProcessId(1)); // p_slow
        b.init(ProcessId(2)); // p_fast
        let (m_a, s1) = b.send(p0, ProcessId(1)); // p -> p_slow
        let (m_b, f1) = b.send(p0, ProcessId(2)); // p -> p_fast
        let (m_c, e1) = b.send(f1, ProcessId(0)); // pong 1
        let (m_d, f2) = b.send(e1, ProcessId(2)); // ping 2
        let (m_e, m_f, e2, e_phi);
        if reply_last {
            let (me, x2) = b.send(f2, ProcessId(0)); // pong 2 (event ψ)
            let (mf, xphi) = b.send(s1, ProcessId(0)); // slow reply after ψ
            m_e = me;
            m_f = mf;
            e2 = x2;
            e_phi = xphi;
        } else {
            let (mf, xphi) = b.send(s1, ProcessId(0)); // slow reply before ψ
            let (me, x2) = b.send(f2, ProcessId(0)); // pong 2 (event ψ)
            m_e = me;
            m_f = mf;
            e2 = x2;
            e_phi = xphi;
        }
        let g = b.finish();
        let cycle = if reply_last {
            Cycle::new(vec![
                msg(m_a, false),
                msg(m_f, false),
                local(e2, e_phi, true),
                msg(m_e, true),
                msg(m_d, true),
                msg(m_c, true),
                msg(m_b, true),
            ])
        } else {
            Cycle::new(vec![
                msg(m_a, false),
                msg(m_f, false),
                local(e_phi, e2, false),
                msg(m_e, true),
                msg(m_d, true),
                msg(m_c, true),
                msg(m_b, true),
            ])
        };
        cycle.validate(&g).expect("ping-pong cycle is well-formed");
        (g, cycle)
    }

    #[test]
    fn fig3_late_reply_closes_violating_relevant_cycle() {
        let (_g, cycle) = pingpong(true);
        let c = cycle.classify();
        assert!(c.relevant);
        assert_eq!(c.forward_messages, 2);
        assert_eq!(c.backward_messages, 4);
        assert_eq!(c.ratio(), Some(Ratio::from_integer(2)));
        assert!(
            c.violates(&Xi::from_integer(2)),
            "|Z-|/|Z+| = 4/2 = Xi violates"
        );
        assert!(!c.violates(&Xi::from_fraction(5, 2)));
    }

    #[test]
    fn fig4_early_reply_cycle_is_non_relevant() {
        let (_g, cycle) = pingpong(false);
        let c = cycle.classify();
        assert!(!c.relevant, "local edge is forward => non-relevant");
        assert_eq!(c.forward_locals, 1);
        assert!(!c.violates(&Xi::from_integer(2)));
    }

    #[test]
    fn message_parallel_to_local_path_is_non_relevant() {
        // A self-message spans its own process line: the forward class has
        // zero messages, so the cycle cannot be relevant.
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let p1 = b.init(ProcessId(1));
        let (mx, r1) = b.send(a, ProcessId(1)); // creates a second event at p1
        let (my, r2) = b.send(r1, ProcessId(1)); // third event at p1
        let g = b.finish();
        let _ = (mx, p1);
        // Cycle: message my (r1 -> r2) vs the local edge r1 -> r2.
        let cycle = Cycle::new(vec![msg(my, false), local(r1, r2, true)]);
        cycle.validate(&g).expect("well-formed two-edge cycle");
        let c = cycle.classify();
        assert!(!c.relevant);
        assert_eq!(c.forward_messages, 0);
        assert_eq!(c.ratio(), None);
        assert!(!c.violates(&Xi::from_integer(2)));
    }

    #[test]
    fn witness_wire_form_round_trips_exactly() {
        let (g, cycle) = fig1();
        let summary = cycle.summarize(&g);
        let wire = summary.wire().to_string();
        assert!(!wire.contains(' '), "wire form must be one token: {wire}");
        let parsed = WitnessSummary::from_wire(&wire).unwrap();
        assert_eq!(parsed, summary);
        assert_eq!(parsed.wire().to_string(), wire);
        // Malformed inputs are rejected with a useful message.
        assert!(WitnessSummary::from_wire("").is_err());
        assert!(WitnessSummary::from_wire("zm=1/2").is_err(), "missing keys");
        assert!(WitnessSummary::from_wire(&wire.replace("rel=1", "rel=7")).is_err());
        assert!(WitnessSummary::from_wire(&format!("{wire};zz=1")).is_err());
    }

    #[test]
    fn validation_rejects_broken_chains_and_repeats() {
        let (g, cycle) = fig1();
        // Reversing one step breaks the chain.
        let mut broken = cycle.steps().to_vec();
        broken[0].against = true;
        assert!(matches!(
            Cycle::new(broken).validate(&g),
            Err(CycleError::NotClosed | CycleError::BrokenChain(_))
        ));
        // Too short.
        assert_eq!(
            Cycle::new(vec![cycle.steps()[0]]).validate(&g),
            Err(CycleError::TooShort)
        );
    }

    #[test]
    fn validation_rejects_exempt_messages() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let _ = b.init(ProcessId(1));
        let (m1, r1) = b.send(a, ProcessId(1));
        let (m2, _r2) = b.send(r1, ProcessId(0));
        b.mark_faulty(ProcessId(0));
        let g = b.finish();
        let cycle = Cycle::new(vec![msg(m1, false), msg(m2, false)]);
        assert!(matches!(
            cycle.validate(&g),
            Err(CycleError::IneffectiveMessage(m)) if m == m1
        ));
        let _ = m2;
    }

    #[test]
    fn witness_summary_reports_path_and_ratio() {
        let (g, cycle) = fig1();
        let s = cycle.summarize(&g);
        assert_eq!(s.steps, 10);
        assert_eq!(s.classification.ratio(), Some(Ratio::new(5, 4)));
        // The walk starts at q (p0), runs the C1 relays, hits p (p1), and
        // returns through the C2 relays; consecutive repeats collapse.
        assert_eq!(s.process_path.first(), Some(&ProcessId(0)));
        assert!(s.process_path.contains(&ProcessId(1)));
        assert_eq!(
            s.process_path.len(),
            s.process_path.windows(2).filter(|w| w[0] != w[1]).count() + 1,
            "no consecutive duplicates"
        );
        let text = s.to_string();
        assert!(text.contains("5/4"), "{text}");
        assert!(text.contains("relevant"), "{text}");
        assert!(text.contains("p0"), "{text}");
    }

    #[test]
    fn display_is_readable() {
        let (_, cycle) = fig1();
        let s = cycle.to_string();
        assert!(s.starts_with('['));
        assert!(s.contains("+m5"));
        assert!(s.contains("-m0"));
    }
}
