//! Polynomial-time checking of the ABC synchrony condition (Definition 4).
//!
//! Definition 4 quantifies over *all* relevant cycles — exponentially many.
//! This module decides admissibility in `O(V·E)` via a reduction to
//! negative-cycle detection, the piece that makes model checking the ABC
//! condition practical (brute-force enumeration, kept in
//! [`crate::enumerate`], cross-validates it in the property tests).
//!
//! # The reduction
//!
//! Build the *traversal graph* `T` over the events of `G`:
//!
//! * for every effective message `m = (u → v)`: a **forward** arc `u → v`
//!   and a **backward** arc `v → u`;
//! * for every local edge `(u → v)`: a **backward** arc `v → u` only.
//!
//! Every simple cycle of `T` traverses each local edge backwards, so by
//! Definition 3 it corresponds to a relevant cycle whenever its backward
//! message count `B` is at least its forward message count `F` — and every
//! relevant cycle arises this way (its orientation traversal uses exactly
//! the arcs of `T`). Since every cycle of `T` contains a forward message
//! (an all-backward cycle would be a directed cycle of the acyclic
//! execution graph), with `Ξ = p/q`:
//!
//! > `G` violates the ABC condition **iff** `T` contains a simple cycle
//! > with `q·B − p·F ≥ 0`
//!
//! (note `q·B − p·F ≥ 0` forces `B ≥ Ξ·F > F`, so the Definition 3
//! orientation agrees with the traversal). Cycles of non-negative weight
//! are detected exactly by scaling: give each arc the integer weight
//! `(p·[fwd] − q·[bwd])·K − 1` with `K = (#arcs)+1`; a negative cycle under
//! this weighting exists iff some cycle has `q·B − p·F ≥ 0`. Bellman–Ford
//! with predecessor extraction returns the violating relevant cycle itself.
//!
//! The exact **maximum relevant-cycle ratio** `max |Z−|/|Z+|` is computed
//! by rational bisection over the monotone predicate "∃ cycle with ratio
//! `≥ x`", followed by exact recovery of the unique bounded-denominator
//! fraction in the final interval.
//!
//! For *online* checking of a growing execution, use
//! [`crate::monitor::IncrementalChecker`], which maintains this module's
//! reduction incrementally instead of re-running it from scratch.

use abc_rational::Ratio;

use crate::cycle::{Cycle, CycleStep, ShadowEdge};
use crate::graph::{ExecutionGraph, LocalEdge, MessageId};
use crate::xi::Xi;

/// Errors reported by the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// `Ξ`'s numerator or denominator does not fit the integer weights used
    /// by the Bellman–Ford reduction (the scaled weights, accumulated along
    /// a longest relaxation path, would overflow `i128`).
    XiTooLarge,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::XiTooLarge => {
                write!(
                    f,
                    "Xi numerator/denominator exceeds the checker's integer range"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Role of a traversal-graph arc (shared with [`crate::monitor`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum ArcKind {
    Forward(MessageId),
    Backward(MessageId),
    LocalBack(LocalEdge),
}

/// One arc of the traversal graph `T` (shared with [`crate::monitor`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Arc {
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) kind: ArcKind,
}

/// Whether the scaled Bellman–Ford weights for `Ξ = p/q` stay representable
/// in `i128` throughout relaxation. The largest per-arc weight magnitude is
/// `max(p, q)·K + 1` with `K = #arcs + 1`; a distance label is a walk
/// weight, and because rounds relax in place (Gauss–Seidel), a single round
/// can extend a walk by up to `#arcs` arcs — so over the `#nodes + 1`
/// rounds a label is bounded by `(#nodes + 2)·(#arcs + 1)` arc weights
/// (reached only while lapping a negative cycle, but it must not overflow
/// there either: the witness extraction reads those labels).
fn weights_fit_i128(p: i128, q: i128, num_arcs: usize, num_nodes: usize) -> bool {
    let Ok(k) = i128::try_from(num_arcs) else {
        return false;
    };
    let Ok(n) = i128::try_from(num_nodes) else {
        return false;
    };
    p.max(q)
        .checked_mul(k + 1)
        .and_then(|w| w.checked_add(1))
        .and_then(|w| w.checked_mul(k + 1))
        .and_then(|w| w.checked_mul(n + 2))
        .is_some()
}

/// `Ξ` as `(p, q)` machine parts usable on a graph of the given size.
fn xi_parts(xi: &Xi, num_arcs: usize, num_nodes: usize) -> Result<(i128, i128), CheckError> {
    let (p, q) = xi.as_i128_parts().ok_or(CheckError::XiTooLarge)?;
    if !weights_fit_i128(p, q, num_arcs, num_nodes) {
        return Err(CheckError::XiTooLarge);
    }
    Ok((p, q))
}

fn build_arcs(g: &ExecutionGraph) -> Vec<Arc> {
    let mut arcs = Vec::with_capacity(2 * g.num_messages() + g.num_events());
    for m in g.effective_messages() {
        arcs.push(Arc {
            from: m.from.0,
            to: m.to.0,
            kind: ArcKind::Forward(m.id),
        });
        arcs.push(Arc {
            from: m.to.0,
            to: m.from.0,
            kind: ArcKind::Backward(m.id),
        });
    }
    for l in g.local_edges() {
        arcs.push(Arc {
            from: l.to.0,
            to: l.from.0,
            kind: ArcKind::LocalBack(l),
        });
    }
    arcs
}

/// Bellman–Ford negative-cycle detection over the scaled weights for
/// `Ξ = p/q`. Returns the arc indices of a violating cycle, in traversal
/// order, if one exists.
pub(crate) fn violating_cycle_arcs(
    arcs: &[Arc],
    num_nodes: usize,
    p: i128,
    q: i128,
) -> Option<Vec<usize>> {
    if num_nodes == 0 || arcs.is_empty() {
        return None;
    }
    let k = i128::try_from(arcs.len()).expect("arc count fits i128") + 1;
    let weight = |arc: &Arc| -> i128 {
        let w_prime = match arc.kind {
            ArcKind::Forward(_) => p,
            ArcKind::Backward(_) => -q,
            ArcKind::LocalBack(_) => 0,
        };
        w_prime * k - 1
    };
    let mut dist = vec![0i128; num_nodes];
    let mut pred: Vec<Option<usize>> = vec![None; num_nodes];
    let mut changed_node = None;
    for round in 0..=num_nodes {
        let mut changed = None;
        for (ai, arc) in arcs.iter().enumerate() {
            let cand = dist[arc.from] + weight(arc);
            if cand < dist[arc.to] {
                dist[arc.to] = cand;
                pred[arc.to] = Some(ai);
                changed = Some(arc.to);
            }
        }
        match changed {
            None => return None,
            Some(node) if round == num_nodes => {
                changed_node = Some(node);
            }
            Some(_) => {}
        }
    }
    // A relaxation happened in round `num_nodes`: a negative cycle exists in
    // the predecessor graph. Walk back to land inside it, then collect it.
    let mut node = changed_node.expect("loop ended via final-round relaxation");
    for _ in 0..num_nodes {
        node = arcs[pred[node].expect("relaxed nodes have predecessors")].from;
    }
    let start = node;
    let mut cycle_arcs = Vec::new();
    loop {
        let ai = pred[node].expect("cycle nodes have predecessors");
        cycle_arcs.push(ai);
        node = arcs[ai].from;
        if node == start {
            break;
        }
    }
    cycle_arcs.reverse(); // predecessor walk collects arcs destination-first
    Some(cycle_arcs)
}

pub(crate) fn arcs_to_cycle(arcs: &[Arc], indices: &[usize]) -> Cycle {
    let steps: Vec<CycleStep> = indices
        .iter()
        .map(|&ai| match arcs[ai].kind {
            ArcKind::Forward(m) => CycleStep {
                edge: ShadowEdge::Message(m),
                against: false,
            },
            ArcKind::Backward(m) => CycleStep {
                edge: ShadowEdge::Message(m),
                against: true,
            },
            ArcKind::LocalBack(l) => CycleStep {
                edge: ShadowEdge::Local(l),
                against: true,
            },
        })
        .collect();
    Cycle::new(steps)
}

/// Searches for a relevant cycle violating the ABC condition for `xi`
/// (i.e. with `|Z−|/|Z+| ≥ Ξ`). Polynomial: `O(V·E)`.
///
/// # Errors
///
/// [`CheckError::XiTooLarge`] if `Ξ`'s parts (times the graph-size scaling)
/// do not fit `i128` — only genuinely unrepresentable parameters.
///
/// # Example
///
/// ```
/// use abc_core::graph::{ExecutionGraph, ProcessId};
/// use abc_core::check::find_violation;
/// use abc_core::Xi;
///
/// // A 2-message chain q -> r -> p is spanned by a single slow message
/// // q -> p arriving later: a relevant cycle with ratio 2/1.
/// let mut b = ExecutionGraph::builder(3);
/// let q = b.init(ProcessId(0));
/// b.init(ProcessId(1));
/// b.init(ProcessId(2));
/// let (_, r) = b.send(q, ProcessId(2));
/// b.send(r, ProcessId(1)); // chain arrives first at p
/// b.send(q, ProcessId(1)); // direct message arrives second: it spans
/// let g = b.finish();
/// assert!(find_violation(&g, &Xi::from_integer(2)).unwrap().is_some());
/// assert!(find_violation(&g, &Xi::from_integer(3)).unwrap().is_none());
/// ```
pub fn find_violation(g: &ExecutionGraph, xi: &Xi) -> Result<Option<Cycle>, CheckError> {
    let arcs = build_arcs(g);
    let (p, q) = xi_parts(xi, arcs.len(), g.num_events())?;
    let Some(indices) = violating_cycle_arcs(&arcs, g.num_events(), p, q) else {
        return Ok(None);
    };
    let cycle = arcs_to_cycle(&arcs, &indices);
    debug_assert!(cycle.validate(g).is_ok(), "extracted witness must validate");
    let class = cycle.classify();
    assert!(
        class.violates(xi),
        "internal error: extracted cycle {cycle} does not violate Xi = {xi}"
    );
    Ok(Some(cycle))
}

/// Whether the execution graph satisfies the ABC synchrony condition for
/// `xi` (Definition 4).
///
/// # Errors
///
/// [`CheckError::XiTooLarge`] if `Ξ`'s parts (times the graph-size scaling)
/// do not fit `i128`.
pub fn is_admissible(g: &ExecutionGraph, xi: &Xi) -> Result<bool, CheckError> {
    let arcs = build_arcs(g);
    let (p, q) = xi_parts(xi, arcs.len(), g.num_events())?;
    Ok(violating_cycle_arcs(&arcs, g.num_events(), p, q).is_none())
}

/// Whether the graph contains any relevant cycle at all.
#[must_use]
pub fn has_relevant_cycle(g: &ExecutionGraph) -> bool {
    let arcs = build_arcs(g);
    // A relevant cycle has B >= F, i.e. ratio >= 1: test the predicate at 1.
    // p == q requires the line-graph variant (see below).
    exists_nonneg_cycle_linegraph(&arcs, 1, 1)
}

/// Line-graph Bellman–Ford: detects a cycle with `q·B − p·F ≥ 0` while
/// forbidding immediate arc reversals.
///
/// Needed when `p == q`: the forward+backward arc pair of a single message
/// forms a zero-weight closed walk that is *not* a shadow cycle (it repeats
/// the edge). For `p > q` such pairs weigh `p − q ≥ 1` and the plain
/// node-level Bellman–Ford is exact, which is why [`violating_cycle_arcs`]
/// is used there. Forbidding immediate reversals suffices: a reversal-free
/// closed walk of non-positive scaled weight always contains a genuine
/// violating shadow cycle (messages have unique receive events, so the
/// only outgoing backward-message arc at a node reverses the message just
/// received — an all-pairs walk would have to run causally forward forever
/// and could never close).
fn exists_nonneg_cycle_linegraph(arcs: &[Arc], p: i128, q: i128) -> bool {
    if arcs.is_empty() {
        return false;
    }
    let a_count = arcs.len();
    let k = i128::try_from(a_count).expect("arc count fits i128") + 1;
    let weight = |arc: &Arc| -> i128 {
        let w_prime = match arc.kind {
            ArcKind::Forward(_) => p,
            ArcKind::Backward(_) => -q,
            ArcKind::LocalBack(_) => 0,
        };
        w_prime * k - 1
    };
    // Reverse pairing: build_arcs pushes Forward then Backward per message.
    let rev = |idx: usize| -> Option<usize> {
        match arcs[idx].kind {
            ArcKind::Forward(_) => Some(idx + 1),
            ArcKind::Backward(_) => Some(idx - 1),
            ArcKind::LocalBack(_) => None,
        }
    };
    let num_nodes = arcs.iter().map(|a| a.from.max(a.to) + 1).max().unwrap_or(0);
    // Group in-arcs by head node for the min/second-min trick.
    let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (i, a) in arcs.iter().enumerate() {
        in_arcs[a.to].push(i);
    }
    let mut dist = vec![0i128; a_count];
    for round in 0..=a_count {
        // Per node: best and second-best incoming dist (by arc).
        let mut best: Vec<Option<(i128, usize)>> = vec![None; num_nodes];
        let mut second: Vec<Option<i128>> = vec![None; num_nodes];
        for (v, list) in in_arcs.iter().enumerate() {
            for &ai in list {
                let d = dist[ai];
                match best[v] {
                    None => best[v] = Some((d, ai)),
                    Some((bd, bi)) => {
                        if d < bd {
                            second[v] = Some(bd);
                            best[v] = Some((d, ai));
                        } else if second[v].is_none_or(|s| d < s) {
                            second[v] = Some(d);
                        }
                        let _ = bi;
                    }
                }
            }
        }
        let mut changed = false;
        for (bi, b) in arcs.iter().enumerate() {
            let tail = b.from;
            let Some((bd, barg)) = best[tail] else {
                continue;
            };
            let incoming = if rev(bi) == Some(barg) {
                match second[tail] {
                    Some(s) => s,
                    None => continue,
                }
            } else {
                bd
            };
            let cand = incoming + weight(b);
            if cand < dist[bi] {
                dist[bi] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        let _ = round;
    }
    true
}

/// The exact maximum `|Z−|/|Z+|` over all relevant cycles of `g`, or `None`
/// if `g` has no relevant cycle.
///
/// The value is the *infimum* of the `Ξ` values for which `g` is admissible:
/// `is_admissible(g, xi)` holds iff `xi > max_relevant_cycle_ratio(g)`.
///
/// Complexity: `O(V·E·log(E))` (rational bisection over the Bellman–Ford
/// predicate, then exact recovery of the bounded-denominator fraction).
#[must_use]
pub fn max_relevant_cycle_ratio(g: &ExecutionGraph) -> Option<Ratio> {
    let arcs = build_arcs(g);
    let num_nodes = g.num_events();
    let exists_ge = |r: &Ratio| -> bool {
        let p = r.numer().to_i128().expect("bisection numerators fit i128");
        let q = r
            .denom()
            .to_i128()
            .expect("bisection denominators fit i128");
        if p > q {
            violating_cycle_arcs(&arcs, num_nodes, p, q).is_some()
        } else {
            // p == q == 1 (ratio-1 probe): needs the reversal-free variant.
            exists_nonneg_cycle_linegraph(&arcs, p, q)
        }
    };
    if !exists_ge(&Ratio::one()) {
        return None;
    }
    let m = i64::try_from(g.effective_messages().count()).expect("message count fits i64");
    debug_assert!(m >= 1);
    // Invariant: exists_ge(lo) is true, exists_ge(hi) is false.
    let mut lo = Ratio::one();
    let mut hi = Ratio::from_integer(m + 1);
    // Bisect until the interval is shorter than the minimal spacing 1/m²
    // between distinct fractions with numerator and denominator ≤ m.
    let spacing = Ratio::new(1, m.checked_mul(m).expect("m² fits i64")) / Ratio::from_integer(2);
    while &hi - &lo > spacing {
        let mid = lo.midpoint(&hi);
        if exists_ge(&mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Recover the unique B/F with F ≤ m in [lo, hi): for each denominator F,
    // the largest B with B/F < hi, kept if B/F ≥ lo.
    let mut best: Option<Ratio> = None;
    for f in 1..=m {
        let fr = Ratio::from_integer(f);
        let prod = &hi * &fr;
        let b = if prod.is_integer() {
            prod.numer().clone() - abc_rational::BigInt::one()
        } else {
            prod.floor()
        };
        let b = b.to_i64().expect("candidate numerator fits i64");
        if b < 1 {
            continue;
        }
        let cand = Ratio::new(b, f);
        if cand >= lo && best.as_ref().is_none_or(|x| cand > *x) {
            best = Some(cand);
        }
    }
    let best = best.expect("the maximum ratio lies in the final interval");
    debug_assert!(exists_ge(&best), "recovered ratio must be attained");
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_relevant_cycles, EnumerationLimits};
    use crate::graph::ProcessId;

    /// A fast `hops`-message chain q -> relays -> p, spanned by one slow
    /// direct message q -> p that arrives later: relevant cycle with ratio
    /// `hops / 1`.
    fn two_chain(hops: usize) -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(hops + 1);
        let q = b.init(ProcessId(0));
        for i in 1..=hops {
            b.init(ProcessId(i));
        }
        // Fast chain: q -> 2 -> 3 -> ... -> hops -> 1, arriving first at p.
        let mut cur = q;
        for i in 2..=hops {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1));
        // Slow direct message arrives second: it spans the fast chain.
        b.send(q, ProcessId(1));
        b.finish()
    }

    #[test]
    fn two_chain_ratio_is_hops() {
        for hops in 2..=6 {
            let g = two_chain(hops);
            let ratio = max_relevant_cycle_ratio(&g).expect("cycle exists");
            assert_eq!(ratio, Ratio::from_integer(hops as i64), "hops = {hops}");
            // Admissible strictly above the ratio, violating at or below it.
            let at = Xi::new(ratio.clone()).unwrap();
            assert!(!is_admissible(&g, &at).unwrap());
            let above = Xi::new(&ratio + &Ratio::new(1, 7)).unwrap();
            assert!(is_admissible(&g, &above).unwrap());
        }
    }

    #[test]
    fn violation_witness_is_a_violating_relevant_cycle() {
        let g = two_chain(4);
        let xi = Xi::from_integer(2);
        let w = find_violation(&g, &xi).unwrap().expect("ratio 4 >= 2");
        assert!(w.validate(&g).is_ok());
        let c = w.classify();
        assert!(c.relevant);
        assert!(c.ratio().unwrap() >= Ratio::from_integer(2));
    }

    #[test]
    fn acyclic_graphs_are_admissible_for_every_xi() {
        let mut b = ExecutionGraph::builder(3);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        b.send(a, ProcessId(1));
        b.send(a, ProcessId(2));
        let g = b.finish();
        assert!(!has_relevant_cycle(&g));
        assert_eq!(max_relevant_cycle_ratio(&g), None);
        assert!(is_admissible(&g, &Xi::from_fraction(101, 100)).unwrap());
    }

    #[test]
    fn faulty_messages_do_not_violate() {
        // Same shape as two_chain(4) — ratio 4, violating Xi = 3/2 — but one
        // relay of the fast chain is Byzantine, so the chain's messages are
        // dropped from the condition and no relevant cycle remains.
        let mut b = ExecutionGraph::builder(5);
        let q = b.init(ProcessId(0));
        for i in 1..=4 {
            b.init(ProcessId(i));
        }
        let (_, r2) = b.send(q, ProcessId(2));
        let (_, r3) = b.send(r2, ProcessId(3));
        let (_, r4) = b.send(r3, ProcessId(4));
        b.send(r4, ProcessId(1));
        b.send(q, ProcessId(1)); // slow spanning message
        let g_violating = b.clone().finish();
        assert!(!is_admissible(&g_violating, &Xi::from_fraction(3, 2)).unwrap());
        b.mark_faulty(ProcessId(4));
        let g = b.finish();
        assert!(is_admissible(&g, &Xi::from_fraction(3, 2)).unwrap());
    }

    #[test]
    fn ratio_exactly_xi_is_a_violation() {
        // Definition 4 requires |Z−|/|Z+| < Ξ strictly.
        let g = two_chain(3);
        assert!(!is_admissible(&g, &Xi::from_integer(3)).unwrap());
        assert!(is_admissible(&g, &Xi::from_fraction(31, 10)).unwrap());
    }

    #[test]
    fn fractional_ratios_are_exact() {
        // Two chains of 5 and 4 messages: ratio 5/4 (the Fig. 1 shape).
        let mut b = ExecutionGraph::builder(9);
        let q = b.init(ProcessId(0));
        for i in 1..9 {
            b.init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=5 {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1)); // 5-message chain
        let mut cur = q;
        for i in 6..=8 {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1)); // 4-message chain, arrives later
        let g = b.finish();
        assert_eq!(max_relevant_cycle_ratio(&g), Some(Ratio::new(5, 4)));
        assert!(!is_admissible(&g, &Xi::from_fraction(5, 4)).unwrap());
        assert!(is_admissible(&g, &Xi::from_fraction(13, 10)).unwrap());
    }

    #[test]
    fn checker_agrees_with_enumeration_on_small_graphs() {
        // Cross-validation: the max ratio from brute-force enumeration
        // equals the checker's on several hand-built graphs.
        for hops in 2..=5 {
            let g = two_chain(hops);
            let brute = enumerate_relevant_cycles(&g, EnumerationLimits::default())
                .cycles
                .iter()
                .filter_map(|c| c.classify().ratio())
                .max();
            assert_eq!(max_relevant_cycle_ratio(&g), brute, "hops = {hops}");
        }
    }

    #[test]
    fn xi_too_large_is_reported() {
        let g = two_chain(2);
        let huge = Xi::new(Ratio::from_bigints(
            "170141183460469231731687303715884105727".parse().unwrap(),
            abc_rational::BigInt::from(1),
        ))
        .unwrap();
        assert_eq!(find_violation(&g, &huge), Err(CheckError::XiTooLarge));
        assert_eq!(is_admissible(&g, &huge), Err(CheckError::XiTooLarge));
    }

    #[test]
    fn xi_beyond_i64_is_now_representable() {
        // Parts wider than i64 but within the i128 weight budget used to
        // trip XiTooLarge; the widened reduction handles them exactly.
        let g = two_chain(2);
        let wide = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from(1i128 << 80),
            abc_rational::BigInt::from(3),
        ))
        .unwrap();
        assert!(wide.as_i64_parts().is_none());
        assert!(is_admissible(&g, &wide).unwrap(), "ratio 2 is below 2^80/3");
        assert_eq!(find_violation(&g, &wide).unwrap(), None);
        // And a violating case: Xi barely above 1 with a >i64 denominator.
        let tight = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from((1i128 << 80) + 1),
            abc_rational::BigInt::from(1i128 << 80),
        ))
        .unwrap();
        assert!(!is_admissible(&g, &tight).unwrap(), "ratio 2 exceeds ~1");
        assert!(find_violation(&g, &tight).unwrap().is_some());
    }

    #[test]
    fn near_limit_xi_on_violating_graph_is_rejected_not_overflowed() {
        // Regression: with a violating cycle present, in-place relaxation
        // laps the cycle once per round, so labels accumulate up to
        // #rounds · #arcs weights — a Xi this size must be rejected by the
        // guard, not silently overflow i128 during detection.
        let g = two_chain(10);
        let p = abc_rational::BigInt::from(1i128 << 117);
        let q = &p - &abc_rational::BigInt::one();
        let xi = Xi::new(Ratio::from_bigints(p, q)).unwrap();
        assert_eq!(find_violation(&g, &xi), Err(CheckError::XiTooLarge));
        assert_eq!(is_admissible(&g, &xi), Err(CheckError::XiTooLarge));
    }
}
