//! Polynomial-time checking of the ABC synchrony condition (Definition 4).
//!
//! Definition 4 quantifies over *all* relevant cycles — exponentially many.
//! This module decides admissibility in `O(V·E)` via a reduction to
//! negative-cycle detection, the piece that makes model checking the ABC
//! condition practical (brute-force enumeration, kept in
//! [`crate::enumerate`], cross-validates it in the property tests).
//!
//! # The reduction
//!
//! Build the *traversal graph* `T` over the events of `G` (one shared
//! [`crate::traversal::TraversalGraph`], built once per call and consumed
//! by every pass below):
//!
//! * for every effective message `m = (u → v)`: a **forward** arc `u → v`
//!   and a **backward** arc `v → u`;
//! * for every local edge `(u → v)`: a **backward** arc `v → u` only.
//!
//! Every simple cycle of `T` traverses each local edge backwards, so by
//! Definition 3 it corresponds to a relevant cycle whenever its backward
//! message count `B` is at least its forward message count `F` — and every
//! relevant cycle arises this way (its orientation traversal uses exactly
//! the arcs of `T`). Since every cycle of `T` contains a forward message
//! (an all-backward cycle would be a directed cycle of the acyclic
//! execution graph), with `Ξ = p/q`:
//!
//! > `G` violates the ABC condition **iff** `T` contains a simple cycle
//! > with `q·B − p·F ≥ 0`
//!
//! (note `q·B − p·F ≥ 0` forces `B ≥ Ξ·F > F`, so the Definition 3
//! orientation agrees with the traversal). Cycles of non-negative weight
//! are detected exactly by scaling: give each arc the integer weight
//! `(p·[fwd] − q·[bwd])·K − 1` with `K = (#arcs)+1`; a negative cycle under
//! this weighting exists iff some cycle has `q·B − p·F ≥ 0`.
//!
//! The *decision* seeds in-place Bellman–Ford with the
//! **earliest-feasible potential** (each event labeled, in topological
//! order, at the smallest value its backward and local arcs allow — the
//! incremental monitor's trick) and repairs any remaining tension with
//! alternating directional sweeps under an exact relaxation-chain length
//! certificate. On admissible executions the seed labels are already
//! feasible and one changeless verification sweep decides in `O(V + E)` —
//! instead of the `Θ(V)` full-arc rounds the classical all-zero-source
//! pass pays (its shortest walks zigzag through the whole execution),
//! which is what `BENCH_core.json` quantifies. Only when a violation
//! exists does
//! [`find_violation`] fall back to the classical round-based pass with
//! predecessor extraction (`violating_cycle_arcs`) to pull out the
//! violating relevant cycle itself, over the same arc arena in the same
//! canonical order.
//!
//! The exact **maximum relevant-cycle ratio** `max |Z−|/|Z+|` is computed
//! by rational bisection over the monotone predicate "∃ cycle with ratio
//! `≥ x`", followed by exact recovery of the unique bounded-denominator
//! fraction in the final interval.
//!
//! For *online* checking of a growing execution, use
//! [`crate::monitor::IncrementalChecker`], which maintains this module's
//! reduction incrementally instead of re-running it from scratch.

use abc_rational::Ratio;

use crate::cycle::{Cycle, CycleStep, ShadowEdge};
use crate::graph::ExecutionGraph;
use crate::traversal::{Arc, ArcKind, TraversalGraph};
use crate::xi::Xi;

/// Errors reported by the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// `Ξ`'s numerator or denominator does not fit the integer weights used
    /// by the Bellman–Ford reduction (the scaled weights, accumulated along
    /// a longest relaxation path, would overflow `i128`).
    XiTooLarge,
    /// The graph is too large for the exact bisection arithmetic of
    /// [`max_relevant_cycle_ratio`]: the worst-case bisection fractions
    /// (bounded by `4·m³·(m+1)` for `m` effective messages), scaled by the
    /// graph size, would overflow `i128`. Reported up front, before any
    /// probe runs — never a panic mid-bisection.
    GraphTooLarge,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::XiTooLarge => {
                write!(
                    f,
                    "Xi numerator/denominator exceeds the checker's integer range"
                )
            }
            CheckError::GraphTooLarge => {
                write!(f, "graph exceeds the exact-ratio bisection's integer range")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Whether the scaled Bellman–Ford weights for `Ξ = p/q` stay representable
/// in `i128` throughout relaxation. The largest per-arc weight magnitude is
/// `max(p, q)·K + 1` with `K = #arcs + 1`; a distance label is a walk
/// weight, and because rounds relax in place (Gauss–Seidel), a single round
/// can extend a walk by up to `#arcs` arcs — so over the `#nodes + 1`
/// rounds a label is bounded by `(#nodes + 2)·(#arcs + 1)` arc weights
/// (reached only while lapping a negative cycle, but it must not overflow
/// there either: the witness extraction reads those labels). The seeded
/// decision's labels start at most `#nodes` backward-arc weights high and
/// only decrease along chains of at most `#nodes` arcs — comfortably
/// inside the same budget.
fn weights_fit_i128(p: i128, q: i128, num_arcs: usize, num_nodes: usize) -> bool {
    let Ok(k) = i128::try_from(num_arcs) else {
        return false;
    };
    let Ok(n) = i128::try_from(num_nodes) else {
        return false;
    };
    p.max(q)
        .checked_mul(k + 1)
        .and_then(|w| w.checked_add(1))
        .and_then(|w| w.checked_mul(k + 1))
        .and_then(|w| w.checked_mul(n + 2))
        .is_some()
}

/// `Ξ` as `(p, q)` machine parts usable on a graph of the given size.
fn xi_parts(xi: &Xi, num_arcs: usize, num_nodes: usize) -> Result<(i128, i128), CheckError> {
    let (p, q) = xi.as_i128_parts().ok_or(CheckError::XiTooLarge)?;
    if !weights_fit_i128(p, q, num_arcs, num_nodes) {
        return Err(CheckError::XiTooLarge);
    }
    Ok((p, q))
}

/// The scaled integer weight of an arc for `Ξ = p/q` and `K = #arcs + 1`.
fn scaled_weight(kind: ArcKind, p: i128, q: i128, k: i128) -> i128 {
    let w_prime = match kind {
        ArcKind::Forward(_) => p,
        ArcKind::Backward(_) => -q,
        ArcKind::LocalBack(_) => 0,
        ArcKind::Shortcut(_) => unreachable!("batch graphs carry no shortcut arcs"),
    };
    w_prime * k - 1
}

/// Exact negative-cycle *decision* over the scaled weights, seeded with
/// the **earliest-feasible potential** (the same idea that makes the
/// incremental monitor cheap):
///
/// * walk the events in creation (topological) order and give each the
///   smallest label satisfying all its *lower-bound* arcs — the backward
///   arc of its triggering message (`π(v) ≥ π(send) + q·K + 1`) and its
///   local back-arc (`π(v) ≥ π(prev) + 1`). Timestamp semantics: every
///   message charged its minimum delay. On admissible executions this
///   labeling usually already satisfies the forward upper bounds too, and
///   one changeless verification sweep certifies feasibility — `O(V + E)`
///   total, instead of the `Θ(V)` full-arc rounds an all-zero start needs
///   (its shortest walks zigzag through the whole execution);
/// * where forward arcs are still tense, in-place Bellman–Ford sweeps
///   (alternating arena directions, so each pass propagates whole
///   monotone chains) repair the labels. `len[v]` tracks the arc count of
///   the relaxation chain realizing `dist[v]`: any chain reaching
///   `#nodes` arcs certifies a negative cycle — the standard argument
///   (the chain's second visit to some node strictly improved on its
///   first, so the enclosed cycle is negative) is independent of the
///   initial labeling.
///
/// Exact in both directions.
pub(crate) fn negative_cycle_exists(
    g: &ExecutionGraph,
    tg: &TraversalGraph,
    p: i128,
    q: i128,
) -> bool {
    let n = tg.num_live_nodes();
    let arcs = tg.arcs();
    if n == 0 || arcs.is_empty() {
        return false;
    }
    debug_assert_eq!(tg.base(), 0, "the batch decision is whole-graph only");
    let k = i128::try_from(arcs.len()).expect("arc count fits i128") + 1;
    // Earliest-feasible seed labels, in topological (creation) order.
    let mut dist = vec![0i128; n];
    let mut last_event: Vec<Option<usize>> = vec![None; g.num_processes()];
    for ev in g.events() {
        let v = ev.id.0;
        let mut label = 0i128;
        if let Some(prev) = last_event[ev.process.0] {
            label = dist[prev] + 1;
        }
        if let crate::graph::Trigger::Message(m) = ev.trigger {
            let msg = g.message(m);
            if g.is_effective(m) {
                label = label.max(dist[msg.from.0] + q * k + 1);
            }
        }
        dist[v] = label;
        last_event[ev.process.0] = Some(v);
    }
    let weights: Vec<i128> = arcs
        .iter()
        .map(|a| scaled_weight(a.kind, p, q, k))
        .collect();
    let mut len = vec![0u32; n];
    let limit = u32::try_from(n).unwrap_or(u32::MAX);
    // Shortest relaxation chains from the seed are simple unless a
    // negative cycle exists, so `n + 1` double sweeps always suffice to
    // either converge or push some chain past the length certificate.
    for _round in 0..=n {
        let mut changed = false;
        let mut relax = |ai: usize, changed: &mut bool| -> bool {
            let arc = arcs[ai];
            let u = arc.from;
            let cand = dist[u] + weights[ai];
            if cand < dist[arc.to] {
                dist[arc.to] = cand;
                len[arc.to] = len[u] + 1;
                *changed = true;
                return len[arc.to] >= limit;
            }
            false
        };
        for ai in (0..arcs.len()).rev() {
            if relax(ai, &mut changed) {
                return true;
            }
        }
        for ai in 0..arcs.len() {
            if relax(ai, &mut changed) {
                return true;
            }
        }
        if !changed {
            return false;
        }
    }
    // Unreachable in theory (see above); conservatively report a negative
    // cycle only if a final sweep still changes labels.
    let mut changed = false;
    for (ai, arc) in arcs.iter().enumerate() {
        let cand = dist[arc.from] + weights[ai];
        if cand < dist[arc.to] {
            dist[arc.to] = cand;
            changed = true;
        }
    }
    changed
}

/// Classical round-based Bellman–Ford negative-cycle detection over the
/// scaled weights for `Ξ = p/q`, with predecessor extraction. Returns the
/// arc indices of a violating cycle, in traversal order, if one exists.
/// Kept as the *witness extractor* (its output on the canonical arc order
/// is the byte-stable batch witness); the cheap decision path is
/// [`negative_cycle_exists`].
pub(crate) fn violating_cycle_arcs(
    arcs: &[Arc],
    num_nodes: usize,
    p: i128,
    q: i128,
) -> Option<Vec<usize>> {
    if num_nodes == 0 || arcs.is_empty() {
        return None;
    }
    let k = i128::try_from(arcs.len()).expect("arc count fits i128") + 1;
    let mut dist = vec![0i128; num_nodes];
    let mut pred: Vec<Option<usize>> = vec![None; num_nodes];
    let mut changed_node = None;
    for round in 0..=num_nodes {
        let mut changed = None;
        for (ai, arc) in arcs.iter().enumerate() {
            let cand = dist[arc.from] + scaled_weight(arc.kind, p, q, k);
            if cand < dist[arc.to] {
                dist[arc.to] = cand;
                pred[arc.to] = Some(ai);
                changed = Some(arc.to);
            }
        }
        match changed {
            None => return None,
            Some(node) if round == num_nodes => {
                changed_node = Some(node);
            }
            Some(_) => {}
        }
    }
    // A relaxation happened in round `num_nodes`: a negative cycle exists in
    // the predecessor graph. Walk back to land inside it, then collect it.
    let mut node = changed_node.expect("loop ended via final-round relaxation");
    for _ in 0..num_nodes {
        node = arcs[pred[node].expect("relaxed nodes have predecessors")].from;
    }
    let start = node;
    let mut cycle_arcs = Vec::new();
    loop {
        let ai = pred[node].expect("cycle nodes have predecessors");
        cycle_arcs.push(ai);
        node = arcs[ai].from;
        if node == start {
            break;
        }
    }
    cycle_arcs.reverse(); // predecessor walk collects arcs destination-first
    Some(cycle_arcs)
}

pub(crate) fn arcs_to_cycle(arcs: &[Arc], indices: &[usize]) -> Cycle {
    let steps: Vec<CycleStep> = indices
        .iter()
        .map(|&ai| match arcs[ai].kind {
            ArcKind::Forward(m) => CycleStep {
                edge: ShadowEdge::Message(m),
                against: false,
            },
            ArcKind::Backward(m) => CycleStep {
                edge: ShadowEdge::Message(m),
                against: true,
            },
            ArcKind::LocalBack(l) => CycleStep {
                edge: ShadowEdge::Local(l),
                against: true,
            },
            ArcKind::Shortcut(_) => unreachable!("batch graphs carry no shortcut arcs"),
        })
        .collect();
    Cycle::new(steps)
}

/// Searches for a relevant cycle violating the ABC condition for `xi`
/// (i.e. with `|Z−|/|Z+| ≥ Ξ`). Polynomial: `O(V·E)`.
///
/// # Errors
///
/// [`CheckError::XiTooLarge`] if `Ξ`'s parts (times the graph-size scaling)
/// do not fit `i128` — only genuinely unrepresentable parameters.
///
/// # Example
///
/// ```
/// use abc_core::graph::{ExecutionGraph, ProcessId};
/// use abc_core::check::find_violation;
/// use abc_core::Xi;
///
/// // A 2-message chain q -> r -> p is spanned by a single slow message
/// // q -> p arriving later: a relevant cycle with ratio 2/1.
/// let mut b = ExecutionGraph::builder(3);
/// let q = b.init(ProcessId(0));
/// b.init(ProcessId(1));
/// b.init(ProcessId(2));
/// let (_, r) = b.send(q, ProcessId(2));
/// b.send(r, ProcessId(1)); // chain arrives first at p
/// b.send(q, ProcessId(1)); // direct message arrives second: it spans
/// let g = b.finish();
/// assert!(find_violation(&g, &Xi::from_integer(2)).unwrap().is_some());
/// assert!(find_violation(&g, &Xi::from_integer(3)).unwrap().is_none());
/// ```
pub fn find_violation(g: &ExecutionGraph, xi: &Xi) -> Result<Option<Cycle>, CheckError> {
    let tg = TraversalGraph::from_graph(g);
    let (p, q) = xi_parts(xi, tg.num_arcs(), g.num_events())?;
    if !negative_cycle_exists(g, &tg, p, q) {
        return Ok(None);
    }
    let indices = violating_cycle_arcs(tg.arcs(), g.num_events(), p, q)
        .expect("the seeded decision certified a negative cycle");
    let cycle = arcs_to_cycle(tg.arcs(), &indices);
    debug_assert!(cycle.validate(g).is_ok(), "extracted witness must validate");
    let class = cycle.classify();
    assert!(
        class.violates(xi),
        "internal error: extracted cycle {cycle} does not violate Xi = {xi}"
    );
    Ok(Some(cycle))
}

/// Whether the execution graph satisfies the ABC synchrony condition for
/// `xi` (Definition 4).
///
/// # Errors
///
/// [`CheckError::XiTooLarge`] if `Ξ`'s parts (times the graph-size scaling)
/// do not fit `i128`.
pub fn is_admissible(g: &ExecutionGraph, xi: &Xi) -> Result<bool, CheckError> {
    let tg = TraversalGraph::from_graph(g);
    let (p, q) = xi_parts(xi, tg.num_arcs(), g.num_events())?;
    Ok(!negative_cycle_exists(g, &tg, p, q))
}

/// Whether the graph contains any relevant cycle at all.
#[must_use]
pub fn has_relevant_cycle(g: &ExecutionGraph) -> bool {
    let tg = TraversalGraph::from_graph(g);
    // A relevant cycle has B >= F, i.e. ratio >= 1: test the predicate at 1.
    // p == q requires the line-graph variant (see below).
    exists_nonneg_cycle_linegraph(&tg, 1, 1)
}

/// Line-graph Bellman–Ford: detects a cycle with `q·B − p·F ≥ 0` while
/// forbidding immediate arc reversals.
///
/// Needed when `p == q`: the forward+backward arc pair of a single message
/// forms a zero-weight closed walk that is *not* a shadow cycle (it repeats
/// the edge). For `p > q` such pairs weigh `p − q ≥ 1` and the plain
/// node-level Bellman–Ford is exact, which is why [`negative_cycle_exists`]
/// is used there. Forbidding immediate reversals suffices: a reversal-free
/// closed walk of non-positive scaled weight always contains a genuine
/// violating shadow cycle (messages have unique receive events, so the
/// only outgoing backward-message arc at a node reverses the message just
/// received — an all-pairs walk would have to run causally forward forever
/// and could never close).
///
/// Consumes the shared [`TraversalGraph`]: the in-arc buckets come from its
/// prefix-sum [`TraversalGraph::in_csr`] (two flat arrays, no per-node
/// `Vec`), and the reverse pairing relies on its canonical arc order
/// (forward immediately followed by backward per message).
fn exists_nonneg_cycle_linegraph(tg: &TraversalGraph, p: i128, q: i128) -> bool {
    let arcs = tg.arcs();
    if arcs.is_empty() {
        return false;
    }
    debug_assert_eq!(tg.base(), 0, "the line-graph pass is batch-only");
    let a_count = arcs.len();
    let k = i128::try_from(a_count).expect("arc count fits i128") + 1;
    // Reverse pairing: the canonical order pushes Forward then Backward per
    // message.
    let rev = |idx: usize| -> Option<usize> {
        match arcs[idx].kind {
            ArcKind::Forward(_) => Some(idx + 1),
            ArcKind::Backward(_) => Some(idx - 1),
            ArcKind::LocalBack(_) => None,
            ArcKind::Shortcut(_) => unreachable!("batch graphs carry no shortcut arcs"),
        }
    };
    let num_nodes = tg.num_live_nodes();
    let (in_starts, in_arcs) = tg.in_csr();
    let mut dist = vec![0i128; a_count];
    for round in 0..=a_count {
        // Per node: best and second-best incoming dist (by arc).
        let mut best: Vec<Option<(i128, usize)>> = vec![None; num_nodes];
        let mut second: Vec<Option<i128>> = vec![None; num_nodes];
        for v in 0..num_nodes {
            for &ai in &in_arcs[in_starts[v]..in_starts[v + 1]] {
                let d = dist[ai];
                match best[v] {
                    None => best[v] = Some((d, ai)),
                    Some((bd, _)) => {
                        if d < bd {
                            second[v] = Some(bd);
                            best[v] = Some((d, ai));
                        } else if second[v].is_none_or(|s| d < s) {
                            second[v] = Some(d);
                        }
                    }
                }
            }
        }
        let mut changed = false;
        for (bi, b) in arcs.iter().enumerate() {
            let tail = b.from;
            let Some((bd, barg)) = best[tail] else {
                continue;
            };
            let incoming = if rev(bi) == Some(barg) {
                match second[tail] {
                    Some(s) => s,
                    None => continue,
                }
            } else {
                bd
            };
            let cand = incoming + scaled_weight(b.kind, p, q, k);
            if cand < dist[bi] {
                dist[bi] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        let _ = round;
    }
    true
}

/// The largest numerator/denominator the bisection of
/// [`max_relevant_cycle_ratio`] can produce for `m` effective messages:
/// interval endpoints stay in `[1, m + 1]` with power-of-two denominators
/// capped by `2^⌈log₂(2m³)⌉ ≤ 4m³`, so every part is at most `4m³·(m+1)`.
/// `None` if that bound itself overflows `i128`.
pub(crate) fn max_bisection_part(m: i64) -> Option<i128> {
    let m = i128::from(m);
    m.checked_mul(m)
        .and_then(|m2| m2.checked_mul(m))
        .and_then(|m3| m3.checked_mul(4))
        .and_then(|b| b.checked_mul(m + 1))
}

/// The exact maximum `|Z−|/|Z+|` over all relevant cycles of `g`, or
/// `Ok(None)` if `g` has no relevant cycle.
///
/// The value is the *infimum* of the `Ξ` values for which `g` is admissible:
/// `is_admissible(g, xi)` holds iff `xi > max_relevant_cycle_ratio(g)`.
///
/// Complexity: `O(V·E·log(E))` (rational bisection over the Bellman–Ford
/// predicate, then exact recovery of the bounded-denominator fraction).
///
/// # Errors
///
/// [`CheckError::GraphTooLarge`] when the graph is so large (hundreds of
/// thousands of effective messages) that the worst-case bisection
/// fractions, scaled by the graph size, would overflow the exact `i128`
/// arithmetic. The bound is checked **up front** — oversized graphs get a
/// clean error instead of a mid-bisection panic or a silent wrap.
pub fn max_relevant_cycle_ratio(g: &ExecutionGraph) -> Result<Option<Ratio>, CheckError> {
    let tg = TraversalGraph::from_graph(g);
    let num_nodes = g.num_events();
    let m = i64::try_from(g.effective_messages().count()).map_err(|_| CheckError::GraphTooLarge)?;
    if m == 0 {
        return Ok(None);
    }
    // Guard every probe's arithmetic before running any: the bisection only
    // ever tests fractions with parts ≤ max_bisection_part(m).
    let max_part = max_bisection_part(m).ok_or(CheckError::GraphTooLarge)?;
    if !weights_fit_i128(max_part, max_part, tg.num_arcs(), num_nodes) {
        return Err(CheckError::GraphTooLarge);
    }
    let spacing_denom = m.checked_mul(m).ok_or(CheckError::GraphTooLarge)?;
    let exists_ge = |r: &Ratio| -> bool {
        let p = r
            .numer()
            .to_i128()
            .expect("bisection parts fit i128 (guarded up front)");
        let q = r
            .denom()
            .to_i128()
            .expect("bisection parts fit i128 (guarded up front)");
        if p > q {
            negative_cycle_exists(g, &tg, p, q)
        } else {
            // p == q == 1 (ratio-1 probe): needs the reversal-free variant.
            exists_nonneg_cycle_linegraph(&tg, p, q)
        }
    };
    if !exists_ge(&Ratio::one()) {
        return Ok(None);
    }
    // Invariant: exists_ge(lo) is true, exists_ge(hi) is false.
    let mut lo = Ratio::one();
    let mut hi = Ratio::from_integer(m + 1);
    // Bisect until the interval is shorter than the minimal spacing 1/m²
    // between distinct fractions with numerator and denominator ≤ m.
    let spacing = Ratio::new(1, spacing_denom) / Ratio::from_integer(2);
    while &hi - &lo > spacing {
        let mid = lo.midpoint(&hi);
        if exists_ge(&mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Recover the unique B/F with F ≤ m in [lo, hi): for each denominator F,
    // the largest B with B/F < hi, kept if B/F ≥ lo.
    let mut best: Option<Ratio> = None;
    for f in 1..=m {
        let fr = Ratio::from_integer(f);
        let prod = &hi * &fr;
        let b = if prod.is_integer() {
            prod.numer().clone() - abc_rational::BigInt::one()
        } else {
            prod.floor()
        };
        let b = b.to_i64().ok_or(CheckError::GraphTooLarge)?;
        if b < 1 {
            continue;
        }
        let cand = Ratio::new(b, f);
        if cand >= lo && best.as_ref().is_none_or(|x| cand > *x) {
            best = Some(cand);
        }
    }
    let best = best.expect("the maximum ratio lies in the final interval");
    debug_assert!(exists_ge(&best), "recovered ratio must be attained");
    Ok(Some(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_relevant_cycles, EnumerationLimits};
    use crate::graph::ProcessId;

    /// A fast `hops`-message chain q -> relays -> p, spanned by one slow
    /// direct message q -> p that arrives later: relevant cycle with ratio
    /// `hops / 1`.
    fn two_chain(hops: usize) -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(hops + 1);
        let q = b.init(ProcessId(0));
        for i in 1..=hops {
            b.init(ProcessId(i));
        }
        // Fast chain: q -> 2 -> 3 -> ... -> hops -> 1, arriving first at p.
        let mut cur = q;
        for i in 2..=hops {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1));
        // Slow direct message arrives second: it spans the fast chain.
        b.send(q, ProcessId(1));
        b.finish()
    }

    #[test]
    fn two_chain_ratio_is_hops() {
        for hops in 2..=6 {
            let g = two_chain(hops);
            let ratio = max_relevant_cycle_ratio(&g).unwrap().expect("cycle exists");
            assert_eq!(ratio, Ratio::from_integer(hops as i64), "hops = {hops}");
            // Admissible strictly above the ratio, violating at or below it.
            let at = Xi::new(ratio.clone()).unwrap();
            assert!(!is_admissible(&g, &at).unwrap());
            let above = Xi::new(&ratio + &Ratio::new(1, 7)).unwrap();
            assert!(is_admissible(&g, &above).unwrap());
        }
    }

    #[test]
    fn violation_witness_is_a_violating_relevant_cycle() {
        let g = two_chain(4);
        let xi = Xi::from_integer(2);
        let w = find_violation(&g, &xi).unwrap().expect("ratio 4 >= 2");
        assert!(w.validate(&g).is_ok());
        let c = w.classify();
        assert!(c.relevant);
        assert!(c.ratio().unwrap() >= Ratio::from_integer(2));
    }

    #[test]
    fn acyclic_graphs_are_admissible_for_every_xi() {
        let mut b = ExecutionGraph::builder(3);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        b.send(a, ProcessId(1));
        b.send(a, ProcessId(2));
        let g = b.finish();
        assert!(!has_relevant_cycle(&g));
        assert_eq!(max_relevant_cycle_ratio(&g), Ok(None));
        assert!(is_admissible(&g, &Xi::from_fraction(101, 100)).unwrap());
    }

    #[test]
    fn faulty_messages_do_not_violate() {
        // Same shape as two_chain(4) — ratio 4, violating Xi = 3/2 — but one
        // relay of the fast chain is Byzantine, so the chain's messages are
        // dropped from the condition and no relevant cycle remains.
        let mut b = ExecutionGraph::builder(5);
        let q = b.init(ProcessId(0));
        for i in 1..=4 {
            b.init(ProcessId(i));
        }
        let (_, r2) = b.send(q, ProcessId(2));
        let (_, r3) = b.send(r2, ProcessId(3));
        let (_, r4) = b.send(r3, ProcessId(4));
        b.send(r4, ProcessId(1));
        b.send(q, ProcessId(1)); // slow spanning message
        let g_violating = b.clone().finish();
        assert!(!is_admissible(&g_violating, &Xi::from_fraction(3, 2)).unwrap());
        b.mark_faulty(ProcessId(4));
        let g = b.finish();
        assert!(is_admissible(&g, &Xi::from_fraction(3, 2)).unwrap());
    }

    #[test]
    fn ratio_exactly_xi_is_a_violation() {
        // Definition 4 requires |Z−|/|Z+| < Ξ strictly.
        let g = two_chain(3);
        assert!(!is_admissible(&g, &Xi::from_integer(3)).unwrap());
        assert!(is_admissible(&g, &Xi::from_fraction(31, 10)).unwrap());
    }

    #[test]
    fn fractional_ratios_are_exact() {
        // Two chains of 5 and 4 messages: ratio 5/4 (the Fig. 1 shape).
        let mut b = ExecutionGraph::builder(9);
        let q = b.init(ProcessId(0));
        for i in 1..9 {
            b.init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=5 {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1)); // 5-message chain
        let mut cur = q;
        for i in 6..=8 {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1)); // 4-message chain, arrives later
        let g = b.finish();
        assert_eq!(max_relevant_cycle_ratio(&g), Ok(Some(Ratio::new(5, 4))));
        assert!(!is_admissible(&g, &Xi::from_fraction(5, 4)).unwrap());
        assert!(is_admissible(&g, &Xi::from_fraction(13, 10)).unwrap());
    }

    #[test]
    fn checker_agrees_with_enumeration_on_small_graphs() {
        // Cross-validation: the max ratio from brute-force enumeration
        // equals the checker's on several hand-built graphs.
        for hops in 2..=5 {
            let g = two_chain(hops);
            let brute = enumerate_relevant_cycles(&g, EnumerationLimits::default())
                .cycles
                .iter()
                .filter_map(|c| c.classify().ratio())
                .max();
            assert_eq!(max_relevant_cycle_ratio(&g), Ok(brute), "hops = {hops}");
        }
    }

    #[test]
    fn xi_too_large_is_reported() {
        let g = two_chain(2);
        let huge = Xi::new(Ratio::from_bigints(
            "170141183460469231731687303715884105727".parse().unwrap(),
            abc_rational::BigInt::from(1),
        ))
        .unwrap();
        assert_eq!(find_violation(&g, &huge), Err(CheckError::XiTooLarge));
        assert_eq!(is_admissible(&g, &huge), Err(CheckError::XiTooLarge));
    }

    #[test]
    fn xi_beyond_i64_is_now_representable() {
        // Parts wider than i64 but within the i128 weight budget used to
        // trip XiTooLarge; the widened reduction handles them exactly.
        let g = two_chain(2);
        let wide = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from(1i128 << 80),
            abc_rational::BigInt::from(3),
        ))
        .unwrap();
        assert!(wide.as_i64_parts().is_none());
        assert!(is_admissible(&g, &wide).unwrap(), "ratio 2 is below 2^80/3");
        assert_eq!(find_violation(&g, &wide).unwrap(), None);
        // And a violating case: Xi barely above 1 with a >i64 denominator.
        let tight = Xi::new(Ratio::from_bigints(
            abc_rational::BigInt::from((1i128 << 80) + 1),
            abc_rational::BigInt::from(1i128 << 80),
        ))
        .unwrap();
        assert!(!is_admissible(&g, &tight).unwrap(), "ratio 2 exceeds ~1");
        assert!(find_violation(&g, &tight).unwrap().is_some());
    }

    #[test]
    fn near_limit_xi_on_violating_graph_is_rejected_not_overflowed() {
        // Regression: with a violating cycle present, in-place relaxation
        // laps the cycle once per round, so labels accumulate up to
        // #rounds · #arcs weights — a Xi this size must be rejected by the
        // guard, not silently overflow i128 during detection.
        let g = two_chain(10);
        let p = abc_rational::BigInt::from(1i128 << 117);
        let q = &p - &abc_rational::BigInt::one();
        let xi = Xi::new(Ratio::from_bigints(p, q)).unwrap();
        assert_eq!(find_violation(&g, &xi), Err(CheckError::XiTooLarge));
        assert_eq!(is_admissible(&g, &xi), Err(CheckError::XiTooLarge));
    }

    #[test]
    fn oversized_graphs_get_a_clean_ratio_error_not_a_panic() {
        // Regression for the bisection overflow: with enough effective
        // messages, the worst-case bisection fractions (≤ 4m³(m+1)) scaled
        // by the graph size overflow i128. The old code would have run the
        // probes unguarded (panicking in debug, wrapping in release); now
        // the up-front guard reports GraphTooLarge before any probe runs —
        // this test finishes in milliseconds precisely because no O(V·E)
        // pass ever starts.
        let msgs = 200_000usize;
        let mut b = ExecutionGraph::builder(1);
        let mut cur = b.init(ProcessId(0));
        for _ in 0..msgs {
            let (_, r) = b.send(cur, ProcessId(0));
            cur = r;
        }
        let g = b.finish();
        assert_eq!(max_relevant_cycle_ratio(&g), Err(CheckError::GraphTooLarge));
        // Well within the guard, everything still works.
        assert!(max_relevant_cycle_ratio(&two_chain(3)).unwrap().is_some());
    }

    #[test]
    fn seeded_decision_agrees_with_round_based_extraction() {
        // The cheap decision and the classical extractor must agree on
        // every (graph, Xi) pair: a violation is found iff extraction
        // succeeds.
        for hops in 2..=6 {
            let g = two_chain(hops);
            for xi_num in 2..=8 {
                let xi = Xi::from_integer(xi_num);
                let tg = TraversalGraph::from_graph(&g);
                let (p, q) = xi_parts(&xi, tg.num_arcs(), g.num_events()).unwrap();
                assert_eq!(
                    negative_cycle_exists(&g, &tg, p, q),
                    violating_cycle_arcs(tg.arcs(), g.num_events(), p, q).is_some(),
                    "hops = {hops}, xi = {xi}"
                );
            }
        }
    }
}
