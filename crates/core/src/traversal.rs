//! The shared traversal-graph core: one compact, arena-backed CSR
//! representation of the graph `T` that every Definition-4 decision in this
//! workspace walks.
//!
//! # Why one representation
//!
//! The reduction of [`crate::check`] decides the ABC condition by
//! negative-cycle detection over the *traversal graph* `T` of an execution
//! graph `G`:
//!
//! * for every effective message `m = (u → v)`: a **forward** arc `u → v`
//!   and a **backward** arc `v → u`;
//! * for every local edge `(u → v)`: a **backward** arc `v → u` only.
//!
//! Historically this repo materialized `T` three different ways — a
//! throwaway arc list per batch check, per-head `Vec<Vec<usize>>` in-arc
//! buckets inside the line-graph pass, and per-tail `Vec<Vec<usize>>`
//! out-arc pushes inside [`crate::monitor::IncrementalChecker`]. This
//! module replaces all of them with a single [`TraversalGraph`]:
//!
//! * **arena arcs**: one flat `Vec<Arc>` in insertion order (batch builds
//!   list all message arcs first, then all local arcs — the exact legacy
//!   order, so witness extraction stays byte-stable);
//! * **intrusive out-CSR**: `out_head`/`out_tail` per node plus `out_next`
//!   per arc form per-tail adjacency as linked lists threaded through the
//!   arena — `push_arc` is O(1), there is no per-node `Vec`, and iteration
//!   order equals insertion order;
//! * **prefix-sum in-CSR**: [`TraversalGraph::in_csr`] builds the in-arc
//!   adjacency as two flat arrays by counting sort, for the line-graph
//!   simple-cycle pass (needed only for the ratio-1 probe of
//!   [`crate::check::max_relevant_cycle_ratio`]).
//!
//! # How check and monitor share it
//!
//! The batch checker ([`crate::check::find_violation`] /
//! [`crate::check::is_admissible`]) builds a `TraversalGraph` **once** per
//! call with [`TraversalGraph::from_graph`] and hands the same structure to
//! the feasibility decision, the witness extraction, the line-graph pass,
//! and the bisection probes of `max_relevant_cycle_ratio`. The online
//! monitor grows the *same* structure incrementally ([`push_node`] /
//! [`push_arc`]) as events are appended, so batch and streaming decisions
//! literally walk the same arcs.
//!
//! # Bounded-memory compaction
//!
//! The monitor's settled-prefix pruning compacts events out of the front of
//! the graph: [`TraversalGraph::compact_below`] drops every arc with an
//! endpoint below the new base and drains the per-node columns, keeping
//! live arc order stable. Node ids stay **global** (they are event ids);
//! only the node-indexed columns are windowed by `base`. See
//! [`crate::monitor`] for the cut condition that makes this sound.
//!
//! [`push_node`]: TraversalGraph::push_node
//! [`push_arc`]: TraversalGraph::push_arc

use crate::graph::{ExecutionGraph, LocalEdge, MessageId};

/// Role of a traversal-graph arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcKind {
    /// The forward arc of an effective message (send → receive).
    Forward(MessageId),
    /// The backward arc of an effective message (receive → send).
    Backward(MessageId),
    /// The backward arc of a local edge (later event → earlier event).
    LocalBack(LocalEdge),
    /// A condensed boundary path of a pruned prefix (monitor-only): stands
    /// for a shortest path through compacted events, identified by an index
    /// into the owning [`crate::monitor::IncrementalChecker`]'s shortcut
    /// table (which holds its weight and its step-by-step expansion).
    /// Batch builds ([`TraversalGraph::from_graph`]) never create these.
    Shortcut(usize),
}

/// One arc of the traversal graph `T`. Endpoints are **global** event ids.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    /// Tail event id.
    pub from: usize,
    /// Head event id.
    pub to: usize,
    /// What the arc encodes.
    pub kind: ArcKind,
}

/// Sentinel for "no next arc" in the intrusive adjacency lists.
const NONE: usize = usize::MAX;

/// The arena-backed CSR traversal graph (see the module docs).
///
/// Nodes are event ids `base..base + num_live_nodes()`; arcs live in one
/// flat arena with intrusive per-tail linked lists. Both the batch checker
/// and the incremental monitor drive their Bellman–Ford passes over this
/// structure.
#[derive(Clone, Debug, Default)]
pub struct TraversalGraph {
    arcs: Vec<Arc>,
    /// First outgoing arc per live node (indexed by `id - base`).
    out_head: Vec<usize>,
    /// Last outgoing arc per live node (push appends in insertion order).
    out_tail: Vec<usize>,
    /// Next outgoing arc of the same tail, per arc.
    out_next: Vec<usize>,
    /// Event id of the first live node (all columns are windowed by this).
    base: usize,
}

impl TraversalGraph {
    /// An empty graph for incremental growth (the monitor path).
    #[must_use]
    pub fn new() -> TraversalGraph {
        TraversalGraph::default()
    }

    /// Builds the whole traversal graph of `g` in one pass (the batch
    /// path): forward + backward arcs for every effective message in id
    /// order, then the local back-arc of every local edge — the canonical
    /// arc order every witness extraction in this crate relies on.
    #[must_use]
    pub fn from_graph(g: &ExecutionGraph) -> TraversalGraph {
        let n = g.num_events();
        let mut tg = TraversalGraph {
            arcs: Vec::with_capacity(2 * g.num_messages() + n),
            out_head: vec![NONE; n],
            out_tail: vec![NONE; n],
            out_next: Vec::with_capacity(2 * g.num_messages() + n),
            base: 0,
        };
        for m in g.effective_messages() {
            tg.push_arc(m.from.0, m.to.0, ArcKind::Forward(m.id));
            tg.push_arc(m.to.0, m.from.0, ArcKind::Backward(m.id));
        }
        for l in g.local_edges() {
            tg.push_arc(l.to.0, l.from.0, ArcKind::LocalBack(l));
        }
        tg
    }

    /// Event id of the first live node.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of live (non-compacted) nodes.
    #[must_use]
    pub fn num_live_nodes(&self) -> usize {
        self.out_head.len()
    }

    /// Total node count ever pushed (`base + live`): the exclusive upper
    /// bound of valid event ids.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.base + self.out_head.len()
    }

    /// The live arcs, in stable insertion order.
    #[must_use]
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Mutable access to the arc arena, for the monitor's shortcut-id
    /// remapping after a compaction (endpoints must not be changed — the
    /// intrusive adjacency threads through them).
    pub(crate) fn arcs_mut(&mut self) -> &mut [Arc] {
        &mut self.arcs
    }

    /// Number of live arcs.
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Appends a node (the next event id) and returns its id.
    pub fn push_node(&mut self) -> usize {
        self.out_head.push(NONE);
        self.out_tail.push(NONE);
        self.base + self.out_head.len() - 1
    }

    /// Appends an arc between live nodes; returns its arena index.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is compacted or not yet pushed.
    pub fn push_arc(&mut self, from: usize, to: usize, kind: ArcKind) -> usize {
        assert!(
            from >= self.base && to >= self.base,
            "arc endpoint below the compaction base"
        );
        assert!(
            from < self.total_nodes() && to < self.total_nodes(),
            "arc endpoint not yet pushed"
        );
        let idx = self.arcs.len();
        self.arcs.push(Arc { from, to, kind });
        self.out_next.push(NONE);
        let slot = from - self.base;
        if self.out_head[slot] == NONE {
            self.out_head[slot] = idx;
        } else {
            self.out_next[self.out_tail[slot]] = idx;
        }
        self.out_tail[slot] = idx;
        idx
    }

    /// First outgoing arc index of global node `v` (cursor form of
    /// [`TraversalGraph::out_arcs`], for callers that must not hold a
    /// borrow across the loop body).
    ///
    /// # Panics
    ///
    /// Panics if `v` is compacted or not yet pushed.
    #[must_use]
    pub fn first_out(&self, v: usize) -> Option<usize> {
        assert!(
            v >= self.base && v < self.total_nodes(),
            "node out of range"
        );
        let head = self.out_head[v - self.base];
        (head != NONE).then_some(head)
    }

    /// The next outgoing arc of the same tail after arena index `arc_idx`.
    #[must_use]
    pub fn next_out(&self, arc_idx: usize) -> Option<usize> {
        let next = self.out_next[arc_idx];
        (next != NONE).then_some(next)
    }

    /// Iterates the outgoing arc indices of global node `v`, in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is compacted or not yet pushed.
    pub fn out_arcs(&self, v: usize) -> OutArcs<'_> {
        assert!(
            v >= self.base && v < self.total_nodes(),
            "node out of range"
        );
        OutArcs {
            tg: self,
            next: self.out_head[v - self.base],
        }
    }

    /// Drops every node below `new_base` and every arc with an endpoint
    /// below it, preserving the relative order of surviving arcs. Returns
    /// `(nodes_dropped, arcs_dropped)`.
    ///
    /// # Panics
    ///
    /// Panics if `new_base` is below the current base or above
    /// [`TraversalGraph::total_nodes`].
    pub fn compact_below(&mut self, new_base: usize) -> (usize, usize) {
        assert!(
            new_base >= self.base && new_base <= self.total_nodes(),
            "compaction base out of range"
        );
        let nodes_dropped = new_base - self.base;
        if nodes_dropped == 0 {
            return (0, 0);
        }
        let before = self.arcs.len();
        self.arcs.retain(|a| a.from >= new_base && a.to >= new_base);
        let arcs_dropped = before - self.arcs.len();
        self.base = new_base;
        self.out_head.drain(..nodes_dropped);
        self.out_tail.drain(..nodes_dropped);
        // Rebuild the intrusive lists over the surviving arena.
        self.out_head.fill(NONE);
        self.out_tail.fill(NONE);
        self.out_next.clear();
        self.out_next.resize(self.arcs.len(), NONE);
        for idx in 0..self.arcs.len() {
            let slot = self.arcs[idx].from - self.base;
            if self.out_head[slot] == NONE {
                self.out_head[slot] = idx;
            } else {
                self.out_next[self.out_tail[slot]] = idx;
            }
            self.out_tail[slot] = idx;
        }
        (nodes_dropped, arcs_dropped)
    }

    /// Builds the in-arc adjacency as a prefix-sum CSR over the live nodes:
    /// `(starts, arc_indices)` with the in-arcs of local node `v` (global id
    /// `base + v`) at `arc_indices[starts[v]..starts[v + 1]]`, each bucket
    /// in insertion order. Two flat arrays — no per-node `Vec` — feeding the
    /// line-graph pass of [`crate::check`].
    #[must_use]
    pub fn in_csr(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.num_live_nodes();
        let mut starts = vec![0usize; n + 1];
        for a in &self.arcs {
            starts[a.to - self.base + 1] += 1;
        }
        for v in 0..n {
            starts[v + 1] += starts[v];
        }
        let mut cursor = starts.clone();
        let mut arc_indices = vec![0usize; self.arcs.len()];
        for (idx, a) in self.arcs.iter().enumerate() {
            let slot = a.to - self.base;
            arc_indices[cursor[slot]] = idx;
            cursor[slot] += 1;
        }
        (starts, arc_indices)
    }
}

/// Iterator over the outgoing arc indices of one node.
pub struct OutArcs<'a> {
    tg: &'a TraversalGraph,
    next: usize,
}

impl Iterator for OutArcs<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next == NONE {
            return None;
        }
        let idx = self.next;
        self.next = self.tg.out_next[idx];
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProcessId;

    fn sample() -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(3);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        let (_, r) = b.send(a, ProcessId(2));
        b.send(r, ProcessId(1));
        b.send(a, ProcessId(1));
        b.finish()
    }

    #[test]
    fn from_graph_matches_the_legacy_arc_order() {
        let g = sample();
        let tg = TraversalGraph::from_graph(&g);
        assert_eq!(tg.num_live_nodes(), g.num_events());
        // fwd+bwd per message, then local backs.
        assert_eq!(tg.num_arcs(), 2 * g.num_messages() + 3);
        for (i, m) in g.effective_messages().enumerate() {
            assert!(matches!(tg.arcs()[2 * i].kind, ArcKind::Forward(id) if id == m.id));
            assert!(matches!(tg.arcs()[2 * i + 1].kind, ArcKind::Backward(id) if id == m.id));
        }
        assert!(tg.arcs()[2 * g.num_messages()..]
            .iter()
            .all(|a| matches!(a.kind, ArcKind::LocalBack(_))));
    }

    #[test]
    fn out_arcs_iterate_in_insertion_order() {
        let mut tg = TraversalGraph::new();
        let a = tg.push_node();
        let b = tg.push_node();
        let i0 = tg.push_arc(a, b, ArcKind::Forward(MessageId(0)));
        let i1 = tg.push_arc(b, a, ArcKind::Backward(MessageId(0)));
        let i2 = tg.push_arc(a, a, ArcKind::Forward(MessageId(1)));
        assert_eq!(tg.out_arcs(a).collect::<Vec<_>>(), vec![i0, i2]);
        assert_eq!(tg.out_arcs(b).collect::<Vec<_>>(), vec![i1]);
    }

    #[test]
    fn in_csr_buckets_by_head() {
        let g = sample();
        let tg = TraversalGraph::from_graph(&g);
        let (starts, idx) = tg.in_csr();
        assert_eq!(starts.len(), tg.num_live_nodes() + 1);
        assert_eq!(*starts.last().unwrap(), tg.num_arcs());
        for v in 0..tg.num_live_nodes() {
            for &ai in &idx[starts[v]..starts[v + 1]] {
                assert_eq!(tg.arcs()[ai].to, v);
            }
        }
    }

    #[test]
    fn compact_below_drops_prefix_arcs_and_keeps_order() {
        let mut tg = TraversalGraph::new();
        for _ in 0..5 {
            tg.push_node();
        }
        tg.push_arc(0, 1, ArcKind::Forward(MessageId(0)));
        tg.push_arc(1, 0, ArcKind::Backward(MessageId(0)));
        let keep0 = tg.push_arc(2, 3, ArcKind::Forward(MessageId(1)));
        tg.push_arc(
            3,
            1,
            ArcKind::LocalBack(LocalEdge {
                from: crate::graph::EventId(1),
                to: crate::graph::EventId(3),
            }),
        );
        let keep1 = tg.push_arc(4, 2, ArcKind::Backward(MessageId(1)));
        let _ = (keep0, keep1);
        let (nodes, arcs) = tg.compact_below(2);
        assert_eq!((nodes, arcs), (2, 3));
        assert_eq!(tg.base(), 2);
        assert_eq!(tg.num_live_nodes(), 3);
        assert_eq!(tg.num_arcs(), 2);
        assert_eq!((tg.arcs()[0].from, tg.arcs()[0].to), (2, 3));
        assert_eq!((tg.arcs()[1].from, tg.arcs()[1].to), (4, 2));
        assert_eq!(tg.out_arcs(2).collect::<Vec<_>>(), vec![0]);
        assert_eq!(tg.out_arcs(4).collect::<Vec<_>>(), vec![1]);
        // Growth continues seamlessly after compaction.
        let v = tg.push_node();
        assert_eq!(v, 5);
        tg.push_arc(
            v,
            3,
            ArcKind::LocalBack(LocalEdge {
                from: crate::graph::EventId(3),
                to: crate::graph::EventId(5),
            }),
        );
        assert_eq!(tg.out_arcs(v).count(), 1);
    }

    #[test]
    #[should_panic(expected = "below the compaction base")]
    fn pushing_arcs_into_the_compacted_region_panics() {
        let mut tg = TraversalGraph::new();
        for _ in 0..3 {
            tg.push_node();
        }
        tg.compact_below(2);
        tg.push_arc(2, 1, ArcKind::Forward(MessageId(0)));
    }
}
