//! Delay assignment — the executable Theorem 7.
//!
//! Theorem 7 of the paper: *for every finite ABC execution graph `G` there
//! is an end-to-end delay assignment `τ` such that the timed graph `G^τ` is
//! causally equivalent to `G` and all messages satisfy the Θ-Model's
//! synchrony condition* (delays in `(1, Ξ)` with `Ξ < Θ`). The paper proves
//! existence with a Farkas-lemma variant over the cycle space; this module
//! *constructs* the assignment, two ways:
//!
//! 1. [`assign_delays`] — **polynomial**. Take one variable per event (its
//!    occurrence time). Every constraint of a normalized assignment is a
//!    difference constraint:
//!    `1 < t(recv) − t(send) < Ξ` for effective messages,
//!    `0 < t(recv) − t(send)` for exempt ones, and
//!    `0 < t(next) − t(prev)` along process lines.
//!    Bellman–Ford (via [`abc_lp::diffcon`]) solves it in `O(V·E)`; its
//!    negative-cycle witness maps *exactly* onto a relevant cycle violating
//!    the ABC condition, re-proving the theorem constructively: the system
//!    is solvable **iff** `G` is ABC-admissible for `Ξ`.
//!
//! 2. [`cycle_lp_system`] / [`assign_delays_via_cycle_lp`] — the
//!    **paper-literal** Fig. 6 route: enumerate the simple cycles of the
//!    shadow graph, emit the `2k + l + m` rows of `Ax < b` over the message
//!    delays (bounds rows, relevant-cycle rows with condition (6),
//!    sign-flipped non-relevant rows), and decide with the exact simplex of
//!    `abc-lp`. Exponential — used on small graphs to exhibit the exact
//!    objects of the proof (Farkas certificates included) and to
//!    cross-check route 1.

use abc_lp::diffcon::{self, DiffConstraint};
use abc_lp::{simplex, Feasibility, LinearSystem};
use abc_rational::Ratio;

use crate::cycle::Cycle;
use crate::enumerate::{enumerate_cycles, EnumerationLimits};
use crate::graph::{ExecutionGraph, MessageId};
use crate::timed::TimedGraph;
use crate::xi::Xi;

/// Why a delay assignment does not exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// The graph violates the ABC condition for the given `Ξ`; the witness
    /// is a relevant cycle with `|Z−|/|Z+| ≥ Ξ` recovered from the
    /// negative-cycle certificate.
    NotAdmissible(Cycle),
    /// The cycle enumeration exceeded its budget (cycle-LP route only).
    EnumerationBudget,
    /// Internal LP failure (indicates a bug).
    Lp(String),
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::NotAdmissible(c) => {
                write!(f, "graph is not ABC-admissible; violating cycle {c}")
            }
            AssignError::EnumerationBudget => write!(f, "cycle enumeration budget exhausted"),
            AssignError::Lp(e) => write!(f, "internal LP failure: {e}"),
        }
    }
}

impl std::error::Error for AssignError {}

/// Constructs a normalized assignment for `g` and `xi` in polynomial time,
/// or returns the violating relevant cycle.
///
/// On success the returned [`TimedGraph`] satisfies
/// [`TimedGraph::is_normalized`]: effective message delays strictly inside
/// `(1, Ξ)`, exempt message delays positive, process lines strictly
/// increasing — i.e. `G^τ` is causally equivalent to `G` (Theorem 7).
///
/// # Errors
///
/// [`AssignError::NotAdmissible`] with a verified witness cycle when the
/// ABC condition fails for `xi`.
///
/// # Example
///
/// ```
/// use abc_core::graph::{ExecutionGraph, ProcessId};
/// use abc_core::assign::assign_delays;
/// use abc_core::Xi;
///
/// let mut b = ExecutionGraph::builder(2);
/// let q = b.init(ProcessId(0));
/// b.init(ProcessId(1));
/// let (_, r) = b.send(q, ProcessId(1));
/// b.send(r, ProcessId(0));
/// let g = b.finish();
/// let timed = assign_delays(&g, &Xi::from_fraction(3, 2)).unwrap();
/// assert!(timed.is_normalized(&g, &Xi::from_fraction(3, 2)));
/// ```
pub fn assign_delays(g: &ExecutionGraph, xi: &Xi) -> Result<TimedGraph, AssignError> {
    #[derive(Clone, Copy)]
    enum Origin {
        MsgUpper(MessageId),
        MsgLower(MessageId),
        Local(usize, usize), // event ids (from, to)
    }
    let mut constraints = Vec::new();
    let mut origins = Vec::new();
    for m in g.messages() {
        if g.is_effective(m.id) {
            // t(to) - t(from) < Xi
            constraints.push(DiffConstraint::lt(m.to.0, m.from.0, xi.as_ratio().clone()));
            origins.push(Origin::MsgUpper(m.id));
            // t(from) - t(to) < -1  (delay > 1)
            constraints.push(DiffConstraint::lt(m.from.0, m.to.0, -Ratio::one()));
            origins.push(Origin::MsgLower(m.id));
        }
        // Exempt messages carry no constraint at all: the paper drops them
        // (and their receive steps) from the space-time diagram, so a
        // Theorem 7 assignment owes them nothing. Their receive events stay
        // on the process line, ordered by the local-edge constraints below.
    }
    for l in g.local_edges() {
        // t(from) - t(to) < 0  (strictly increasing process line)
        constraints.push(DiffConstraint::lt(l.from.0, l.to.0, Ratio::zero()));
        origins.push(Origin::Local(l.from.0, l.to.0));
    }
    match diffcon::solve(g.num_events(), &constraints) {
        Ok(times) => {
            let timed = TimedGraph::new(times);
            debug_assert!(timed.is_normalized(g, xi));
            Ok(timed)
        }
        Err(neg_cycle) => {
            // Map the telescoping constraint cycle back onto a shadow-graph
            // cycle: MsgUpper ≙ forward traversal, MsgLower ≙ backward,
            // Local ≙ backward local step. The cycle's bound sum is
            // Ξ·F − B ≤ 0 (with strictness), i.e. a relevant cycle with
            // |Z−|/|Z+| ≥ Ξ.
            use crate::cycle::{CycleStep, ShadowEdge};
            use crate::graph::{EventId, LocalEdge};
            // Each constraint (u, v) maps to a step walking v -> u, so the
            // constraint chain (c_i.v == c_{i+1}.u) corresponds to steps in
            // reverse order.
            let steps: Vec<CycleStep> = neg_cycle
                .constraint_indices
                .iter()
                .rev()
                .map(|&ci| match origins[ci] {
                    Origin::MsgUpper(m) => CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: false,
                    },
                    Origin::MsgLower(m) => CycleStep {
                        edge: ShadowEdge::Message(m),
                        against: true,
                    },
                    Origin::Local(from, to) => CycleStep {
                        edge: ShadowEdge::Local(LocalEdge {
                            from: EventId(from),
                            to: EventId(to),
                        }),
                        against: true,
                    },
                })
                .collect();
            let cycle = Cycle::new(steps);
            debug_assert!(cycle.validate(g).is_ok(), "witness must validate: {cycle}");
            debug_assert!(cycle.classify().violates(xi), "witness must violate Xi");
            Err(AssignError::NotAdmissible(cycle))
        }
    }
}

/// The paper's Fig. 6 system `Ax < b` over the message-delay variables.
///
/// Variables are indexed by [`MessageId`] over the *effective* messages;
/// [`CycleLpSystem::variables`] gives the mapping. Rows, in Fig. 6 order:
/// lower bounds `−τ(e) < −1`, upper bounds `τ(e) < Ξ`, one row per relevant
/// cycle (condition (6)), and one sign-flipped row per non-relevant cycle.
#[derive(Clone, Debug)]
pub struct CycleLpSystem {
    /// The linear system (strict rows only, as in the paper).
    pub system: LinearSystem,
    /// Column order: `variables[j]` is the message whose delay is `x_j`.
    pub variables: Vec<MessageId>,
    /// The enumerated cycles, aligned with the cycle rows of `system`
    /// (starting at row `2·variables.len()`), each with its relevance flag.
    pub cycles: Vec<(Cycle, bool)>,
}

/// Builds the Fig. 6 system by exhaustive cycle enumeration.
///
/// # Errors
///
/// [`AssignError::EnumerationBudget`] if the enumeration is incomplete
/// under `limits` (the system would be unsound).
pub fn cycle_lp_system(
    g: &ExecutionGraph,
    xi: &Xi,
    limits: EnumerationLimits,
) -> Result<CycleLpSystem, AssignError> {
    let e = enumerate_cycles(g, limits);
    if !e.complete {
        return Err(AssignError::EnumerationBudget);
    }
    let variables: Vec<MessageId> = g.effective_messages().map(|m| m.id).collect();
    let col_of = |m: MessageId| -> usize {
        variables
            .binary_search(&m)
            .expect("cycles use only effective messages")
    };
    let k = variables.len();
    let mut sys = LinearSystem::new(k);
    // Lower bounds: -tau(e) < -1.
    for j in 0..k {
        let mut row = vec![Ratio::zero(); k];
        row[j] = -Ratio::one();
        sys.push_lt(row, -Ratio::one());
    }
    // Upper bounds: tau(e) < Xi.
    for j in 0..k {
        let mut row = vec![Ratio::zero(); k];
        row[j] = Ratio::one();
        sys.push_lt(row, xi.as_ratio().clone());
    }
    // Cycle rows: sum_{Z-} tau - sum_{Z+} tau < 0 for relevant cycles,
    // sign-flipped for non-relevant ones.
    let mut cycles = Vec::with_capacity(e.cycles.len());
    for cycle in e.cycles {
        let class = cycle.classify();
        let mut row = vec![Ratio::zero(); k];
        for (m, against_walk) in cycle.messages() {
            let backward = against_walk != class.orientation_reversed;
            let sign = if backward {
                Ratio::one()
            } else {
                -Ratio::one()
            };
            let flipped = if class.relevant { sign } else { -sign };
            row[col_of(m)] += flipped;
        }
        sys.push_lt(row, Ratio::zero());
        cycles.push((cycle, class.relevant));
    }
    Ok(CycleLpSystem {
        system: sys,
        variables,
        cycles,
    })
}

/// Outcome of the paper-literal route.
#[derive(Clone, Debug)]
pub enum CycleLpOutcome {
    /// A normalized delay vector `τ` (aligned with
    /// [`CycleLpSystem::variables`]) plus the realized [`TimedGraph`].
    Assignment {
        /// Per-message delays.
        delays: Vec<Ratio>,
        /// Event times realizing those delays.
        timed: TimedGraph,
    },
    /// The Farkas/Carver certificate showing the Fig. 6 system infeasible
    /// (the graph is not ABC-admissible for `Ξ`).
    Infeasible(abc_lp::FarkasCertificate),
}

/// Solves the Fig. 6 system with the exact simplex and realizes event times
/// from the message delays (Theorem 12 made constructive).
///
/// # Errors
///
/// [`AssignError::EnumerationBudget`] when cycle enumeration is incomplete,
/// [`AssignError::Lp`] on internal solver failures.
pub fn assign_delays_via_cycle_lp(
    g: &ExecutionGraph,
    xi: &Xi,
    limits: EnumerationLimits,
) -> Result<CycleLpOutcome, AssignError> {
    let lp = cycle_lp_system(g, xi, limits)?;
    match simplex::solve(&lp.system).map_err(|e| AssignError::Lp(e.to_string()))? {
        Feasibility::Infeasible(cert) => {
            debug_assert!(cert.verify(&lp.system));
            Ok(CycleLpOutcome::Infeasible(cert))
        }
        Feasibility::Feasible(sol) => {
            // Realize event times from the message delays: fix each
            // message's delay exactly and let local edges breathe. This is
            // again a difference-constraint system, feasible because the
            // delays satisfy every cycle inequality.
            let mut constraints = Vec::new();
            for (j, m) in lp.variables.iter().enumerate() {
                let msg = g.message(*m);
                let d = sol.values[j].clone();
                constraints.push(DiffConstraint::le(msg.to.0, msg.from.0, d.clone()));
                constraints.push(DiffConstraint::le(msg.from.0, msg.to.0, -d));
            }
            for l in g.local_edges() {
                constraints.push(DiffConstraint::lt(l.from.0, l.to.0, Ratio::zero()));
            }
            let times = diffcon::solve(g.num_events(), &constraints).map_err(|_| {
                AssignError::Lp(
                    "cycle-LP delays admit no event times; Fig. 6 system was incomplete".into(),
                )
            })?;
            let timed = TimedGraph::new(times);
            debug_assert!(timed.is_normalized(g, xi));
            Ok(CycleLpOutcome::Assignment {
                delays: sol.values,
                timed,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::graph::ProcessId;

    /// Fast chain of `hops` messages spanned by one slow direct message:
    /// max relevant ratio = hops.
    fn two_chain(hops: usize) -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(hops + 1);
        let q = b.init(ProcessId(0));
        for i in 1..=hops {
            b.init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=hops {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1));
        b.send(q, ProcessId(1));
        b.finish()
    }

    #[test]
    fn admissible_graph_gets_normalized_assignment() {
        let g = two_chain(3); // ratio 3
        let xi = Xi::from_fraction(7, 2); // 3 < 7/2: admissible
        assert!(check::is_admissible(&g, &xi).unwrap());
        let timed = assign_delays(&g, &xi).unwrap();
        assert!(timed.is_normalized(&g, &xi));
        // The assignment makes the graph Θ-admissible for every Θ ≥ Ξ
        // (delays are within (1, Ξ)): Theorem 7's conclusion.
        assert!(timed.is_theta_admissible(&g, &Ratio::new(7, 2)));
    }

    #[test]
    fn violating_graph_yields_witness_cycle() {
        let g = two_chain(4); // ratio 4
        let xi = Xi::from_integer(3);
        match assign_delays(&g, &xi) {
            Err(AssignError::NotAdmissible(cycle)) => {
                assert!(cycle.validate(&g).is_ok());
                assert!(cycle.classify().violates(&xi));
            }
            other => panic!("expected NotAdmissible, got {other:?}"),
        }
    }

    #[test]
    fn assignment_agrees_with_checker_exactly_at_threshold() {
        let g = two_chain(3);
        // Admissible iff Xi > 3: check the boundary from both sides.
        assert!(assign_delays(&g, &Xi::from_integer(3)).is_err());
        assert!(assign_delays(&g, &Xi::from_fraction(301, 100)).is_ok());
    }

    #[test]
    fn cycle_lp_route_matches_polynomial_route() {
        for hops in 2..=4 {
            let g = two_chain(hops);
            for xi in [
                Xi::from_fraction(3, 2),
                Xi::from_integer(3),
                Xi::from_integer(5),
            ] {
                let poly = assign_delays(&g, &xi).is_ok();
                let lp = assign_delays_via_cycle_lp(&g, &xi, EnumerationLimits::default()).unwrap();
                match lp {
                    CycleLpOutcome::Assignment { delays, timed } => {
                        assert!(poly, "routes disagree: hops={hops} xi={xi}");
                        assert!(timed.is_normalized(&g, &xi));
                        for d in &delays {
                            assert!(d > &Ratio::one() && d < xi.as_ratio());
                        }
                    }
                    CycleLpOutcome::Infeasible(cert) => {
                        assert!(!poly, "routes disagree: hops={hops} xi={xi}");
                        let sys = cycle_lp_system(&g, &xi, EnumerationLimits::default())
                            .unwrap()
                            .system;
                        assert!(cert.verify(&sys));
                    }
                }
            }
        }
    }

    #[test]
    fn fig6_system_shape() {
        let g = two_chain(2);
        let xi = Xi::from_integer(3);
        let lp = cycle_lp_system(&g, &xi, EnumerationLimits::default()).unwrap();
        let k = lp.variables.len();
        assert_eq!(k, 3); // 2-hop chain + direct message
                          // 2k bound rows + one row per enumerated cycle.
        assert_eq!(lp.system.num_rows(), 2 * k + lp.cycles.len());
        assert!(lp.cycles.iter().any(|(_, relevant)| *relevant));
    }

    #[test]
    fn exempt_messages_are_unconstrained() {
        // Ratio-4 configuration, but the spanning slow message is exempt:
        // an assignment exists and may give it any delay whatsoever.
        let mut b = ExecutionGraph::builder(5);
        let q = b.init(ProcessId(0));
        for i in 1..=4 {
            b.init(ProcessId(i));
        }
        let mut cur = q;
        for i in 2..=4 {
            let (_, r) = b.send(cur, ProcessId(i));
            cur = r;
        }
        b.send(cur, ProcessId(1));
        let (slow, _) = b.send(q, ProcessId(1));
        b.set_exempt(slow);
        let g = b.finish();
        let xi = Xi::from_integer(2);
        let timed = assign_delays(&g, &xi).unwrap();
        assert!(timed.is_normalized(&g, &xi));
        // The exempt message's delay exceeds Xi (it spans a 4-message chain
        // of delay > 4 > Xi) — allowed precisely because it is exempt.
        assert!(timed.message_delay(&g, slow) > Ratio::from_integer(4));
    }

    #[test]
    fn empty_graph_assignment() {
        let mut b = ExecutionGraph::builder(2);
        b.init(ProcessId(0));
        b.init(ProcessId(1));
        let g = b.finish();
        let timed = assign_delays(&g, &Xi::from_integer(2)).unwrap();
        assert!(timed.validate(&g).is_ok());
    }
}
