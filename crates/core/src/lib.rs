//! # The Asynchronous Bounded-Cycle (ABC) model
//!
//! A from-scratch Rust implementation of the system model introduced by
//! Peter Robinson and Ulrich Schmid in *The Asynchronous Bounded-Cycle
//! model* (PODC/SSS 2008; Theoretical Computer Science 412 (2011)
//! 5580–5601).
//!
//! The ABC model adds a single, completely *time-free* synchrony condition
//! to the asynchronous message-driven model: for a rational parameter
//! `Ξ > 1`, every **relevant cycle** `Z` in the space–time diagram of an
//! execution must satisfy
//!
//! ```text
//!     |Z−| / |Z+| < Ξ                                   (Definition 4)
//! ```
//!
//! where `Z−`/`Z+` are the backward/forward messages of the cycle. No
//! message delay bounds, no computing-step bounds, no system-wide
//! constraints — yet the condition suffices to synchronize clocks, simulate
//! lock-step rounds, and hence solve consensus under Byzantine faults
//! (`abc-clocksync`, `abc-consensus`), and every Θ-Model algorithm runs
//! unchanged in the ABC model (Theorems 7–9, [`assign`]).
//!
//! ## Module map
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Execution graphs (Def. 1), faulty-message dropping | [`graph`] |
//! | Chains, cycles, relevant cycles (Defs. 2–3) | [`cycle`] |
//! | ABC synchrony condition (Def. 4), polynomial checking | [`check`] |
//! | The shared CSR traversal graph behind every Def.-4 decision | [`traversal`] |
//! | Online (incremental) monitoring of Def. 4, bounded-memory pruning | [`monitor`] |
//! | Exhaustive cycle enumeration (ground truth) | [`enumerate`] |
//! | Consistent cuts, causal cones, cut intervals (Defs. 5–6) | [`cut`] |
//! | The non-standard cycle space, `⊕`, Thm. 11 / Cor. 1 | [`cyclespace`] |
//! | Normalized assignments, Fig. 6 system, Thm. 7/12 | [`assign`] |
//! | Timed graphs `G^τ`, Θ-Model condition (3) | [`timed`] |
//! | The parameter `Ξ` | [`xi`] |
//!
//! ## Quickstart
//!
//! ```
//! use abc_core::graph::{ExecutionGraph, ProcessId};
//! use abc_core::{check, assign, Xi};
//!
//! // A 2-message chain spanned by a slower direct message: ratio 2.
//! let mut b = ExecutionGraph::builder(3);
//! let q = b.init(ProcessId(0));
//! b.init(ProcessId(1));
//! b.init(ProcessId(2));
//! let (_, relay) = b.send(q, ProcessId(2));
//! b.send(relay, ProcessId(1));
//! b.send(q, ProcessId(1));
//! let g = b.finish();
//!
//! assert_eq!(
//!     check::max_relevant_cycle_ratio(&g),
//!     Ok(Some(abc_rational::Ratio::from_integer(2)))
//! );
//! let xi = Xi::from_fraction(5, 2);
//! assert!(check::is_admissible(&g, &xi).unwrap());
//!
//! // Theorem 7: a normalized delay assignment exists...
//! let timed = assign::assign_delays(&g, &xi).unwrap();
//! assert!(timed.is_normalized(&g, &xi));
//! // ...making the execution Θ-admissible for any Θ ≥ Ξ.
//! assert!(timed.is_theta_admissible(&g, xi.as_ratio()));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod check;
pub mod cut;
pub mod cycle;
pub mod cyclespace;
pub mod enumerate;
pub mod graph;
pub mod monitor;
pub mod timed;
pub mod traversal;
pub mod xi;

pub use graph::{EventId, ExecutionGraph, MessageId, ProcessId};
pub use monitor::IncrementalChecker;
pub use xi::Xi;
