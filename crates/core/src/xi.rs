//! The ABC model parameter `Ξ` (Definition 4).
//!
//! `Ξ` is a rational number strictly greater than one; an execution is
//! admissible in the ABC model iff every relevant cycle `Z` of its execution
//! graph satisfies `|Z−|/|Z+| < Ξ`. The paper explicitly disallows `Ξ = 1`
//! (footnote 16): it would make the forward/backward classification, and
//! hence relevance, degenerate.

use std::fmt;
use std::str::FromStr;

use abc_rational::Ratio;

/// The validated model parameter `Ξ > 1`.
///
/// ```
/// use abc_core::Xi;
/// use abc_rational::Ratio;
///
/// let xi = Xi::new(Ratio::new(3, 2)).unwrap();
/// assert_eq!(xi.as_ratio(), &Ratio::new(3, 2));
/// assert!(Xi::new(Ratio::from_integer(1)).is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xi(Ratio);

/// Error for invalid `Ξ` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidXi {
    value: Ratio,
}

impl fmt::Display for InvalidXi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ABC parameter Xi = {}: must be > 1", self.value)
    }
}

impl std::error::Error for InvalidXi {}

impl Xi {
    /// Validates `value > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidXi`] if `value ≤ 1`.
    pub fn new(value: Ratio) -> Result<Xi, InvalidXi> {
        if value > Ratio::one() {
            Ok(Xi(value))
        } else {
            Err(InvalidXi { value })
        }
    }

    /// Convenience constructor from an integer fraction.
    ///
    /// # Panics
    ///
    /// Panics if `num/den ≤ 1` or `den == 0`.
    #[must_use]
    pub fn from_fraction(num: i64, den: i64) -> Xi {
        Xi::new(Ratio::new(num, den)).expect("Xi must be > 1")
    }

    /// Convenience constructor from an integer.
    ///
    /// # Panics
    ///
    /// Panics if `v ≤ 1`.
    #[must_use]
    pub fn from_integer(v: i64) -> Xi {
        Xi::new(Ratio::from_integer(v)).expect("Xi must be > 1")
    }

    /// The underlying rational.
    #[must_use]
    pub fn as_ratio(&self) -> &Ratio {
        &self.0
    }

    /// `(p, q)` with `Ξ = p/q` in lowest terms, as machine integers.
    ///
    /// Returns `None` if the parts overflow `i64` (astronomically large `Ξ`
    /// values are rejected by the polynomial checker, which needs integer
    /// weights).
    #[must_use]
    pub fn as_i64_parts(&self) -> Option<(i64, i64)> {
        Some((self.0.numer().to_i64()?, self.0.denom().to_i64()?))
    }

    /// `(p, q)` with `Ξ = p/q` in lowest terms, as wide machine integers.
    ///
    /// Returns `None` only when a part overflows `i128`; the polynomial
    /// checker accepts everything this returns unless the graph-size
    /// scaling overflows too (see [`crate::check::CheckError::XiTooLarge`]).
    #[must_use]
    pub fn as_i128_parts(&self) -> Option<(i128, i128)> {
        Some((self.0.numer().to_i128()?, self.0.denom().to_i128()?))
    }

    /// `⌈Ξ⌉` as `u64` (used for chain-length timeouts like the Fig. 3
    /// detector and the `2Ξ` phase count of Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `Ξ` exceeds `u64::MAX` (unreasonable model parameters).
    #[must_use]
    pub fn ceil_u64(&self) -> u64 {
        u64::try_from(self.0.ceil().to_i128().expect("Xi fits i128"))
            .expect("Xi is positive and fits u64")
    }

    /// The smallest integer strictly greater than or equal to `2Ξ` — the
    /// tick distance used by Theorem 2's precision bound and Algorithm 2's
    /// round length. Exact: `⌈2Ξ⌉`.
    #[must_use]
    pub fn two_xi_ceil(&self) -> u64 {
        let two_xi = Ratio::from_integer(2) * &self.0;
        u64::try_from(two_xi.ceil().to_i128().expect("2Xi fits i128"))
            .expect("2Xi is positive and fits u64")
    }
}

impl fmt::Display for Xi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Xi {
    type Err = String;

    fn from_str(s: &str) -> Result<Xi, String> {
        let r: Ratio = s.parse().map_err(|e| format!("{e}"))?;
        Xi::new(r).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_xi_at_most_one() {
        assert!(Xi::new(Ratio::one()).is_err());
        assert!(Xi::new(Ratio::new(1, 2)).is_err());
        assert!(Xi::new(Ratio::from_integer(0)).is_err());
        assert!(Xi::new(Ratio::from_integer(-2)).is_err());
        assert!(Xi::new(Ratio::new(1_000_001, 1_000_000)).is_ok());
    }

    #[test]
    fn parts_are_lowest_terms() {
        let xi = Xi::from_fraction(6, 4);
        assert_eq!(xi.as_i64_parts(), Some((3, 2)));
    }

    #[test]
    fn ceil_helpers() {
        assert_eq!(Xi::from_fraction(3, 2).ceil_u64(), 2);
        assert_eq!(Xi::from_integer(2).ceil_u64(), 2);
        assert_eq!(Xi::from_fraction(3, 2).two_xi_ceil(), 3);
        assert_eq!(Xi::from_integer(2).two_xi_ceil(), 4);
        assert_eq!(Xi::from_fraction(5, 2).two_xi_ceil(), 5);
        assert_eq!(Xi::from_fraction(7, 3).two_xi_ceil(), 5); // 14/3 -> 5
    }

    #[test]
    fn parse_round_trip() {
        let xi: Xi = "3/2".parse().unwrap();
        assert_eq!(xi, Xi::from_fraction(3, 2));
        assert!("1".parse::<Xi>().is_err());
        assert!("x".parse::<Xi>().is_err());
    }
}
