//! Timed execution graphs `G^τ`.
//!
//! A *timed* execution graph attaches an occurrence time to every event.
//! The paper uses them in two roles:
//!
//! * as the image of a Theorem 7 **normalized assignment** — effective
//!   message delays in the open interval `(1, Ξ)` and strictly positive
//!   local-edge durations (condition (4)/(5) of Section 4.1);
//! * to connect the time-free ABC world to the Θ-Model, whose synchrony
//!   condition (3) bounds the ratio `τ⁺(t)/τ⁻(t)` of the longest and
//!   shortest end-to-end delays of messages simultaneously in transit.
//!
//! [`TimedGraph::max_theta_ratio`] computes the exact supremum of that ratio,
//! which is how the `MΘ ⊆ MABC` inclusion (Theorem 6) and the normalized
//! assignment's Θ-admissibility are checked in the experiments.

use abc_rational::Ratio;

use crate::graph::{EventId, ExecutionGraph, MessageId};
use crate::xi::Xi;

/// Event occurrence times for an execution graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedGraph {
    times: Vec<Ratio>,
}

/// Validation failures for a [`TimedGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimedGraphError {
    /// The number of times differs from the number of events.
    LengthMismatch {
        /// Provided time entries.
        got: usize,
        /// Events in the graph.
        expected: usize,
    },
    /// A local edge is not strictly increasing in time.
    NonMonotonicProcess(EventId, EventId),
    /// A message has negative delay (received before sent).
    NegativeDelay(MessageId),
}

impl std::fmt::Display for TimedGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimedGraphError::LengthMismatch { got, expected } => {
                write!(f, "{got} times provided for {expected} events")
            }
            TimedGraphError::NonMonotonicProcess(a, b) => {
                write!(
                    f,
                    "local edge {a} -> {b} is not strictly increasing in time"
                )
            }
            TimedGraphError::NegativeDelay(m) => write!(f, "message {m} has negative delay"),
        }
    }
}

impl std::error::Error for TimedGraphError {}

impl TimedGraph {
    /// Wraps raw event times (validate with [`TimedGraph::validate`]).
    #[must_use]
    pub fn new(times: Vec<Ratio>) -> TimedGraph {
        TimedGraph { times }
    }

    /// Builds from integer times (convenient for simulator traces).
    #[must_use]
    pub fn from_integer_times(times: &[i64]) -> TimedGraph {
        TimedGraph {
            times: times.iter().map(|t| Ratio::from_integer(*t)).collect(),
        }
    }

    /// The occurrence time of an event.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn time(&self, e: EventId) -> &Ratio {
        &self.times[e.0]
    }

    /// All times, indexed by event id.
    #[must_use]
    pub fn times(&self) -> &[Ratio] {
        &self.times
    }

    /// The end-to-end delay of a message.
    #[must_use]
    pub fn message_delay(&self, g: &ExecutionGraph, m: MessageId) -> Ratio {
        let msg = g.message(m);
        self.time(msg.to) - self.time(msg.from)
    }

    /// Validates causal sanity: one time per event, strictly increasing
    /// along every process line, no negative delay on *effective* messages.
    ///
    /// Exempt messages (dropped from the space–time diagram per Section 2)
    /// are not delay-checked: Theorem 7 assignments place no constraint on
    /// them, matching the paper's removal of the message and its receive
    /// step from the graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`TimedGraphError`] found.
    pub fn validate(&self, g: &ExecutionGraph) -> Result<(), TimedGraphError> {
        if self.times.len() != g.num_events() {
            return Err(TimedGraphError::LengthMismatch {
                got: self.times.len(),
                expected: g.num_events(),
            });
        }
        for l in g.local_edges() {
            if self.time(l.from) >= self.time(l.to) {
                return Err(TimedGraphError::NonMonotonicProcess(l.from, l.to));
            }
        }
        for m in g.effective_messages() {
            if self.time(m.to) < self.time(m.from) {
                return Err(TimedGraphError::NegativeDelay(m.id));
            }
        }
        Ok(())
    }

    /// Whether the times realize a *normalized assignment* (Section 4.1):
    /// every effective message delay lies strictly in `(1, Ξ)` and every
    /// local edge has strictly positive duration.
    #[must_use]
    pub fn is_normalized(&self, g: &ExecutionGraph, xi: &Xi) -> bool {
        if self.validate(g).is_err() {
            return false;
        }
        g.effective_messages().all(|m| {
            let d = self.time(m.to) - self.time(m.from);
            d > Ratio::one() && &d < xi.as_ratio()
        })
    }

    /// The supremum over real time `t` of `τ⁺(t)/τ⁻(t)` — the Θ-Model's
    /// synchrony quantity (condition (3)) — over the *effective* messages.
    ///
    /// Returns `None` when no two effective messages are ever simultaneously
    /// in transit (the ratio is vacuous) **or** when a zero-delay message
    /// overlaps another (the ratio is unbounded; the ABC model allows this,
    /// cf. Fig. 1's `m3`, which is exactly why `MABC ⊄ MΘ`).
    #[must_use]
    pub fn max_theta_ratio(&self, g: &ExecutionGraph) -> Option<Option<Ratio>> {
        let transits: Vec<(Ratio, Ratio, Ratio)> = g
            .effective_messages()
            .map(|m| {
                let s = self.time(m.from).clone();
                let r = self.time(m.to).clone();
                let d = &r - &s;
                (s, r, d)
            })
            .collect();
        let mut best: Option<Option<Ratio>> = None;
        for i in 0..transits.len() {
            for j in (i + 1)..transits.len() {
                let (si, ri, di) = &transits[i];
                let (sj, rj, dj) = &transits[j];
                // Overlap of [s, r] intervals (closed: a message is in
                // transit from its send up to its receive instant).
                if si > rj || sj > ri {
                    continue;
                }
                let (hi, lo) = if di >= dj { (di, dj) } else { (dj, di) };
                let ratio = if lo.is_zero() { None } else { Some(hi / lo) };
                best = match (best, ratio) {
                    (_, None) | (Some(None), _) => Some(None),
                    (None, Some(r)) => Some(Some(r)),
                    (Some(Some(b)), Some(r)) => Some(Some(b.max(r))),
                };
            }
        }
        best
    }

    /// Whether the timed graph satisfies the (static) Θ-Model synchrony
    /// condition `τ⁺(t)/τ⁻(t) ≤ Θ` at all times.
    #[must_use]
    pub fn is_theta_admissible(&self, g: &ExecutionGraph, theta: &Ratio) -> bool {
        match self.max_theta_ratio(g) {
            None => true,        // never two messages in transit
            Some(None) => false, // unbounded (zero-delay overlap)
            Some(Some(r)) => &r <= theta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProcessId;

    /// q sends two messages to p; the first takes 2 time units, the second
    /// (sent later) takes 6; they overlap in transit.
    fn overlapping() -> (ExecutionGraph, TimedGraph) {
        let mut b = ExecutionGraph::builder(2);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, p1) = b.send(q0, ProcessId(1));
        let (_, p2) = b.send(q0, ProcessId(1));
        let g = b.finish();
        // times: q0 = 0, p_init = 0 ... events: q0, p_init, p1, p2.
        let t = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(0),
            Ratio::from_integer(2), // delay 2
            Ratio::from_integer(6), // delay 6
        ]);
        t.validate(&g).unwrap();
        let _ = (p1, p2);
        (g, t)
    }

    #[test]
    fn delays_and_theta_ratio() {
        let (g, t) = overlapping();
        assert_eq!(
            t.message_delay(&g, crate::graph::MessageId(0)),
            Ratio::from_integer(2)
        );
        assert_eq!(
            t.message_delay(&g, crate::graph::MessageId(1)),
            Ratio::from_integer(6)
        );
        assert_eq!(t.max_theta_ratio(&g), Some(Some(Ratio::from_integer(3))));
        assert!(t.is_theta_admissible(&g, &Ratio::from_integer(3)));
        assert!(!t.is_theta_admissible(&g, &Ratio::new(5, 2)));
    }

    #[test]
    fn zero_delay_overlap_is_unbounded() {
        let mut b = ExecutionGraph::builder(2);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.send(q0, ProcessId(1));
        b.send(q0, ProcessId(1));
        let g = b.finish();
        let t = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(0),
            Ratio::from_integer(0), // zero delay
            Ratio::from_integer(5),
        ]);
        // Receive at time 0 equals a local-edge timing violation at p?
        // p's events: init (t=0), p1 (t=0): non-monotonic -> validate fails.
        assert!(matches!(
            t.validate(&g),
            Err(TimedGraphError::NonMonotonicProcess(_, _))
        ));
        // Shift p's init earlier so the order is strict, keep zero delay.
        let t = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(-1),
            Ratio::from_integer(0),
            Ratio::from_integer(5),
        ]);
        t.validate(&g).unwrap();
        assert_eq!(t.max_theta_ratio(&g), Some(None));
        assert!(!t.is_theta_admissible(&g, &Ratio::from_integer(1_000_000)));
    }

    #[test]
    fn non_overlapping_messages_have_no_ratio() {
        let mut b = ExecutionGraph::builder(2);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, p1) = b.send(q0, ProcessId(1));
        let (_, _p2) = b.send(p1, ProcessId(0)); // reply: strictly after
        let g = b.finish();
        let t = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(0),
            Ratio::from_integer(5),
            Ratio::from_integer(9),
        ]);
        t.validate(&g).unwrap();
        // The two transits [0,5] and [5,9] touch at t = 5 (closed
        // intervals): ratio 5/4.
        assert_eq!(t.max_theta_ratio(&g), Some(Some(Ratio::new(5, 4))));
    }

    #[test]
    fn normalized_assignment_check() {
        let (g, _) = overlapping();
        let xi = Xi::from_integer(3);
        let good = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(0),
            Ratio::new(3, 2), // delay 3/2 in (1, 3)
            Ratio::new(5, 2), // delay 5/2 in (1, 3)
        ]);
        assert!(good.is_normalized(&g, &xi));
        let bad = TimedGraph::new(vec![
            Ratio::from_integer(0),
            Ratio::from_integer(0),
            Ratio::from_integer(1), // delay exactly 1: not > 1
            Ratio::from_integer(2),
        ]);
        assert!(!bad.is_normalized(&g, &xi));
    }

    #[test]
    fn validate_reports_mismatch_and_negative_delay() {
        let (g, _) = overlapping();
        assert!(matches!(
            TimedGraph::new(vec![Ratio::zero()]).validate(&g),
            Err(TimedGraphError::LengthMismatch {
                got: 1,
                expected: 4
            })
        ));
        let neg = TimedGraph::new(vec![
            Ratio::from_integer(10),
            Ratio::from_integer(0),
            Ratio::from_integer(2),
            Ratio::from_integer(6),
        ]);
        assert!(matches!(
            neg.validate(&g),
            Err(TimedGraphError::NegativeDelay(_))
        ));
    }
}
