//! Execution graphs (Definition 1 of the paper).
//!
//! An execution graph `G_α` is the digraph corresponding to the space–time
//! diagram of an admissible execution `α` of a message-driven algorithm:
//! nodes are the *receive events* (each computing step is triggered by
//! exactly one message; a process's very first step is triggered by an
//! external wake-up), and edges reflect the happens-before relation without
//! its transitive closure — *non-local* edges (messages) and *local* edges
//! between consecutive events of the same process.
//!
//! # Faulty processes
//!
//! Following Section 2 of the paper, messages sent by Byzantine processes
//! are *exempt* from the ABC synchrony condition: the space–time diagram is
//! checked with those messages dropped. This module realizes the dropping as
//! an **edge restriction**: [`ExecutionGraph::is_effective`] is false for
//! messages sent by faulty processes (and for messages explicitly exempted
//! via [`ExecutionGraphBuilder::set_exempt`], the hook the paper mentions
//! for excluding "certain messages, say, of some specific type" — used by
//! the WTL-style restricted variants). Receive events of dropped messages
//! remain as nodes on their process line; since they contribute only local
//! edges, they cannot create additional cycles, so admissibility in the
//! sense of Definition 4 is unaffected.

use std::fmt;

/// Identifier of a process, dense in `0..num_processes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// Identifier of an event (node of the execution graph), dense in
/// `0..num_events`, in creation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub usize);

/// Identifier of a message (non-local edge), dense in `0..num_messages`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// What triggered an event's computing step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// The external wake-up message that starts a process (its first event).
    Init,
    /// Reception of a message.
    Message(MessageId),
}

/// A node of the execution graph: one receive event and its zero-time
/// computing step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// This event's id.
    pub id: EventId,
    /// The process at which the event occurs.
    pub process: ProcessId,
    /// Position of the event on its process line (0 = the init event).
    pub index_at_process: usize,
    /// What triggered the event.
    pub trigger: Trigger,
}

/// A non-local edge of the execution graph: a message from the computing
/// step at `from` to the receive event `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// This message's id.
    pub id: MessageId,
    /// Send event (the computing step that emitted the message).
    pub from: EventId,
    /// Receive event.
    pub to: EventId,
    /// Sender process (the process of `from`).
    pub sender: ProcessId,
    /// Receiver process (the process of `to`).
    pub receiver: ProcessId,
    /// Whether the message is exempt from the ABC synchrony condition
    /// (explicitly, or because its sender is faulty).
    pub exempt: bool,
}

/// A local edge between consecutive events `from → to` of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LocalEdge {
    /// Earlier event.
    pub from: EventId,
    /// The immediately following event at the same process.
    pub to: EventId,
}

/// An immutable execution graph (Definition 1).
///
/// Build one with [`ExecutionGraph::builder`]:
///
/// ```
/// use abc_core::graph::{ExecutionGraph, ProcessId};
///
/// let mut b = ExecutionGraph::builder(2);
/// let p0 = b.init(ProcessId(0));
/// let p1 = b.init(ProcessId(1));
/// let (_m, recv) = b.send(p0, ProcessId(1)); // p0's init step sends to p1
/// let (_m2, _back) = b.send(recv, ProcessId(0)); // p1 replies
/// let g = b.finish();
/// assert_eq!(g.num_events(), 4);
/// assert_eq!(g.num_messages(), 2);
/// assert!(g.happens_before(p0, _back));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionGraph {
    events: Vec<Event>,
    messages: Vec<Message>,
    /// Events of each process in local order.
    process_events: Vec<Vec<EventId>>,
    faulty: Vec<bool>,
}

impl ExecutionGraph {
    /// Starts building an execution graph over `num_processes` processes.
    #[must_use]
    pub fn builder(num_processes: usize) -> ExecutionGraphBuilder {
        ExecutionGraphBuilder {
            graph: ExecutionGraph {
                events: Vec::new(),
                messages: Vec::new(),
                process_events: vec![Vec::new(); num_processes],
                faulty: vec![false; num_processes],
            },
        }
    }

    /// Number of processes (including those without events).
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.process_events.len()
    }

    /// Number of events (nodes).
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of messages (non-local edges), including exempt ones.
    #[must_use]
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.0]
    }

    /// The message with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.0]
    }

    /// All events in creation order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All messages in creation order.
    #[must_use]
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The events of `p` in local (happens-before) order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn events_of(&self, p: ProcessId) -> &[EventId] {
        &self.process_events[p.0]
    }

    /// Whether process `p` is marked Byzantine faulty.
    #[must_use]
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty[p.0]
    }

    /// Iterator over the correct (non-faulty) processes.
    pub fn correct_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.num_processes())
            .map(ProcessId)
            .filter(|p| !self.is_faulty(*p))
    }

    /// Whether a message participates in the ABC synchrony condition:
    /// not explicitly exempt and not sent by a faulty process.
    #[must_use]
    pub fn is_effective(&self, m: MessageId) -> bool {
        let msg = &self.messages[m.0];
        !msg.exempt && !self.faulty[msg.sender.0]
    }

    /// Iterator over the effective (condition-relevant) messages.
    pub fn effective_messages(&self) -> impl Iterator<Item = &Message> + '_ {
        self.messages.iter().filter(|m| self.is_effective(m.id))
    }

    /// The local edges (consecutive event pairs of each process).
    pub fn local_edges(&self) -> impl Iterator<Item = LocalEdge> + '_ {
        self.process_events.iter().flat_map(|evs| {
            evs.windows(2).map(|w| LocalEdge {
                from: w[0],
                to: w[1],
            })
        })
    }

    /// The local predecessor of an event on its process line, if any.
    #[must_use]
    pub fn local_pred(&self, e: EventId) -> Option<EventId> {
        let ev = self.event(e);
        (ev.index_at_process > 0)
            .then(|| self.process_events[ev.process.0][ev.index_at_process - 1])
    }

    /// The local successor of an event on its process line, if any.
    #[must_use]
    pub fn local_succ(&self, e: EventId) -> Option<EventId> {
        let ev = self.event(e);
        self.process_events[ev.process.0]
            .get(ev.index_at_process + 1)
            .copied()
    }

    /// Direct causal predecessors of `e`: its local predecessor and the send
    /// event of its triggering message (if any).
    pub fn direct_preds(&self, e: EventId) -> impl Iterator<Item = EventId> + '_ {
        let local = self.local_pred(e);
        let trigger = match self.event(e).trigger {
            Trigger::Init => None,
            Trigger::Message(m) => Some(self.message(m).from),
        };
        local.into_iter().chain(trigger)
    }

    /// Tests `a ∗→ b` (reflexive-transitive happens-before).
    ///
    /// Runs a reverse BFS from `b`; use [`crate::cut::causal_past`] when many
    /// queries against the same target are needed.
    #[must_use]
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.num_events()];
        let mut stack = vec![b];
        seen[b.0] = true;
        while let Some(cur) = stack.pop() {
            for pred in self.direct_preds(cur) {
                if pred == a {
                    return true;
                }
                if !seen[pred.0] {
                    seen[pred.0] = true;
                    stack.push(pred);
                }
            }
        }
        false
    }

    /// Events in topological (creation) order. The builder only ever appends
    /// events whose causes already exist, so creation order is topological.
    pub fn topological_order(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.num_events()).map(EventId)
    }

    /// Total number of shadow-graph edges (messages + local edges).
    #[must_use]
    pub fn num_shadow_edges(&self) -> usize {
        let locals: usize = self
            .process_events
            .iter()
            .map(|evs| evs.len().saturating_sub(1))
            .sum();
        self.num_messages() + locals
    }
}

/// Builder for [`ExecutionGraph`].
///
/// The builder enforces the message-driven discipline of the paper's system
/// model: each process's first event is its wake-up ([`init`]), every other
/// event is the receive event of exactly one message ([`send`]), and receive
/// order at a process equals the order in which `send` calls target it.
///
/// [`init`]: ExecutionGraphBuilder::init
/// [`send`]: ExecutionGraphBuilder::send
#[derive(Clone, Debug)]
pub struct ExecutionGraphBuilder {
    graph: ExecutionGraph,
}

impl ExecutionGraphBuilder {
    /// Adds the wake-up (initial) event of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` already has events.
    pub fn init(&mut self, p: ProcessId) -> EventId {
        assert!(
            self.graph.process_events[p.0].is_empty(),
            "{p} already initialized"
        );
        self.push_event(p, Trigger::Init)
    }

    /// Sends a message from the computing step at `from` to process `to`,
    /// appending the receive event at `to`.
    ///
    /// Returns the message id and the receive event id.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range or `to` has no init event yet (the
    /// paper assumes a process's very first step occurs before any message
    /// from another process is received).
    pub fn send(&mut self, from: EventId, to: ProcessId) -> (MessageId, EventId) {
        assert!(from.0 < self.graph.num_events(), "unknown send event");
        assert!(
            !self.graph.process_events[to.0].is_empty(),
            "{to} must be initialized before receiving"
        );
        let sender = self.graph.event(from).process;
        let mid = MessageId(self.graph.messages.len());
        let recv = self.push_event(to, Trigger::Message(mid));
        self.graph.messages.push(Message {
            id: mid,
            from,
            to: recv,
            sender,
            receiver: to,
            exempt: false,
        });
        (mid, recv)
    }

    /// Marks process `p` Byzantine faulty; all its messages become exempt
    /// from the synchrony condition.
    pub fn mark_faulty(&mut self, p: ProcessId) {
        self.graph.faulty[p.0] = true;
    }

    /// Exempts a single message from the synchrony condition (the paper's
    /// hook for restricted execution graphs, cf. Sections 2 and 6).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn set_exempt(&mut self, m: MessageId) {
        self.graph.messages[m.0].exempt = true;
    }

    /// Number of events added so far.
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.graph.num_events()
    }

    /// Read access to the graph under construction.
    #[must_use]
    pub fn graph(&self) -> &ExecutionGraph {
        &self.graph
    }

    /// Finalizes the graph.
    #[must_use]
    pub fn finish(self) -> ExecutionGraph {
        self.graph
    }

    fn push_event(&mut self, p: ProcessId, trigger: Trigger) -> EventId {
        let id = EventId(self.graph.events.len());
        let index_at_process = self.graph.process_events[p.0].len();
        self.graph.events.push(Event {
            id,
            process: p,
            index_at_process,
            trigger,
        });
        self.graph.process_events[p.0].push(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two processes, one round trip.
    fn round_trip() -> (ExecutionGraph, [EventId; 4]) {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let c = b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(1));
        let (_, r2) = b.send(r1, ProcessId(0));
        (b.finish(), [a, c, r1, r2])
    }

    #[test]
    fn builder_assigns_dense_ids_and_local_order() {
        let (g, [a, c, r1, r2]) = round_trip();
        assert_eq!(g.num_events(), 4);
        assert_eq!(g.num_messages(), 2);
        assert_eq!(g.events_of(ProcessId(0)), &[a, r2]);
        assert_eq!(g.events_of(ProcessId(1)), &[c, r1]);
        assert_eq!(g.event(r1).index_at_process, 1);
        assert_eq!(g.event(r1).trigger, Trigger::Message(MessageId(0)));
    }

    #[test]
    fn happens_before_follows_messages_and_local_edges() {
        let (g, [a, c, r1, r2]) = round_trip();
        assert!(g.happens_before(a, r1));
        assert!(g.happens_before(a, r2));
        assert!(g.happens_before(c, r1)); // local edge at p1
        assert!(g.happens_before(r1, r2));
        assert!(!g.happens_before(r1, a));
        assert!(!g.happens_before(r2, r1));
        assert!(g.happens_before(a, a)); // reflexive
        assert!(!g.happens_before(c, a)); // concurrent inits
    }

    #[test]
    fn local_edges_enumerate_consecutive_pairs() {
        let (g, [a, c, r1, r2]) = round_trip();
        let edges: Vec<LocalEdge> = g.local_edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&LocalEdge { from: a, to: r2 }));
        assert!(edges.contains(&LocalEdge { from: c, to: r1 }));
        assert_eq!(g.num_shadow_edges(), 4);
    }

    #[test]
    fn local_pred_succ() {
        let (g, [a, c, r1, r2]) = round_trip();
        assert_eq!(g.local_pred(r2), Some(a));
        assert_eq!(g.local_succ(a), Some(r2));
        assert_eq!(g.local_pred(a), None);
        assert_eq!(g.local_succ(r1), None);
        assert_eq!(g.local_pred(r1), Some(c));
    }

    #[test]
    fn faulty_sender_messages_are_dropped_from_condition() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let _c = b.init(ProcessId(1));
        let (m, _) = b.send(a, ProcessId(1));
        b.mark_faulty(ProcessId(0));
        let g = b.finish();
        assert!(!g.is_effective(m));
        assert_eq!(g.effective_messages().count(), 0);
        assert_eq!(
            g.correct_processes().collect::<Vec<_>>(),
            vec![ProcessId(1)]
        );
    }

    #[test]
    fn explicit_exemption() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        let _ = b.init(ProcessId(1));
        let (m1, _) = b.send(a, ProcessId(1));
        let (m2, _) = b.send(a, ProcessId(1));
        b.set_exempt(m1);
        let g = b.finish();
        assert!(!g.is_effective(m1));
        assert!(g.is_effective(m2));
    }

    #[test]
    #[should_panic(expected = "already initialized")]
    fn double_init_panics() {
        let mut b = ExecutionGraph::builder(1);
        b.init(ProcessId(0));
        b.init(ProcessId(0));
    }

    #[test]
    #[should_panic(expected = "must be initialized")]
    fn send_to_uninitialized_panics() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.send(a, ProcessId(1));
    }

    #[test]
    fn direct_preds_of_init_is_empty() {
        let (g, [a, _, r1, r2]) = round_trip();
        assert_eq!(g.direct_preds(a).count(), 0);
        // r2 has a local pred (a) and a message pred (r1).
        let preds: Vec<EventId> = g.direct_preds(r2).collect();
        assert!(preds.contains(&a) && preds.contains(&r1));
        let _ = r1;
    }

    #[test]
    fn self_messages_are_allowed() {
        // The clock-sync algorithm sends to itself; the receive event is a
        // later event on the same process line.
        let mut b = ExecutionGraph::builder(1);
        let a = b.init(ProcessId(0));
        let (_, r) = b.send(a, ProcessId(0));
        let g = b.finish();
        assert_eq!(g.events_of(ProcessId(0)), &[a, r]);
        assert!(g.happens_before(a, r));
    }
}
