//! Exhaustive simple-cycle enumeration of the shadow multigraph.
//!
//! Definition 4 quantifies over *all* relevant cycles; their number is
//! exponential in the graph size, which is exactly why `abc-core` ships the
//! polynomial checker in [`crate::check`]. This module provides the
//! brute-force ground truth: it enumerates every simple cycle of the
//! undirected shadow multigraph (messages + local edges, with parallel
//! edges), subject to explicit budgets. It is used
//!
//! * to cross-validate the polynomial checker (property tests),
//! * to build the paper-literal Fig. 6 cycle inequality system in
//!   [`crate::assign`], and
//! * by the Fig. 2 / Fig. 7 experiments, which need concrete cycles.
//!
//! Only *effective* messages participate (the faulty-sender dropping of
//! Section 2).

use std::collections::HashSet;

use crate::cycle::{Cycle, CycleStep, ShadowEdge};
use crate::graph::{EventId, ExecutionGraph};

/// Budgets bounding the exponential enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumerationLimits {
    /// Stop after this many cycles have been found.
    pub max_cycles: usize,
    /// Skip cycles with more than this many steps (edges).
    pub max_len: usize,
    /// Abort after this many DFS extensions (guards pathological graphs).
    pub max_dfs_steps: usize,
}

impl Default for EnumerationLimits {
    fn default() -> EnumerationLimits {
        EnumerationLimits {
            max_cycles: 100_000,
            max_len: usize::MAX,
            max_dfs_steps: 50_000_000,
        }
    }
}

/// Result of an enumeration: the cycles found and whether the enumeration
/// ran to completion (no budget was hit).
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The simple cycles found, each validated against the source graph.
    pub cycles: Vec<Cycle>,
    /// `true` iff every simple cycle within `max_len` was enumerated.
    pub complete: bool,
}

/// Enumerates the simple cycles of `g`'s shadow multigraph.
///
/// Each cycle is reported exactly once; the traversal direction and starting
/// edge are canonical (smallest edge index first) but carry no semantic
/// weight — [`Cycle::classify`] is orientation-agnostic.
#[must_use]
pub fn enumerate_cycles(g: &ExecutionGraph, limits: EnumerationLimits) -> Enumeration {
    // Index all shadow edges: effective messages first, then local edges.
    let mut edges: Vec<(ShadowEdge, EventId, EventId)> = Vec::new();
    for m in g.effective_messages() {
        edges.push((ShadowEdge::Message(m.id), m.from, m.to));
    }
    for l in g.local_edges() {
        edges.push((ShadowEdge::Local(l), l.from, l.to));
    }
    // Adjacency: event -> (edge index, neighbour, walks-against-direction).
    let mut adj: Vec<Vec<(usize, EventId, bool)>> = vec![Vec::new(); g.num_events()];
    for (idx, (_, from, to)) in edges.iter().enumerate() {
        adj[from.0].push((idx, *to, false));
        adj[to.0].push((idx, *from, true));
    }

    let mut out = Enumeration {
        cycles: Vec::new(),
        complete: true,
    };
    let mut dfs_budget = limits.max_dfs_steps;
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut visited = vec![false; g.num_events()];

    // For each starting edge e0 (the minimum-index edge of the cycles it
    // roots), DFS over edges of strictly larger index.
    for e0 in 0..edges.len() {
        let (_, start, first_stop) = edges[e0];
        let mut path: Vec<(usize, bool)> = vec![(e0, false)];
        visited[first_stop.0] = true;
        dfs(
            g,
            &edges,
            &adj,
            e0,
            start,
            first_stop,
            &mut path,
            &mut visited,
            &mut seen,
            &mut out,
            &limits,
            &mut dfs_budget,
        );
        visited[first_stop.0] = false;
        debug_assert!(path.len() == 1);
        if !out.complete {
            break;
        }
    }
    out
}

/// Enumerates only the relevant cycles (Definition 3).
#[must_use]
pub fn enumerate_relevant_cycles(g: &ExecutionGraph, limits: EnumerationLimits) -> Enumeration {
    let mut e = enumerate_cycles(g, limits);
    e.cycles.retain(|c| c.classify().relevant);
    e
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &ExecutionGraph,
    edges: &[(ShadowEdge, EventId, EventId)],
    adj: &[Vec<(usize, EventId, bool)>],
    e0: usize,
    start: EventId,
    here: EventId,
    path: &mut Vec<(usize, bool)>,
    visited: &mut Vec<bool>,
    seen: &mut HashSet<Vec<usize>>,
    out: &mut Enumeration,
    limits: &EnumerationLimits,
    dfs_budget: &mut usize,
) {
    if path.len() >= limits.max_len {
        return;
    }
    for &(idx, next, against) in &adj[here.0] {
        if *dfs_budget == 0 {
            out.complete = false;
            return;
        }
        *dfs_budget -= 1;
        if idx <= e0 || path.iter().any(|(used, _)| *used == idx) {
            continue;
        }
        if next == start {
            // Close the cycle.
            path.push((idx, against));
            record(g, edges, path, seen, out);
            path.pop();
            if out.cycles.len() >= limits.max_cycles {
                out.complete = false;
                return;
            }
            continue;
        }
        if visited[next.0] {
            continue;
        }
        visited[next.0] = true;
        path.push((idx, against));
        dfs(
            g, edges, adj, e0, start, next, path, visited, seen, out, limits, dfs_budget,
        );
        path.pop();
        visited[next.0] = false;
        if !out.complete {
            return;
        }
    }
}

fn record(
    g: &ExecutionGraph,
    edges: &[(ShadowEdge, EventId, EventId)],
    path: &[(usize, bool)],
    seen: &mut HashSet<Vec<usize>>,
    out: &mut Enumeration,
) {
    let mut key: Vec<usize> = path.iter().map(|(i, _)| *i).collect();
    key.sort_unstable();
    if !seen.insert(key) {
        return;
    }
    let steps: Vec<CycleStep> = path
        .iter()
        .map(|&(idx, against)| CycleStep {
            edge: edges[idx].0,
            against,
        })
        .collect();
    let cycle = Cycle::new(steps);
    debug_assert!(
        cycle.validate(g).is_ok(),
        "enumerated cycle must validate: {cycle}"
    );
    out.cycles.push(cycle);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProcessId;
    use crate::xi::Xi;

    /// A fast 2-hop chain q -> r -> p spanned by one slow direct message
    /// q -> p arriving later (the minimal relevant cycle, ratio 2/1).
    fn diamond() -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(3);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        let (_m0, r1) = b.send(q0, ProcessId(2)); // q -> r
        let (_m1, p1) = b.send(r1, ProcessId(1)); // r -> p (fast, arrives first)
        let (_m2, p2) = b.send(q0, ProcessId(1)); // q -> p (slow, arrives later)
        let _ = (p1, p2);
        b.finish()
    }

    #[test]
    fn diamond_has_exactly_one_cycle() {
        let g = diamond();
        let e = enumerate_cycles(&g, EnumerationLimits::default());
        assert!(e.complete);
        assert_eq!(e.cycles.len(), 1, "cycles: {:?}", e.cycles);
        let c = e.cycles[0].classify();
        // One fast message vs a two-hop chain: 2/1.
        assert!(c.relevant);
        assert_eq!(c.ratio(), Some(abc_rational::Ratio::from_integer(2)));
    }

    #[test]
    fn empty_and_tree_graphs_have_no_cycles() {
        let mut b = ExecutionGraph::builder(3);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        b.send(a, ProcessId(1));
        b.send(a, ProcessId(2));
        let g = b.finish();
        let e = enumerate_cycles(&g, EnumerationLimits::default());
        assert!(e.complete);
        assert!(e.cycles.is_empty());
    }

    #[test]
    fn faulty_messages_do_not_form_cycles() {
        let mut b = ExecutionGraph::builder(3);
        let q0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        let (_m1, r1) = b.send(q0, ProcessId(2));
        b.send(r1, ProcessId(1));
        b.send(q0, ProcessId(1));
        b.mark_faulty(ProcessId(2)); // drops r -> p
        let g = b.finish();
        let e = enumerate_cycles(&g, EnumerationLimits::default());
        assert!(e.complete);
        assert!(e.cycles.is_empty(), "the only cycle used a faulty message");
    }

    #[test]
    fn ping_pong_cycles_count() {
        // p0 <-> p1, two round trips: every pair of "parallel" chains
        // between the two process lines closes a cycle.
        let mut b = ExecutionGraph::builder(2);
        let a0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_x, r1) = b.send(a0, ProcessId(1));
        let (_y, s1) = b.send(r1, ProcessId(0));
        let (_z, r2) = b.send(s1, ProcessId(1));
        let (_w, _s2) = b.send(r2, ProcessId(0));
        let g = b.finish();
        let e = enumerate_cycles(&g, EnumerationLimits::default());
        assert!(e.complete);
        // Shadow graph: a path that zigzags; cycles require >= 2 chains
        // between the same processes. Here consecutive messages alternate
        // directions and share events, so the only cycles are formed by a
        // message and the local+message paths around it. Verify against a
        // hand count: m0 || (local p1) is not a cycle (no second path);
        // in fact this zigzag is a tree plus local edges - each pair
        // (message, surrounding paths) can close. Just sanity-check
        // validation and completeness here.
        for c in &e.cycles {
            assert!(c.validate(&g).is_ok());
        }
    }

    #[test]
    fn budgets_are_respected() {
        let g = diamond();
        let e = enumerate_cycles(
            &g,
            EnumerationLimits {
                max_cycles: 0,
                max_len: usize::MAX,
                max_dfs_steps: usize::MAX,
            },
        );
        // Found-limit of zero reports incomplete as soon as one cycle lands.
        assert!(e.cycles.len() <= 1);
        let e2 = enumerate_cycles(
            &g,
            EnumerationLimits {
                max_cycles: 10,
                max_len: 2,
                max_dfs_steps: usize::MAX,
            },
        );
        assert!(e2.cycles.is_empty(), "diamond's cycle has length > 2");
        let e3 = enumerate_cycles(
            &g,
            EnumerationLimits {
                max_cycles: 10,
                max_len: usize::MAX,
                max_dfs_steps: 1,
            },
        );
        assert!(!e3.complete);
    }

    #[test]
    fn relevant_filter_matches_classify() {
        let g = diamond();
        let all = enumerate_cycles(&g, EnumerationLimits::default());
        let rel = enumerate_relevant_cycles(&g, EnumerationLimits::default());
        assert_eq!(
            rel.cycles.len(),
            all.cycles.iter().filter(|c| c.classify().relevant).count()
        );
        let _ = Xi::from_integer(3);
    }
}
