//! Linear-system representation shared by the simplex and Fourier–Motzkin
//! solvers, plus machine-checkable Farkas/Carver infeasibility certificates.

use std::fmt;

use abc_rational::Ratio;

/// Relation of a single row `a·x (rel) b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// Strict inequality `a·x < b`.
    Lt,
    /// Non-strict inequality `a·x ≤ b`.
    Le,
    /// Equality `a·x = b`.
    Eq,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rel::Lt => write!(f, "<"),
            Rel::Le => write!(f, "<="),
            Rel::Eq => write!(f, "="),
        }
    }
}

/// A single constraint row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Dense coefficient vector, one entry per variable.
    pub coeffs: Vec<Ratio>,
    /// Relation between `coeffs · x` and `rhs`.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: Ratio,
}

/// A system of linear constraints over free (sign-unrestricted) rational
/// variables.
///
/// # Example
///
/// ```
/// use abc_lp::{LinearSystem, Rel};
/// use abc_rational::Ratio;
///
/// let mut sys = LinearSystem::new(2);
/// sys.push_le(vec![Ratio::new(1, 1), Ratio::new(1, 1)], Ratio::from_integer(3));
/// sys.push_lt(vec![Ratio::new(-1, 1), Ratio::new(0, 1)], Ratio::from_integer(0));
/// assert_eq!(sys.num_rows(), 2);
/// assert!(sys.satisfied_by(&[Ratio::from_integer(1), Ratio::from_integer(1)]));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinearSystem {
    num_vars: usize,
    rows: Vec<Row>,
}

/// Errors reported by the LP solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// A row's coefficient vector length differs from the declared number of
    /// variables.
    DimensionMismatch {
        /// Index of the offending row.
        row: usize,
        /// Its coefficient count.
        got: usize,
        /// The system's variable count.
        expected: usize,
    },
    /// The objective LP was unbounded (cannot happen for the internally
    /// generated gap objective; reported for user-supplied objectives).
    Unbounded,
    /// Pivot limit exceeded — indicates a bug, since Bland's rule terminates.
    PivotLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { row, got, expected } => write!(
                f,
                "row {row} has {got} coefficients but the system has {expected} variables"
            ),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::PivotLimit => write!(f, "simplex pivot limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

impl LinearSystem {
    /// Creates an empty system over `num_vars` free variables.
    #[must_use]
    pub fn new(num_vars: usize) -> LinearSystem {
        LinearSystem {
            num_vars,
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The constraint rows.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Returns `true` iff at least one row is strict (`<`).
    #[must_use]
    pub fn has_strict_rows(&self) -> bool {
        self.rows.iter().any(|r| r.rel == Rel::Lt)
    }

    /// Adds a row `coeffs · x (rel) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != self.num_vars()`.
    pub fn push(&mut self, coeffs: Vec<Ratio>, rel: Rel, rhs: Ratio) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "row has {} coefficients but the system has {} variables",
            coeffs.len(),
            self.num_vars
        );
        self.rows.push(Row { coeffs, rel, rhs });
    }

    /// Adds a strict row `coeffs · x < rhs`.
    pub fn push_lt(&mut self, coeffs: Vec<Ratio>, rhs: Ratio) {
        self.push(coeffs, Rel::Lt, rhs);
    }

    /// Adds a non-strict row `coeffs · x ≤ rhs`.
    pub fn push_le(&mut self, coeffs: Vec<Ratio>, rhs: Ratio) {
        self.push(coeffs, Rel::Le, rhs);
    }

    /// Adds an equality row `coeffs · x = rhs`.
    pub fn push_eq(&mut self, coeffs: Vec<Ratio>, rhs: Ratio) {
        self.push(coeffs, Rel::Eq, rhs);
    }

    /// Evaluates `coeffs · x` for row `row`.
    #[must_use]
    pub fn eval_row(&self, row: usize, x: &[Ratio]) -> Ratio {
        self.rows[row]
            .coeffs
            .iter()
            .zip(x.iter())
            .map(|(a, v)| a * v)
            .sum()
    }

    /// Checks whether `x` satisfies every row (with exact arithmetic).
    #[must_use]
    pub fn satisfied_by(&self, x: &[Ratio]) -> bool {
        if x.len() != self.num_vars {
            return false;
        }
        self.rows.iter().enumerate().all(|(i, row)| {
            let lhs = self.eval_row(i, x);
            match row.rel {
                Rel::Lt => lhs < row.rhs,
                Rel::Le => lhs <= row.rhs,
                Rel::Eq => lhs == row.rhs,
            }
        })
    }
}

/// A feasible solution of a [`LinearSystem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Variable assignment.
    pub values: Vec<Ratio>,
    /// For systems with strict rows: the uniform slack achieved on strict
    /// rows (`coeffs · x + gap ≤ rhs` for every strict row); positive by
    /// construction. [`Ratio::zero`] for systems without strict rows.
    pub gap: Ratio,
}

/// A Farkas/Carver infeasibility certificate: one multiplier per row of the
/// original system.
///
/// For a mixed system with inequality rows `I` (both `<` and `≤`), strict
/// rows `S ⊆ I`, and equality rows `E`, the certificate proves
/// infeasibility when
///
/// * `y_i ≥ 0` for all `i ∈ I` (equality rows may have any sign),
/// * `yᵀA = 0`,
/// * and either `yᵀb < 0`, or `yᵀb = 0` with `Σ_{i ∈ S} y_i > 0`.
///
/// The second disjunct is Carver's refinement for strict systems: a
/// non-negative combination of the rows yielding `0 < 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// Row multipliers, aligned with [`LinearSystem::rows`].
    pub multipliers: Vec<Ratio>,
}

impl FarkasCertificate {
    /// Verifies the certificate against `sys` in exact arithmetic.
    ///
    /// Returns `true` iff the multipliers genuinely prove infeasibility.
    #[must_use]
    pub fn verify(&self, sys: &LinearSystem) -> bool {
        if self.multipliers.len() != sys.num_rows() {
            return false;
        }
        // Sign conditions.
        for (y, row) in self.multipliers.iter().zip(sys.rows()) {
            if row.rel != Rel::Eq && y.is_negative() {
                return false;
            }
        }
        if self.multipliers.iter().all(Ratio::is_zero) {
            return false;
        }
        // yᵀA = 0.
        for var in 0..sys.num_vars() {
            let combo: Ratio = self
                .multipliers
                .iter()
                .zip(sys.rows())
                .map(|(y, row)| y * &row.coeffs[var])
                .sum();
            if !combo.is_zero() {
                return false;
            }
        }
        // yᵀb < 0, or yᵀb = 0 with positive weight on a strict row.
        let ytb: Ratio = self
            .multipliers
            .iter()
            .zip(sys.rows())
            .map(|(y, row)| y * &row.rhs)
            .sum();
        if ytb.is_negative() {
            return true;
        }
        if ytb.is_zero() {
            let strict_weight: Ratio = self
                .multipliers
                .iter()
                .zip(sys.rows())
                .filter(|(_, row)| row.rel == Rel::Lt)
                .map(|(y, _)| y.clone())
                .sum();
            return strict_weight.is_positive();
        }
        false
    }
}

/// Outcome of a feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// The system is satisfiable; a witness is attached.
    Feasible(Solution),
    /// The system is unsatisfiable; a Farkas/Carver certificate is attached.
    Infeasible(FarkasCertificate),
}

impl Feasibility {
    /// Returns the solution if feasible.
    #[must_use]
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Feasibility::Feasible(s) => Some(s),
            Feasibility::Infeasible(_) => None,
        }
    }

    /// Returns the certificate if infeasible.
    #[must_use]
    pub fn certificate(&self) -> Option<&FarkasCertificate> {
        match self {
            Feasibility::Feasible(_) => None,
            Feasibility::Infeasible(c) => Some(c),
        }
    }

    /// `true` iff feasible.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }

    #[test]
    fn satisfied_by_respects_strictness() {
        let mut sys = LinearSystem::new(1);
        sys.push_lt(vec![r(1)], r(1));
        assert!(sys.satisfied_by(&[Ratio::new(1, 2)]));
        assert!(!sys.satisfied_by(&[r(1)]));

        let mut sys2 = LinearSystem::new(1);
        sys2.push_le(vec![r(1)], r(1));
        assert!(sys2.satisfied_by(&[r(1)]));

        let mut sys3 = LinearSystem::new(1);
        sys3.push_eq(vec![r(2)], r(4));
        assert!(sys3.satisfied_by(&[r(2)]));
        assert!(!sys3.satisfied_by(&[r(1)]));
    }

    #[test]
    fn satisfied_by_rejects_wrong_dimension() {
        let sys = LinearSystem::new(2);
        assert!(!sys.satisfied_by(&[r(0)]));
    }

    #[test]
    #[should_panic(expected = "coefficients")]
    fn push_panics_on_dimension_mismatch() {
        let mut sys = LinearSystem::new(2);
        sys.push_le(vec![r(1)], r(0));
    }

    #[test]
    fn certificate_verification_catches_bad_multipliers() {
        // x < 1 and -x < -1 is infeasible with y = (1, 1): 0 < 0.
        let mut sys = LinearSystem::new(1);
        sys.push_lt(vec![r(1)], r(1));
        sys.push_lt(vec![r(-1)], r(-1));
        let good = FarkasCertificate {
            multipliers: vec![r(1), r(1)],
        };
        assert!(good.verify(&sys));
        // Wrong: combination does not vanish.
        let bad = FarkasCertificate {
            multipliers: vec![r(1), r(2)],
        };
        assert!(!bad.verify(&sys));
        // Wrong: all-zero certificate proves nothing.
        let zero = FarkasCertificate {
            multipliers: vec![r(0), r(0)],
        };
        assert!(!zero.verify(&sys));
        // Wrong: negative multiplier on an inequality row.
        let neg = FarkasCertificate {
            multipliers: vec![r(-1), r(-1)],
        };
        assert!(!neg.verify(&sys));
    }

    #[test]
    fn certificate_requires_strict_weight_when_ytb_zero() {
        // x <= 1 and -x <= -1 is weakly feasible (x = 1); y = (1,1) gives
        // yᵀb = 0 but no strict row, so it must NOT verify.
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(1)], r(1));
        sys.push_le(vec![r(-1)], r(-1));
        let cert = FarkasCertificate {
            multipliers: vec![r(1), r(1)],
        };
        assert!(!cert.verify(&sys));
    }

    #[test]
    fn certificate_allows_negative_multiplier_on_equality_rows() {
        // x = 1 and x < 1: infeasible via y_eq = -1, y_lt = 1 => 0 < 0.
        let mut sys = LinearSystem::new(1);
        sys.push_eq(vec![r(1)], r(1));
        sys.push_lt(vec![r(1)], r(1));
        let cert = FarkasCertificate {
            multipliers: vec![r(-1), r(1)],
        };
        assert!(cert.verify(&sys));
    }
}
