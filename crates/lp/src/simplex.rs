//! Exact two-phase primal simplex over rationals.
//!
//! The solver decides mixed strict/non-strict systems (see
//! [`crate::LinearSystem`]) by the classic *gap* reformulation: introduce a
//! single variable `t`, replace every strict row `a·x < b` by `a·x + t ≤ b`,
//! cap `t ≤ 1`, and maximize `t`. The strict system is satisfiable **iff**
//! the optimum `t*` is positive, and any optimal basic solution then
//! satisfies every strict row with uniform slack `t*`.
//!
//! When `t* = 0` (or phase 1 already fails), the dual values at the optimal
//! basis — read off the reduced costs of the slack and artificial columns —
//! form a Farkas/Carver certificate, which is returned to the caller and can
//! be re-verified independently with
//! [`FarkasCertificate::verify`](crate::FarkasCertificate::verify).
//!
//! Free variables are split as `x = u − v` with `u, v ≥ 0`; Bland's rule is
//! used throughout, so the algorithm terminates without anti-cycling
//! heuristics. All arithmetic is exact ([`abc_rational::Ratio`]).

use abc_rational::Ratio;

use crate::system::{FarkasCertificate, Feasibility, LinearSystem, LpError, Rel, Solution};

/// Optimization direction for [`optimize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Outcome of [`optimize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Optimum {
    /// An optimal solution was found.
    Optimal {
        /// Optimal variable assignment.
        values: Vec<Ratio>,
        /// Optimal objective value.
        value: Ratio,
    },
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// The constraints are unsatisfiable.
    Infeasible(FarkasCertificate),
}

/// Decides feasibility of `sys`, honouring strict rows exactly.
///
/// Returns a witness solution (with positive [`Solution::gap`] when strict
/// rows are present) or a machine-checkable infeasibility certificate.
///
/// # Errors
///
/// Returns [`LpError::PivotLimit`] if the internal pivot budget is exhausted
/// (indicates a solver bug; Bland's rule terminates).
///
/// # Example
///
/// ```
/// use abc_lp::{simplex, LinearSystem};
/// use abc_rational::Ratio;
///
/// // 1 < x < 3/2
/// let mut sys = LinearSystem::new(1);
/// sys.push_lt(vec![Ratio::from_integer(-1)], Ratio::from_integer(-1));
/// sys.push_lt(vec![Ratio::from_integer(1)], Ratio::new(3, 2));
/// let sol = simplex::solve(&sys).unwrap();
/// let x = &sol.solution().unwrap().values[0];
/// assert!(*x > Ratio::from_integer(1) && *x < Ratio::new(3, 2));
/// ```
pub fn solve(sys: &LinearSystem) -> Result<Feasibility, LpError> {
    let mut tab = Tableau::build(sys);
    if !tab.phase1()? {
        let cert = tab.extract_certificate(sys);
        return Ok(Feasibility::Infeasible(cert));
    }
    if tab.t_col.is_none() {
        // No strict rows: phase 1 already produced a feasible point.
        let values = tab.extract_solution(sys.num_vars());
        return Ok(Feasibility::Feasible(Solution {
            values,
            gap: Ratio::zero(),
        }));
    }
    // Phase 2: maximize t (minimize -t).
    let mut costs = vec![Ratio::zero(); tab.num_cols];
    costs[tab.t_col.unwrap()] = -Ratio::one();
    tab.set_objective(&costs);
    match tab.optimize()? {
        false => unreachable!("gap objective is capped by t <= 1, cannot be unbounded"),
        true => {}
    }
    let t_star = -tab.objective_value(); // we minimized -t
    if t_star.is_positive() {
        let values = tab.extract_solution(sys.num_vars());
        debug_assert!(sys.satisfied_by(&values));
        Ok(Feasibility::Feasible(Solution {
            values,
            gap: t_star,
        }))
    } else {
        let cert = tab.extract_certificate(sys);
        Ok(Feasibility::Infeasible(cert))
    }
}

/// Optimizes `objective · x` over `sys`, **relaxing strict rows to `≤`**
/// (an open feasible region need not attain its supremum; callers that care
/// about strictness should use [`solve`] for feasibility and treat the
/// returned value as a supremum/infimum).
///
/// # Errors
///
/// Returns [`LpError::DimensionMismatch`] if `objective.len()` differs from
/// `sys.num_vars()`, or [`LpError::PivotLimit`] on a solver bug.
pub fn optimize(
    sys: &LinearSystem,
    objective: &[Ratio],
    direction: Direction,
) -> Result<Optimum, LpError> {
    if objective.len() != sys.num_vars() {
        return Err(LpError::DimensionMismatch {
            row: usize::MAX,
            got: objective.len(),
            expected: sys.num_vars(),
        });
    }
    let mut tab = Tableau::build_relaxed(sys);
    if !tab.phase1()? {
        let cert = tab.extract_certificate(sys);
        return Ok(Optimum::Infeasible(cert));
    }
    // Phase 2 with the user objective (always minimized internally).
    let mut costs = vec![Ratio::zero(); tab.num_cols];
    for (j, c) in objective.iter().enumerate() {
        let signed = match direction {
            Direction::Maximize => -c.clone(),
            Direction::Minimize => c.clone(),
        };
        costs[tab.u_col(j)] = signed.clone();
        costs[tab.v_col(j)] = -signed;
    }
    tab.set_objective(&costs);
    if !tab.optimize()? {
        return Ok(Optimum::Unbounded);
    }
    let values = tab.extract_solution(sys.num_vars());
    let value: Ratio = objective
        .iter()
        .zip(values.iter())
        .map(|(c, v)| c * v)
        .sum();
    Ok(Optimum::Optimal { values, value })
}

// ---------------------------------------------------------------------------
// Tableau internals.
// ---------------------------------------------------------------------------

/// Dense simplex tableau in basis form.
///
/// Column layout: `[u_0..u_{n-1}, v_0..v_{n-1}, t?, slacks..., artificials...]`
/// with the right-hand side kept separately per row. Artificial columns are
/// retained (blocked) through phase 2 so that dual values can be read off.
struct Tableau {
    /// Constraint rows; `rows[i][j]` is the tableau entry, `rhs[i]` the RHS.
    rows: Vec<Vec<Ratio>>,
    rhs: Vec<Ratio>,
    /// Reduced-cost row and (negated) objective value.
    obj: Vec<Ratio>,
    obj_rhs: Ratio,
    /// Current cost vector (to recompute reduced costs after phase switch).
    costs: Vec<Ratio>,
    basis: Vec<usize>,
    blocked: Vec<bool>,
    num_cols: usize,
    t_col: Option<usize>,
    /// For each tableau row: the original system row index (`None` for the
    /// internal `t ≤ 1` cap row) and whether the row was negated to make the
    /// RHS non-negative.
    row_origin: Vec<Option<usize>>,
    row_negated: Vec<bool>,
    /// Per tableau row: the column of its slack variable, if any.
    slack_col: Vec<Option<usize>>,
    /// Per tableau row: the column of its artificial variable, if any.
    art_col: Vec<Option<usize>>,
}

impl Tableau {
    fn build(sys: &LinearSystem) -> Tableau {
        Tableau::build_inner(sys, /*relax_strict=*/ false)
    }

    fn build_relaxed(sys: &LinearSystem) -> Tableau {
        Tableau::build_inner(sys, /*relax_strict=*/ true)
    }

    fn build_inner(sys: &LinearSystem, relax_strict: bool) -> Tableau {
        let n = sys.num_vars();
        let strict_present = !relax_strict && sys.has_strict_rows();
        let m = sys.num_rows() + usize::from(strict_present); // + cap row
        let num_ineq =
            sys.rows().iter().filter(|r| r.rel != Rel::Eq).count() + usize::from(strict_present);
        let t_col = strict_present.then_some(2 * n);
        let slack_base = 2 * n + usize::from(strict_present);
        let art_base = slack_base + num_ineq;
        let num_cols = art_base + m; // worst case: artificial per row
        let mut tab = Tableau {
            rows: Vec::with_capacity(m),
            rhs: Vec::with_capacity(m),
            obj: vec![Ratio::zero(); num_cols],
            obj_rhs: Ratio::zero(),
            costs: vec![Ratio::zero(); num_cols],
            basis: Vec::with_capacity(m),
            blocked: vec![false; num_cols],
            num_cols,
            t_col,
            row_origin: Vec::with_capacity(m),
            row_negated: Vec::with_capacity(m),
            slack_col: Vec::with_capacity(m),
            art_col: Vec::with_capacity(m),
        };
        let mut next_slack = slack_base;
        let mut next_art = art_base;
        let mut add_row = |tab: &mut Tableau,
                           coeffs: &[Ratio],
                           rel: Rel,
                           rhs_val: &Ratio,
                           origin: Option<usize>,
                           with_t: bool| {
            let mut row = vec![Ratio::zero(); num_cols];
            for (j, c) in coeffs.iter().enumerate() {
                row[2 * j] = c.clone();
                row[2 * j + 1] = -c;
            }
            if with_t {
                row[t_col.expect("t column exists")] = Ratio::one();
            }
            let mut rhs_v = rhs_val.clone();
            let negated = rhs_v.is_negative();
            let slack = if rel == Rel::Eq {
                None
            } else {
                let col = next_slack;
                next_slack += 1;
                row[col] = Ratio::one();
                Some(col)
            };
            if negated {
                for entry in row.iter_mut() {
                    if !entry.is_zero() {
                        *entry = -&*entry;
                    }
                }
                rhs_v = -rhs_v;
            }
            // Basis: the slack if its column is +1 (not negated); otherwise
            // an artificial variable.
            let (basic, art) = match slack {
                Some(col) if !negated => (col, None),
                _ => {
                    let col = next_art;
                    next_art += 1;
                    row[col] = Ratio::one();
                    (col, Some(col))
                }
            };
            tab.rows.push(row);
            tab.rhs.push(rhs_v);
            tab.basis.push(basic);
            tab.row_origin.push(origin);
            tab.row_negated.push(negated);
            tab.slack_col.push(slack);
            tab.art_col.push(art);
        };
        // Interleave u_j/v_j columns: u_j at 2j, v_j at 2j+1 (see u_col/v_col).
        for (i, row) in sys.rows().iter().enumerate() {
            let with_t = strict_present && row.rel == Rel::Lt;
            add_row(&mut tab, &row.coeffs, row.rel, &row.rhs, Some(i), with_t);
        }
        if strict_present {
            // Cap row: t <= 1 keeps the gap objective bounded.
            let zeros = vec![Ratio::zero(); n];
            add_row(&mut tab, &zeros, Rel::Le, &Ratio::one(), None, true);
        }
        tab
    }

    fn u_col(&self, j: usize) -> usize {
        2 * j
    }

    fn v_col(&self, j: usize) -> usize {
        2 * j + 1
    }

    /// Sets the cost vector and recomputes the reduced-cost row from the
    /// current basis: `r = c − Σ_i c_{B_i}·row_i`.
    fn set_objective(&mut self, costs: &[Ratio]) {
        self.costs = costs.to_vec();
        self.obj = costs.to_vec();
        self.obj_rhs = Ratio::zero();
        for (i, row) in self.rows.iter().enumerate() {
            let cb = &self.costs[self.basis[i]];
            if cb.is_zero() {
                continue;
            }
            for j in 0..self.num_cols {
                if !row[j].is_zero() {
                    let delta = cb * &row[j];
                    self.obj[j] -= delta;
                }
            }
            self.obj_rhs -= cb * &self.rhs[i];
        }
    }

    /// Current objective value (for the minimized cost vector).
    fn objective_value(&self) -> Ratio {
        -self.obj_rhs.clone()
    }

    fn pivot(&mut self, prow: usize, pcol: usize) {
        // Normalize the pivot row.
        let pivot = self.rows[prow][pcol].clone();
        debug_assert!(pivot.is_positive());
        if !pivot.is_one() {
            for j in 0..self.num_cols {
                if !self.rows[prow][j].is_zero() {
                    self.rows[prow][j] /= &pivot;
                }
            }
            self.rhs[prow] /= &pivot;
        }
        // Eliminate the pivot column elsewhere.
        let prow_snapshot = self.rows[prow].clone();
        let prhs_snapshot = self.rhs[prow].clone();
        for i in 0..self.rows.len() {
            if i == prow || self.rows[i][pcol].is_zero() {
                continue;
            }
            let factor = self.rows[i][pcol].clone();
            for j in 0..self.num_cols {
                if !prow_snapshot[j].is_zero() {
                    let delta = &factor * &prow_snapshot[j];
                    self.rows[i][j] -= delta;
                }
            }
            let delta = &factor * &prhs_snapshot;
            self.rhs[i] -= delta;
        }
        if !self.obj[pcol].is_zero() {
            let factor = self.obj[pcol].clone();
            for j in 0..self.num_cols {
                if !prow_snapshot[j].is_zero() {
                    let delta = &factor * &prow_snapshot[j];
                    self.obj[j] -= delta;
                }
            }
            let delta = &factor * &prhs_snapshot;
            self.obj_rhs -= delta;
        }
        self.basis[prow] = pcol;
    }

    /// Runs simplex iterations with Bland's rule until optimality.
    ///
    /// Returns `Ok(true)` at optimality, `Ok(false)` if unbounded.
    fn optimize(&mut self) -> Result<bool, LpError> {
        // Generous pivot budget: Bland's rule cannot cycle, so exceeding this
        // indicates a bug rather than slow convergence.
        let limit = 50_000 + 100 * (self.rows.len() + 1) * (self.num_cols + 1);
        for _ in 0..limit {
            // Bland: entering column = smallest index with negative reduced cost.
            let entering =
                (0..self.num_cols).find(|&j| !self.blocked[j] && self.obj[j].is_negative());
            let Some(pcol) = entering else {
                return Ok(true);
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut best: Option<(usize, Ratio)> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][pcol].is_positive() {
                    continue;
                }
                let ratio = &self.rhs[i] / &self.rows[i][pcol];
                match &best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < *br || (ratio == *br && self.basis[i] < self.basis[*bi]) {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((prow, _)) = best else {
                return Ok(false);
            };
            self.pivot(prow, pcol);
        }
        Err(LpError::PivotLimit)
    }

    /// Phase 1: drive the artificial variables to zero.
    ///
    /// Returns `Ok(true)` if a basic feasible solution exists.
    fn phase1(&mut self) -> Result<bool, LpError> {
        let mut costs = vec![Ratio::zero(); self.num_cols];
        let mut have_art = false;
        for art in self.art_col.iter().flatten() {
            costs[*art] = Ratio::one();
            have_art = true;
        }
        if have_art {
            self.set_objective(&costs);
            let optimal = self.optimize()?;
            debug_assert!(optimal, "phase-1 objective is bounded below by zero");
            if self.objective_value().is_positive() {
                return Ok(false);
            }
            self.drive_out_artificials();
        }
        // Block artificial columns from ever entering again.
        for art in self.art_col.iter().flatten() {
            self.blocked[*art] = true;
        }
        Ok(true)
    }

    /// Pivots basic-at-zero artificial variables out of the basis; removes
    /// rows that turn out to be redundant.
    fn drive_out_artificials(&mut self) {
        let art_cols: Vec<usize> = self.art_col.iter().flatten().copied().collect();
        let is_art = |col: usize| art_cols.binary_search(&col).is_ok();
        let mut i = 0;
        while i < self.rows.len() {
            if !is_art(self.basis[i]) {
                i += 1;
                continue;
            }
            debug_assert!(self.rhs[i].is_zero(), "artificial basic at nonzero level");
            // Find a non-artificial column with a nonzero entry to pivot on.
            let candidate = (0..self.num_cols).find(|&j| !is_art(j) && !self.rows[i][j].is_zero());
            match candidate {
                Some(j) => {
                    if self.rows[i][j].is_negative() {
                        // Make the pivot entry positive (degenerate pivot,
                        // RHS is zero so feasibility is unaffected).
                        for entry in self.rows[i].iter_mut() {
                            if !entry.is_zero() {
                                *entry = -&*entry;
                            }
                        }
                        // rhs is zero; nothing to negate there.
                    }
                    self.pivot(i, j);
                    i += 1;
                }
                None => {
                    // Row is 0 = 0 over the real columns: redundant.
                    self.rows.swap_remove(i);
                    self.rhs.swap_remove(i);
                    self.basis.swap_remove(i);
                    self.row_origin.swap_remove(i);
                    self.row_negated.swap_remove(i);
                    self.slack_col.swap_remove(i);
                    self.art_col.swap_remove(i);
                }
            }
        }
    }

    /// Reads the solution for the original free variables out of the basis.
    fn extract_solution(&self, num_vars: usize) -> Vec<Ratio> {
        let mut col_value = vec![Ratio::zero(); self.num_cols];
        for (i, &b) in self.basis.iter().enumerate() {
            col_value[b] = self.rhs[i].clone();
        }
        (0..num_vars)
            .map(|j| &col_value[self.u_col(j)] - &col_value[self.v_col(j)])
            .collect()
    }

    /// Extracts a Farkas/Carver certificate from the dual values at the
    /// current (optimal) basis.
    ///
    /// For a tableau row `i` carrying original row `orig`, the dual value is
    /// read from the reduced cost of its slack column (`y_i = r_{slack}`) or,
    /// for equality rows, from the artificial column
    /// (`y'_i = c_{art} − r_{art}`, then `y_i = −σ_i·y'_i`).
    fn extract_certificate(&self, sys: &LinearSystem) -> FarkasCertificate {
        let mut multipliers = vec![Ratio::zero(); sys.num_rows()];
        // Tableau rows may have been permuted/removed (drive_out). Dual values
        // live in columns, not rows, so we recover them from the ORIGINAL
        // row -> column maps captured at build time. Removed (redundant) rows
        // get multiplier zero, which is always sound.
        for (i, origin) in self.row_origin.iter().enumerate() {
            let Some(orig) = origin else { continue };
            let y = match self.slack_col[i] {
                Some(s) => self.obj[s].clone(),
                None => {
                    let art = self.art_col[i].expect("equality rows carry artificials");
                    let y_prime = &self.costs[art] - &self.obj[art];
                    let sigma = if self.row_negated[i] {
                        -Ratio::one()
                    } else {
                        Ratio::one()
                    };
                    -(sigma * y_prime)
                }
            };
            multipliers[*orig] = y;
        }
        FarkasCertificate { multipliers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }

    fn rq(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn trivial_empty_system_is_feasible() {
        let sys = LinearSystem::new(3);
        let out = solve(&sys).unwrap();
        assert!(out.is_feasible());
    }

    #[test]
    fn single_strict_interval() {
        let mut sys = LinearSystem::new(1);
        sys.push_lt(vec![r(1)], r(2));
        sys.push_lt(vec![r(-1)], r(-1));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert!(sys.satisfied_by(&sol.values));
        assert!(sol.gap.is_positive());
    }

    #[test]
    fn empty_open_interval_is_infeasible_with_valid_certificate() {
        let mut sys = LinearSystem::new(1);
        sys.push_lt(vec![r(1)], r(1));
        sys.push_lt(vec![r(-1)], r(-1));
        let out = solve(&sys).unwrap();
        let cert = out.certificate().expect("infeasible");
        assert!(cert.verify(&sys));
    }

    #[test]
    fn weakly_feasible_strict_system_is_infeasible() {
        // x <= 1 and x >= 1 and x < 1 combined: the <= rows admit x = 1 but
        // the strict row forbids it.
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(1)], r(1));
        sys.push_le(vec![r(-1)], r(-1));
        sys.push_lt(vec![r(1)], r(1));
        let out = solve(&sys).unwrap();
        let cert = out.certificate().expect("infeasible");
        assert!(cert.verify(&sys));
    }

    #[test]
    fn equality_rows_are_honoured() {
        // x + y = 2, x - y = 0 => x = y = 1; then x < 2 is fine.
        let mut sys = LinearSystem::new(2);
        sys.push_eq(vec![r(1), r(1)], r(2));
        sys.push_eq(vec![r(1), r(-1)], r(0));
        sys.push_lt(vec![r(1), r(0)], r(2));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert_eq!(sol.values, vec![r(1), r(1)]);
    }

    #[test]
    fn inconsistent_equalities_yield_certificate() {
        let mut sys = LinearSystem::new(1);
        sys.push_eq(vec![r(1)], r(1));
        sys.push_eq(vec![r(1)], r(2));
        let out = solve(&sys).unwrap();
        let cert = out.certificate().expect("infeasible");
        assert!(cert.verify(&sys), "certificate {:?}", cert);
    }

    #[test]
    fn negative_rhs_rows_need_artificials() {
        // -x <= -5 (i.e. x >= 5), x <= 10.
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(-1)], r(-5));
        sys.push_le(vec![r(1)], r(10));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert!(sol.values[0] >= r(5) && sol.values[0] <= r(10));
    }

    #[test]
    fn free_variables_can_go_negative() {
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(1)], r(-3));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert!(sol.values[0] <= r(-3));
    }

    #[test]
    fn paper_shaped_cycle_system() {
        // A miniature of the paper's Fig. 6 system with Xi = 2:
        // messages e1..e3, one relevant cycle with Z- = {e1, e2}, Z+ = {e3}.
        //   1 < tau(e_i) < 2 for all i;  tau(e1) + tau(e2) - tau(e3) < 0
        // is infeasible for Xi = 2 exactly when |Z-| >= Xi * |Z+| would be
        // violated ... here |Z-|/|Z+| = 2 = Xi, so it must be INFEASIBLE.
        let xi = r(2);
        let mut sys = LinearSystem::new(3);
        for e in 0..3 {
            let mut up = vec![r(0); 3];
            up[e] = r(1);
            sys.push_lt(up.clone(), xi.clone());
            let mut lo = vec![r(0); 3];
            lo[e] = r(-1);
            sys.push_lt(lo, r(-1));
        }
        sys.push_lt(vec![r(1), r(1), r(-1)], r(0));
        let out = solve(&sys).unwrap();
        let cert = out.certificate().expect("ratio == Xi must be infeasible");
        assert!(cert.verify(&sys));

        // With Xi = 3 the same pattern becomes feasible (ratio 2 < 3).
        let xi = r(3);
        let mut sys2 = LinearSystem::new(3);
        for e in 0..3 {
            let mut up = vec![r(0); 3];
            up[e] = r(1);
            sys2.push_lt(up.clone(), xi.clone());
            let mut lo = vec![r(0); 3];
            lo[e] = r(-1);
            sys2.push_lt(lo, r(-1));
        }
        sys2.push_lt(vec![r(1), r(1), r(-1)], r(0));
        let out2 = solve(&sys2).unwrap();
        let sol = out2.solution().expect("feasible for Xi = 3");
        assert!(sys2.satisfied_by(&sol.values));
    }

    #[test]
    fn optimize_maximize_simple() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0 (as rows).
        let mut sys = LinearSystem::new(2);
        sys.push_le(vec![r(1), r(2)], r(4));
        sys.push_le(vec![r(3), r(1)], r(6));
        sys.push_le(vec![r(-1), r(0)], r(0));
        sys.push_le(vec![r(0), r(-1)], r(0));
        match optimize(&sys, &[r(1), r(1)], Direction::Maximize).unwrap() {
            Optimum::Optimal { values, value } => {
                assert_eq!(value, rq(14, 5)); // x = 8/5, y = 6/5
                assert!(sys.satisfied_by(&values));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optimize_detects_unbounded() {
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(-1)], r(0)); // x >= 0
        match optimize(&sys, &[r(1)], Direction::Maximize).unwrap() {
            Optimum::Unbounded => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optimize_minimize() {
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(-1)], r(2)); // x >= -2
        match optimize(&sys, &[r(1)], Direction::Minimize).unwrap() {
            Optimum::Optimal { values, value } => {
                assert_eq!(value, r(-2));
                assert_eq!(values[0], r(-2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gap_reported_matches_slack() {
        let mut sys = LinearSystem::new(1);
        sys.push_lt(vec![r(1)], r(10));
        sys.push_lt(vec![r(-1)], r(0));
        let out = solve(&sys).unwrap();
        let sol = out.solution().unwrap();
        // Every strict row must hold with slack >= gap.
        for (i, row) in sys.rows().iter().enumerate() {
            let lhs = sys.eval_row(i, &sol.values);
            assert!(&lhs + &sol.gap <= row.rhs);
        }
        // The gap is capped at 1 by construction.
        assert!(sol.gap <= r(1));
    }
}
