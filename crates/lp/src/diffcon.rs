//! Difference-constraint systems over rationals with strict inequalities.
//!
//! A difference constraint has the form `x_u − x_v ≤ c` or `x_u − x_v < c`.
//! Such systems are solvable in `O(V·E)` by Bellman–Ford; they are how the
//! polynomial "trigger-path" formulation of the paper's Theorem 7 delay
//! assignment is decided (every non-initial event of a message-driven
//! execution is triggered by exactly one message, so event times are affine
//! in the initial-event offsets, and local-edge monotonicity becomes a
//! difference constraint on those offsets).
//!
//! Strictness is handled symbolically: each weight is a pair `(c, k)` read
//! as `c + k·ε` for an infinitesimal `ε > 0`, compared lexicographically.
//! Strict edges carry `k = −1`. A solution in `(Ratio, ε)`-space is turned
//! into a concrete rational solution by computing the largest admissible
//! numeric value for `ε` and halving it.

use abc_rational::Ratio;

/// One difference constraint `x_u − x_v (≤ | <) bound`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffConstraint {
    /// Index of the minuend variable.
    pub u: usize,
    /// Index of the subtrahend variable.
    pub v: usize,
    /// The right-hand side.
    pub bound: Ratio,
    /// Whether the constraint is strict (`<`).
    pub strict: bool,
}

impl DiffConstraint {
    /// Creates `x_u − x_v ≤ bound`.
    #[must_use]
    pub fn le(u: usize, v: usize, bound: Ratio) -> DiffConstraint {
        DiffConstraint {
            u,
            v,
            bound,
            strict: false,
        }
    }

    /// Creates `x_u − x_v < bound`.
    #[must_use]
    pub fn lt(u: usize, v: usize, bound: Ratio) -> DiffConstraint {
        DiffConstraint {
            u,
            v,
            bound,
            strict: true,
        }
    }

    /// Checks this constraint against an assignment, exactly.
    #[must_use]
    pub fn satisfied_by(&self, x: &[Ratio]) -> bool {
        let diff = &x[self.u] - &x[self.v];
        if self.strict {
            diff < self.bound
        } else {
            diff <= self.bound
        }
    }
}

/// A negative-cycle witness: the indices of constraints whose sum telescopes
/// to `0 < 0` (or `0 ≤ −c`, `c > 0`), proving unsatisfiability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeCycle {
    /// Indices into the constraint slice passed to [`solve`].
    pub constraint_indices: Vec<usize>,
}

impl NegativeCycle {
    /// Verifies that the cycle indeed telescopes to a contradiction.
    #[must_use]
    pub fn verify(&self, constraints: &[DiffConstraint]) -> bool {
        if self.constraint_indices.is_empty() {
            return false;
        }
        // The constraints must chain: u of one equals v of the next, and wrap.
        let cs: Vec<&DiffConstraint> = self
            .constraint_indices
            .iter()
            .map(|&i| &constraints[i])
            .collect();
        for w in 0..cs.len() {
            let next = (w + 1) % cs.len();
            if cs[w].v != cs[next].u {
                return false;
            }
        }
        let total: Ratio = cs.iter().map(|c| c.bound.clone()).sum();
        let any_strict = cs.iter().any(|c| c.strict);
        total.is_negative() || (total.is_zero() && any_strict)
    }
}

/// Lexicographic `(value, ε-multiplicity)` weight.
type LexWeight = (Ratio, i64);

fn lex_add(a: &LexWeight, b: &LexWeight) -> LexWeight {
    (&a.0 + &b.0, a.1 + b.1)
}

fn lex_lt(a: &LexWeight, b: &LexWeight) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Solves the difference-constraint system over `num_vars` variables.
///
/// Returns a concrete rational assignment satisfying every constraint
/// (strict ones strictly), or a verifiable [`NegativeCycle`].
///
/// # Example
///
/// ```
/// use abc_lp::diffcon::{solve, DiffConstraint};
/// use abc_rational::Ratio;
///
/// // x0 - x1 < 0 and x1 - x0 ≤ 3: satisfiable.
/// let cs = vec![
///     DiffConstraint::lt(0, 1, Ratio::from_integer(0)),
///     DiffConstraint::le(1, 0, Ratio::from_integer(3)),
/// ];
/// let x = solve(2, &cs).unwrap();
/// assert!(&x[0] - &x[1] < Ratio::from_integer(0));
/// ```
pub fn solve(num_vars: usize, constraints: &[DiffConstraint]) -> Result<Vec<Ratio>, NegativeCycle> {
    for c in constraints {
        assert!(
            c.u < num_vars && c.v < num_vars,
            "constraint variable out of range"
        );
    }
    // Bellman–Ford from a virtual source connected to every node with
    // weight (0, 0): dist[u] ≤ dist[v] + w(edge v->u) for constraint
    // x_u − x_v ≤ w, i.e. edge (v -> u, w).
    let mut dist: Vec<LexWeight> = vec![(Ratio::zero(), 0); num_vars];
    let mut pred: Vec<Option<usize>> = vec![None; num_vars]; // constraint index
    let mut changed = true;
    for _round in 0..num_vars {
        if !changed {
            break;
        }
        changed = false;
        for (ci, c) in constraints.iter().enumerate() {
            let w = (c.bound.clone(), if c.strict { -1 } else { 0 });
            let candidate = lex_add(&dist[c.v], &w);
            if lex_lt(&candidate, &dist[c.u]) {
                dist[c.u] = candidate;
                pred[c.u] = Some(ci);
                changed = true;
            }
        }
    }
    if changed {
        // One more relaxation possible => negative cycle. Find a node that
        // still relaxes and walk predecessors to recover the cycle.
        for (ci, c) in constraints.iter().enumerate() {
            let w = (c.bound.clone(), if c.strict { -1 } else { 0 });
            let candidate = lex_add(&dist[c.v], &w);
            if lex_lt(&candidate, &dist[c.u]) {
                dist[c.u] = candidate;
                pred[c.u] = Some(ci);
                // Walk back `num_vars` steps to land inside the cycle.
                let mut node = c.u;
                for _ in 0..num_vars {
                    node = constraints[pred[node].expect("on a relaxed path")].v;
                }
                // Collect the cycle.
                let start = node;
                let mut cycle = Vec::new();
                loop {
                    let ci = pred[node].expect("cycle nodes have predecessors");
                    cycle.push(ci);
                    node = constraints[ci].v;
                    if node == start {
                        break;
                    }
                }
                // The predecessor walk already yields a chained order
                // (each constraint's `v` is the next one's `u`).
                let witness = NegativeCycle {
                    constraint_indices: cycle,
                };
                debug_assert!(witness.verify(constraints), "extracted cycle must verify");
                return Err(witness);
            }
        }
        unreachable!("changed flag set but no relaxable edge found");
    }

    // Concretize ε: every constraint holds in (value, ε) space; compute the
    // largest ε for which the numeric assignment x_i = dist_i.0 + dist_i.1·ε
    // still satisfies everything, then halve it.
    let mut eps_bound: Option<Ratio> = None;
    for c in constraints {
        let dv = &dist[c.u].0 - &dist[c.v].0;
        let dk = dist[c.u].1 - dist[c.v].1;
        // Need dv + dk·ε ≤ bound (or < for strict). In lex space it holds:
        // either dv < bound, or dv == bound and dk ≤ (strict: <) 0.
        if dk > 0 {
            debug_assert!(dv < c.bound);
            let room = (&c.bound - &dv) / Ratio::from_integer(dk);
            eps_bound = Some(match eps_bound {
                None => room,
                Some(b) => b.min(room),
            });
        }
    }
    let eps = match eps_bound {
        // Halve to turn "≤ the bound" into strict satisfaction everywhere.
        Some(b) => b / Ratio::from_integer(2),
        None => Ratio::one(),
    };
    let values: Vec<Ratio> = dist
        .iter()
        .map(|(v, k)| v + &(Ratio::from_integer(*k) * &eps))
        .collect();
    debug_assert!(
        constraints.iter().all(|c| c.satisfied_by(&values)),
        "concretized assignment must satisfy all constraints"
    );
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }

    #[test]
    fn simple_chain_solvable() {
        // x0 < x1 < x2, x2 - x0 ≤ 3.
        let cs = vec![
            DiffConstraint::lt(0, 1, r(0)),
            DiffConstraint::lt(1, 2, r(0)),
            DiffConstraint::le(2, 0, r(3)),
        ];
        let x = solve(3, &cs).unwrap();
        assert!(x[0] < x[1] && x[1] < x[2]);
        assert!(&x[2] - &x[0] <= r(3));
    }

    #[test]
    fn strict_cycle_is_infeasible() {
        // x0 < x1, x1 < x2, x2 < x0.
        let cs = vec![
            DiffConstraint::lt(0, 1, r(0)),
            DiffConstraint::lt(1, 2, r(0)),
            DiffConstraint::lt(2, 0, r(0)),
        ];
        let err = solve(3, &cs).unwrap_err();
        assert!(err.verify(&cs));
        assert_eq!(err.constraint_indices.len(), 3);
    }

    #[test]
    fn nonstrict_zero_cycle_is_feasible() {
        // x0 ≤ x1 ≤ x0 forces equality but is satisfiable.
        let cs = vec![
            DiffConstraint::le(0, 1, r(0)),
            DiffConstraint::le(1, 0, r(0)),
        ];
        let x = solve(2, &cs).unwrap();
        assert_eq!(x[0], x[1]);
    }

    #[test]
    fn negative_weight_cycle_is_infeasible() {
        let cs = vec![
            DiffConstraint::le(0, 1, r(-2)),
            DiffConstraint::le(1, 0, r(1)),
        ];
        let err = solve(2, &cs).unwrap_err();
        assert!(err.verify(&cs));
    }

    #[test]
    fn mixed_strictness_tight_loop() {
        // x0 - x1 < 5 and x1 - x0 ≤ -5: sum 0 with a strict edge => infeasible.
        let cs = vec![
            DiffConstraint::lt(0, 1, r(5)),
            DiffConstraint::le(1, 0, r(-5)),
        ];
        let err = solve(2, &cs).unwrap_err();
        assert!(err.verify(&cs));
        // Relaxing the strict edge makes it feasible.
        let cs2 = vec![
            DiffConstraint::le(0, 1, r(5)),
            DiffConstraint::le(1, 0, r(-5)),
        ];
        let x = solve(2, &cs2).unwrap();
        assert_eq!(&x[0] - &x[1], r(5));
    }

    #[test]
    fn rational_bounds() {
        let cs = vec![
            DiffConstraint::lt(0, 1, Ratio::new(1, 3)),
            DiffConstraint::lt(1, 0, Ratio::new(-1, 4)),
        ];
        let x = solve(2, &cs).unwrap();
        let d = &x[0] - &x[1];
        assert!(d < Ratio::new(1, 3) && d > Ratio::new(1, 4));
    }

    #[test]
    fn unconstrained_variables_get_values() {
        let x = solve(4, &[]).unwrap();
        assert_eq!(x.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let cs = vec![DiffConstraint::le(0, 7, r(0))];
        let _ = solve(2, &cs);
    }
}
