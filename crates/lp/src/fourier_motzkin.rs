//! Fourier–Motzkin elimination with certificate tracking.
//!
//! An independent, self-contained decision procedure for mixed strict /
//! non-strict linear systems, used to cross-check the simplex solver on
//! small instances (property tests in `tests/`). Its worst case is doubly
//! exponential, so callers should keep systems small (≲ 12 variables);
//! within that regime it is a trustworthy oracle because each derived row
//! carries its provenance — the non-negative combination of original rows
//! that produced it — so infeasibility immediately yields a Farkas/Carver
//! certificate and feasibility yields a witness by back-substitution.

use abc_rational::Ratio;

use crate::system::{FarkasCertificate, Feasibility, LinearSystem, LpError, Rel, Solution};

/// A working row during elimination: `coeffs · x (rel) rhs`, together with
/// the multipliers over the original rows that derived it.
#[derive(Clone, Debug)]
struct WorkRow {
    coeffs: Vec<Ratio>,
    rel: Rel,
    rhs: Ratio,
    provenance: Vec<Ratio>,
}

/// Decides feasibility of `sys` by Fourier–Motzkin elimination.
///
/// Equality rows are split into a `≤` / `≥` pair before elimination.
/// Returns a witness (with the strict-row gap computed a posteriori) or a
/// verified Farkas/Carver certificate.
///
/// # Errors
///
/// Returns [`LpError::PivotLimit`] if the intermediate row count exceeds an
/// internal safety bound (the system is too large for this method; use
/// [`crate::simplex::solve`]).
pub fn solve(sys: &LinearSystem) -> Result<Feasibility, LpError> {
    const ROW_LIMIT: usize = 200_000;
    let n = sys.num_vars();
    let m = sys.num_rows();
    // Split equalities; track provenance (equality rows contribute with
    // either sign, which the certificate verifier permits).
    let mut rows: Vec<WorkRow> = Vec::new();
    for (i, row) in sys.rows().iter().enumerate() {
        let mut prov = vec![Ratio::zero(); m];
        prov[i] = Ratio::one();
        match row.rel {
            Rel::Lt | Rel::Le => rows.push(WorkRow {
                coeffs: row.coeffs.clone(),
                rel: row.rel,
                rhs: row.rhs.clone(),
                provenance: prov,
            }),
            Rel::Eq => {
                rows.push(WorkRow {
                    coeffs: row.coeffs.clone(),
                    rel: Rel::Le,
                    rhs: row.rhs.clone(),
                    provenance: prov.clone(),
                });
                let mut neg_prov = vec![Ratio::zero(); m];
                neg_prov[i] = -Ratio::one();
                rows.push(WorkRow {
                    coeffs: row.coeffs.iter().map(|c| -c).collect(),
                    rel: Rel::Le,
                    rhs: -&row.rhs,
                    provenance: neg_prov,
                });
            }
        }
    }

    // Stages: remember the rows *with* variable k eliminated last, so we can
    // back-substitute. stage[k] = rows before eliminating variable k.
    let mut stages: Vec<Vec<WorkRow>> = Vec::with_capacity(n);
    for var in (0..n).rev() {
        stages.push(rows.clone());
        let mut next: Vec<WorkRow> = Vec::new();
        let mut pos: Vec<&WorkRow> = Vec::new();
        let mut neg: Vec<&WorkRow> = Vec::new();
        for row in &rows {
            if row.coeffs[var].is_positive() {
                pos.push(row);
            } else if row.coeffs[var].is_negative() {
                neg.push(row);
            } else {
                next.push(row.clone());
            }
        }
        for p in &pos {
            for q in &neg {
                // p: a·x + c_p x_var ≤ b_p (c_p > 0); q: a'·x + c_q x_var ≤ b_q (c_q < 0).
                // Combine with weights 1/c_p and 1/(-c_q) to cancel x_var.
                let wp = p.coeffs[var].recip();
                let wq = (-&q.coeffs[var]).recip();
                let coeffs: Vec<Ratio> = (0..n)
                    .map(|j| &p.coeffs[j] * &wp + &q.coeffs[j] * &wq)
                    .collect();
                debug_assert!(coeffs[var].is_zero());
                let rhs = &p.rhs * &wp + &q.rhs * &wq;
                let rel = if p.rel == Rel::Lt || q.rel == Rel::Lt {
                    Rel::Lt
                } else {
                    Rel::Le
                };
                let provenance: Vec<Ratio> = (0..m)
                    .map(|i| &p.provenance[i] * &wp + &q.provenance[i] * &wq)
                    .collect();
                next.push(WorkRow {
                    coeffs,
                    rel,
                    rhs,
                    provenance,
                });
                if next.len() > ROW_LIMIT {
                    return Err(LpError::PivotLimit);
                }
            }
        }
        rows = next;
    }

    // All variables eliminated: rows are 0 (rel) rhs.
    for row in &rows {
        let contradiction = match row.rel {
            Rel::Lt => !row.rhs.is_positive(),
            Rel::Le => row.rhs.is_negative(),
            Rel::Eq => unreachable!("equalities were split"),
        };
        if contradiction {
            let cert = FarkasCertificate {
                multipliers: row.provenance.clone(),
            };
            debug_assert!(cert.verify(sys), "FM-derived certificate must verify");
            return Ok(Feasibility::Infeasible(cert));
        }
    }

    // Back-substitute a witness. Variable `n-1` was eliminated first, so
    // `stages[n-1-v]` contains rows over variables `0..=v` only; fixing
    // values in increasing variable order keeps every bound fully evaluated.
    let mut values = vec![Ratio::zero(); n];
    for var in 0..n {
        let stage_rows = &stages[n - 1 - var];
        let mut lower: Option<(Ratio, Rel)> = None; // bound, strictness
        let mut upper: Option<(Ratio, Rel)> = None;
        for row in stage_rows {
            let c = &row.coeffs[var];
            if c.is_zero() {
                continue;
            }
            // Evaluate the already-fixed variables (those before `var`).
            let fixed: Ratio = (0..var).map(|j| &row.coeffs[j] * &values[j]).sum();
            let bound = (&row.rhs - &fixed) / c;
            if c.is_positive() {
                // x_var ≤/< bound.
                if upper.as_ref().is_none_or(|(b, s)| {
                    bound < *b || (bound == *b && *s == Rel::Le && row.rel == Rel::Lt)
                }) {
                    upper = Some((bound, row.rel));
                }
            } else {
                // x_var ≥/> bound.
                if lower.as_ref().is_none_or(|(b, s)| {
                    bound > *b || (bound == *b && *s == Rel::Le && row.rel == Rel::Lt)
                }) {
                    lower = Some((bound, row.rel));
                }
            }
        }
        values[var] = match (&lower, &upper) {
            (None, None) => Ratio::zero(),
            (Some((lo, _)), None) => lo + Ratio::one(),
            (None, Some((hi, _))) => hi - Ratio::one(),
            (Some((lo, ls)), Some((hi, hs))) => {
                debug_assert!(lo < hi || (lo == hi && *ls == Rel::Le && *hs == Rel::Le));
                if lo == hi {
                    lo.clone()
                } else {
                    lo.midpoint(hi)
                }
            }
        };
    }

    debug_assert!(
        sys.satisfied_by(&values),
        "FM witness must satisfy the system"
    );
    // Compute the achieved strict gap a posteriori.
    let mut gap: Option<Ratio> = None;
    for (i, row) in sys.rows().iter().enumerate() {
        if row.rel == Rel::Lt {
            let slack = &row.rhs - &sys.eval_row(i, &values);
            gap = Some(match gap {
                None => slack,
                Some(g) => g.min(slack),
            });
        }
    }
    Ok(Feasibility::Feasible(Solution {
        values,
        gap: gap.unwrap_or_else(Ratio::zero),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }

    #[test]
    fn feasible_box() {
        let mut sys = LinearSystem::new(2);
        sys.push_lt(vec![r(1), r(0)], r(2));
        sys.push_lt(vec![r(-1), r(0)], r(-1));
        sys.push_lt(vec![r(0), r(1)], r(5));
        sys.push_lt(vec![r(0), r(-1)], r(4));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert!(sys.satisfied_by(&sol.values));
        assert!(sol.gap.is_positive());
    }

    #[test]
    fn infeasible_chain() {
        // x < y, y < z, z < x: cyclic strict ordering is infeasible.
        let mut sys = LinearSystem::new(3);
        sys.push_lt(vec![r(1), r(-1), r(0)], r(0));
        sys.push_lt(vec![r(0), r(1), r(-1)], r(0));
        sys.push_lt(vec![r(-1), r(0), r(1)], r(0));
        let out = solve(&sys).unwrap();
        let cert = out.certificate().expect("infeasible");
        assert!(cert.verify(&sys));
    }

    #[test]
    fn equality_handling() {
        let mut sys = LinearSystem::new(2);
        sys.push_eq(vec![r(1), r(1)], r(10));
        sys.push_lt(vec![r(1), r(0)], r(3));
        let out = solve(&sys).unwrap();
        let sol = out.solution().expect("feasible");
        assert!(sys.satisfied_by(&sol.values));
        assert_eq!(&sol.values[0] + &sol.values[1], r(10));
    }

    #[test]
    fn tight_nonstrict_equalities_meet() {
        // x <= 1 and x >= 1 forces x = 1 exactly.
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(1)], r(1));
        sys.push_le(vec![r(-1)], r(-1));
        let out = solve(&sys).unwrap();
        assert_eq!(out.solution().unwrap().values[0], r(1));
    }

    #[test]
    fn strict_at_tight_point_is_infeasible() {
        let mut sys = LinearSystem::new(1);
        sys.push_le(vec![r(1)], r(1));
        sys.push_le(vec![r(-1)], r(-1));
        sys.push_lt(vec![r(1)], r(1));
        let out = solve(&sys).unwrap();
        assert!(out.certificate().unwrap().verify(&sys));
    }

    #[test]
    fn unconstrained_variables_default_to_zero() {
        let sys = LinearSystem::new(2);
        let out = solve(&sys).unwrap();
        assert_eq!(out.solution().unwrap().values, vec![r(0), r(0)]);
    }
}
