//! Exact linear programming for the ABC model's Theorem 7.
//!
//! The model-indistinguishability proof of the Asynchronous Bounded-Cycle
//! paper (Robinson & Schmid) hinges on the feasibility of a system of
//! *strict* linear inequalities `Ax < b` built from the cycles of a finite
//! execution graph (the paper's Fig. 6), decided via a variant of Farkas'
//! lemma due to Carver:
//!
//! > `Ax < b` has a solution **iff** every `y ≥ 0`, `y ≠ 0` with `yᵀA = 0`
//! > satisfies `yᵀb > 0`.
//!
//! This crate makes that argument *executable*:
//!
//! * [`LinearSystem`] — mixed systems of `<` / `≤` / `=` rows over free
//!   (sign-unrestricted) rational variables.
//! * [`simplex::solve`] — exact two-phase simplex (Bland's rule, hence
//!   terminating) that either returns a solution with a positive slack
//!   *gap* for the strict rows, or a machine-checkable [`FarkasCertificate`].
//! * [`fourier_motzkin::solve`] — independent doubly-exponential decision
//!   procedure used to cross-check the simplex on small systems.
//! * [`diffcon`] — Bellman–Ford over lexicographic `(Ratio, ε)` weights for
//!   difference-constraint systems (`x_u − x_v < c`), the polynomial
//!   "trigger-path" route to the paper's delay assignment.
//!
//! # Example: a strictly feasible and a Carver-infeasible system
//!
//! ```
//! use abc_lp::{LinearSystem, Feasibility, simplex};
//! use abc_rational::Ratio;
//!
//! // x0 < 2, -x0 < -1  =>  1 < x0 < 2: strictly feasible.
//! let mut sys = LinearSystem::new(1);
//! sys.push_lt(vec![Ratio::from_integer(1)], Ratio::from_integer(2));
//! sys.push_lt(vec![Ratio::from_integer(-1)], Ratio::from_integer(-1));
//! match simplex::solve(&sys).unwrap() {
//!     Feasibility::Feasible(sol) => {
//!         assert!(sys.satisfied_by(&sol.values));
//!     }
//!     Feasibility::Infeasible(_) => panic!("should be feasible"),
//! }
//!
//! // x0 < 1, -x0 < -1  =>  x0 < 1 < x0: infeasible; y = (1,1) certifies.
//! let mut bad = LinearSystem::new(1);
//! bad.push_lt(vec![Ratio::from_integer(1)], Ratio::from_integer(1));
//! bad.push_lt(vec![Ratio::from_integer(-1)], Ratio::from_integer(-1));
//! match simplex::solve(&bad).unwrap() {
//!     Feasibility::Infeasible(cert) => assert!(cert.verify(&bad)),
//!     Feasibility::Feasible(_) => panic!("should be infeasible"),
//! }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod system;

pub mod diffcon;
pub mod fourier_motzkin;
pub mod simplex;

pub use system::{FarkasCertificate, Feasibility, LinearSystem, LpError, Rel, Solution};
