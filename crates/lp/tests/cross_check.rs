//! Property tests: the exact simplex against the independent
//! Fourier–Motzkin oracle on random small systems, plus certificate and
//! witness validity.

use abc_lp::{fourier_motzkin, simplex, LinearSystem, Rel};
use abc_rational::Ratio;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawRow {
    coeffs: Vec<i8>,
    rel: u8,
    rhs: i8,
}

fn system_strategy() -> impl Strategy<Value = LinearSystem> {
    (1usize..4)
        .prop_flat_map(|nvars| {
            proptest::collection::vec(
                (proptest::collection::vec(-3i8..4, nvars), 0u8..3, -5i8..6)
                    .prop_map(|(coeffs, rel, rhs)| RawRow { coeffs, rel, rhs }),
                0..6,
            )
            .prop_map(move |rows| (nvars, rows))
        })
        .prop_map(|(nvars, rows)| {
            let mut sys = LinearSystem::new(nvars);
            for r in rows {
                let coeffs: Vec<Ratio> = r
                    .coeffs
                    .iter()
                    .map(|c| Ratio::from_integer(i64::from(*c)))
                    .collect();
                let rhs = Ratio::from_integer(i64::from(r.rhs));
                let rel = match r.rel {
                    0 => Rel::Lt,
                    1 => Rel::Le,
                    _ => Rel::Eq,
                };
                sys.push(coeffs, rel, rhs);
            }
            sys
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simplex and Fourier–Motzkin agree on feasibility, and their
    /// artifacts (witnesses / certificates) verify.
    #[test]
    fn simplex_agrees_with_fourier_motzkin(sys in system_strategy()) {
        let a = simplex::solve(&sys).unwrap();
        let b = fourier_motzkin::solve(&sys).unwrap();
        prop_assert_eq!(a.is_feasible(), b.is_feasible(), "system: {:?}", sys);
        if let Some(sol) = a.solution() {
            prop_assert!(sys.satisfied_by(&sol.values));
            if sys.has_strict_rows() {
                prop_assert!(sol.gap.is_positive());
            }
        }
        if let Some(cert) = a.certificate() {
            prop_assert!(cert.verify(&sys), "simplex certificate invalid");
        }
        if let Some(sol) = b.solution() {
            prop_assert!(sys.satisfied_by(&sol.values));
        }
        if let Some(cert) = b.certificate() {
            prop_assert!(cert.verify(&sys), "FM certificate invalid");
        }
    }

    /// Adding a satisfied row never flips a feasible system to infeasible;
    /// scaling a row by a positive constant never changes feasibility.
    #[test]
    fn row_scaling_invariance(sys in system_strategy(), scale in 1i64..5) {
        let a = simplex::solve(&sys).unwrap().is_feasible();
        let mut scaled = LinearSystem::new(sys.num_vars());
        for row in sys.rows() {
            let coeffs: Vec<Ratio> =
                row.coeffs.iter().map(|c| c * &Ratio::from_integer(scale)).collect();
            scaled.push(coeffs, row.rel, &row.rhs * &Ratio::from_integer(scale));
        }
        let b = simplex::solve(&scaled).unwrap().is_feasible();
        prop_assert_eq!(a, b);
    }

    /// The difference-constraint solver agrees with the simplex on systems
    /// that happen to be difference-shaped.
    #[test]
    fn diffcon_agrees_with_simplex(
        edges in proptest::collection::vec((0usize..4, 0usize..4, -4i64..5, any::<bool>()), 1..7)
    ) {
        use abc_lp::diffcon::{self, DiffConstraint};
        let n = 4;
        let cs: Vec<DiffConstraint> = edges
            .iter()
            .filter(|(u, v, _, _)| u != v)
            .map(|(u, v, c, strict)| {
                if *strict {
                    DiffConstraint::lt(*u, *v, Ratio::from_integer(*c))
                } else {
                    DiffConstraint::le(*u, *v, Ratio::from_integer(*c))
                }
            })
            .collect();
        prop_assume!(!cs.is_empty());
        let mut sys = LinearSystem::new(n);
        for c in &cs {
            let mut coeffs = vec![Ratio::zero(); n];
            coeffs[c.u] = Ratio::from_integer(1);
            coeffs[c.v] += Ratio::from_integer(-1);
            sys.push(
                coeffs,
                if c.strict { Rel::Lt } else { Rel::Le },
                c.bound.clone(),
            );
        }
        let lp_feasible = simplex::solve(&sys).unwrap().is_feasible();
        match diffcon::solve(n, &cs) {
            Ok(x) => {
                prop_assert!(lp_feasible);
                prop_assert!(cs.iter().all(|c| c.satisfied_by(&x)));
            }
            Err(cycle) => {
                prop_assert!(!lp_feasible);
                prop_assert!(cycle.verify(&cs));
            }
        }
    }
}
