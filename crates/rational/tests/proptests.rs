//! Property tests: `BigInt`/`Ratio` arithmetic against an `i128` oracle and
//! algebraic laws that the exact LP solver in `abc-lp` depends on.

use abc_rational::{BigInt, Ratio};
use proptest::prelude::*;

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    // Explicit case count (rather than the runner default) so CI runtime
    // stays bounded; arithmetic cases are cheap, so this suite can afford
    // the most cases in the workspace.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(big(a) + big(b), big(a + b));
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) - big(b as i128), big(a as i128 - b as i128));
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) * big(b as i128), big(a as i128 * b as i128));
    }

    #[test]
    fn div_rem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = big(a as i128).div_rem(&big(b as i128));
        prop_assert_eq!(q, big(a as i128 / b as i128));
        prop_assert_eq!(r, big(a as i128 % b as i128));
    }

    #[test]
    fn div_rem_invariant_large(a in any::<i128>(), b in any::<i128>().prop_filter("nonzero", |v| *v != 0)) {
        // a = q*b + r with |r| < |b| and sign(r) in {0, sign(a)}.
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(&q * &big(b) + &r, big(a));
        prop_assert!(r.abs() < big(b).abs());
        prop_assert!(r.is_zero() || (r.is_negative() == big(a).is_negative()));
    }

    #[test]
    fn cmp_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn display_parse_round_trip(a in any::<i128>()) {
        let s = big(a).to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), big(a));
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn to_i128_round_trip(a in any::<i128>()) {
        prop_assert_eq!(big(a).to_i128(), Some(a));
    }

    #[test]
    fn gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let g = big(a as i128).gcd(&big(b as i128));
        if a != 0 || b != 0 {
            prop_assert!((big(a as i128) % &g).is_zero());
            prop_assert!((big(b as i128) % &g).is_zero());
            prop_assert!(g.is_positive());
        } else {
            prop_assert!(g.is_zero());
        }
    }

    #[test]
    fn multiplication_associative_large(a in any::<i128>(), b in any::<i128>(), c in any::<i128>()) {
        let (x, y, z) = (big(a), big(b), big(c));
        prop_assert_eq!((&x * &y) * &z, x * (&y * &z));
    }

    #[test]
    fn ratio_field_laws(
        an in -10_000i64..10_000, ad in 1i64..1000,
        bn in -10_000i64..10_000, bd in 1i64..1000,
        cn in -10_000i64..10_000, cd in 1i64..1000,
    ) {
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let c = Ratio::new(cn, cd);
        // Commutativity and associativity.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        // Distributivity.
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        // Additive/multiplicative inverses.
        prop_assert_eq!(&a + (-&a), Ratio::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Ratio::one());
            prop_assert_eq!((&b / &a) * &a, b);
        }
    }

    #[test]
    fn ratio_ordering_matches_f64_when_distinguishable(
        an in -1000i64..1000, ad in 1i64..100,
        bn in -1000i64..1000, bd in 1i64..100,
    ) {
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let (fa, fb) = (an as f64 / ad as f64, bn as f64 / bd as f64);
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ratio_floor_ceil_bracket(an in -100_000i64..100_000, ad in 1i64..1000) {
        let a = Ratio::new(an, ad);
        let fl = Ratio::from(a.floor());
        let ce = Ratio::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Ratio::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn ratio_parse_round_trip(an in any::<i64>(), ad in 1i64..1_000_000) {
        let a = Ratio::new(an, ad);
        prop_assert_eq!(a.to_string().parse::<Ratio>().unwrap(), a);
    }
}
