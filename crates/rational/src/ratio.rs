//! Exact rational numbers built on [`BigInt`].
//!
//! A [`Ratio`] is always kept in canonical form: the denominator is strictly
//! positive and `gcd(|numerator|, denominator) == 1`; zero is `0/1`. This
//! makes `Eq`/`Hash` structural and `Ord` a genuine total order, so ratios
//! can key `BTreeMap`s (used by the simplex solver's pivot bookkeeping).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, ParseBigIntError, Sign};

/// An exact rational number `numerator / denominator` in lowest terms.
///
/// # Example
///
/// ```
/// use abc_rational::Ratio;
///
/// let xi = Ratio::new(3, 2);
/// let sum = &xi + &Ratio::new(1, 6);
/// assert_eq!(sum, Ratio::new(5, 3));
/// assert_eq!(sum.to_string(), "5/3");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt, // invariant: den > 0, gcd(|num|, den) == 1
}

/// Error returned when parsing a [`Ratio`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRatioError {
    kind: RatioErrorKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum RatioErrorKind {
    Int(ParseBigIntError),
    ZeroDenominator,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            RatioErrorKind::Int(e) => write!(f, "invalid rational literal: {e}"),
            RatioErrorKind::ZeroDenominator => write!(f, "rational literal has zero denominator"),
        }
    }
}

impl std::error::Error for ParseRatioError {}

impl Ratio {
    /// Creates the rational `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use abc_rational::Ratio;
    /// assert_eq!(Ratio::new(4, -6), Ratio::new(-2, 3));
    /// ```
    #[must_use]
    pub fn new(num: i64, den: i64) -> Ratio {
        Ratio::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates the rational `num / den` from big integers, normalizing signs
    /// and reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn from_bigints(num: BigInt, den: BigInt) -> Ratio {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (mut num, mut den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Ratio {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = &num / &g;
            den = &den / &g;
        }
        Ratio { num, den }
    }

    /// The rational zero.
    #[must_use]
    pub fn zero() -> Ratio {
        Ratio {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    #[must_use]
    pub fn one() -> Ratio {
        Ratio {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub fn from_integer(v: i64) -> Ratio {
        Ratio {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Numerator (negative iff the rational is negative).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff this rational is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff this rational is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff this rational is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff this rational is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` iff this rational equals one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Sign of the rational.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// `self` is already in lowest terms, so the inverse is too: only the
    /// sign moves to the numerator — no re-reduction (gcd) is needed.
    ///
    /// # Panics
    ///
    /// Panics if this rational is zero.
    #[must_use]
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            Ratio {
                num: -&self.den,
                den: -&self.num,
            }
        } else {
            Ratio {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Approximate `f64` value (reporting only; never used for decisions).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// The floor of the rational as a big integer.
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// The ceiling of the rational as a big integer.
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Midpoint of `self` and `other`, used by binary searches over ratios.
    #[must_use]
    pub fn midpoint(&self, other: &Ratio) -> Ratio {
        (self + other) / Ratio::from_integer(2)
    }

    /// Exact minimum by value.
    #[must_use]
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Exact maximum by value.
    #[must_use]
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::zero()
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }
}

impl From<BigInt> for Ratio {
    fn from(v: BigInt) -> Ratio {
        Ratio {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0 by invariant)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Add<&Ratio> for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub<&Ratio> for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul<&Ratio> for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        Ratio::from_bigints(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div<&Ratio> for &Ratio {
    type Output = Ratio;
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero rational");
        Ratio::from_bigints(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait<Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                self.$method(&rhs)
            }
        }
        impl $assign_trait<Ratio> for Ratio {
            fn $assign_method(&mut self, rhs: Ratio) {
                *self = (&*self).$method(&rhs);
            }
        }
        impl $assign_trait<&Ratio> for Ratio {
            fn $assign_method(&mut self, rhs: &Ratio) {
                *self = (&*self).$method(rhs);
            }
        }
    };
}

forward_ratio_binop!(Add, add, AddAssign, add_assign);
forward_ratio_binop!(Sub, sub, SubAssign, sub_assign);
forward_ratio_binop!(Mul, mul, MulAssign, mul_assign);
forward_ratio_binop!(Div, div, DivAssign, div_assign);

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, v| acc + v)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, v| acc + v)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"p"` or `"p/q"` decimal literals.
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let wrap = |e: ParseBigIntError| ParseRatioError {
            kind: RatioErrorKind::Int(e),
        };
        match s.split_once('/') {
            None => Ok(Ratio::from(s.trim().parse::<BigInt>().map_err(wrap)?)),
            Some((p, q)) => {
                let num = p.trim().parse::<BigInt>().map_err(wrap)?;
                let den = q.trim().parse::<BigInt>().map_err(wrap)?;
                if den.is_zero() {
                    return Err(ParseRatioError {
                        kind: RatioErrorKind::ZeroDenominator,
                    });
                }
                Ok(Ratio::from_bigints(num, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(4, 6), Ratio::new(2, 3));
        assert_eq!(Ratio::new(-4, 6), Ratio::new(2, -3));
        assert_eq!(Ratio::new(0, 5), Ratio::zero());
        assert!(Ratio::new(1, -2).is_negative());
        assert!(Ratio::new(-1, -2).is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn field_laws_spot_checks() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(&a + &b, Ratio::new(1, 2));
        assert_eq!(&a - &b, Ratio::new(1, 6));
        assert_eq!(&a * &b, Ratio::new(1, 18));
        assert_eq!(&a / &b, Ratio::from_integer(2));
        assert_eq!(a.recip(), Ratio::from_integer(3));
    }

    #[test]
    fn recip_stays_canonical() {
        // recip skips re-reduction; the invariant must still hold.
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
        assert_eq!(Ratio::new(-2, 3).recip(), Ratio::new(-3, 2));
        assert_eq!(Ratio::new(-2, 3).recip().denom(), &BigInt::from(2));
        assert!(Ratio::new(-2, 3).recip().denom().is_positive());
        assert_eq!(Ratio::from_integer(5).recip(), Ratio::new(1, 5));
        assert_eq!((-Ratio::new(7, 4)).recip(), Ratio::new(-4, 7));
    }

    #[test]
    fn neg_by_reference() {
        let a = Ratio::new(3, 7);
        assert_eq!(-&a, Ratio::new(-3, 7));
        assert_eq!(-&(-&a), a);
        assert_eq!(-&Ratio::zero(), Ratio::zero());
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(2, 4) == Ratio::new(1, 2));
        assert!(Ratio::new(7, 2) > Ratio::from_integer(3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), BigInt::from(3));
        assert_eq!(Ratio::new(7, 2).ceil(), BigInt::from(4));
        assert_eq!(Ratio::new(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(Ratio::new(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(Ratio::from_integer(5).floor(), BigInt::from(5));
        assert_eq!(Ratio::from_integer(5).ceil(), BigInt::from(5));
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["3/2", "-5/7", "42", "0", "-1"] {
            let r: Ratio = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!(" 6 / 4 ".parse::<Ratio>().unwrap(), Ratio::new(3, 2));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/2".parse::<Ratio>().is_err());
    }

    #[test]
    fn midpoint_bisects() {
        let lo = Ratio::new(1, 1);
        let hi = Ratio::new(2, 1);
        assert_eq!(lo.midpoint(&hi), Ratio::new(3, 2));
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![Ratio::new(1, 2), Ratio::new(1, 3), Ratio::new(1, 6)];
        assert_eq!(parts.iter().sum::<Ratio>(), Ratio::one());
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Ratio::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((Ratio::new(-7, 2).to_f64() + 3.5).abs() < 1e-12);
    }
}
