//! Arbitrary-precision signed integers.
//!
//! Representation: a [`Sign`] plus a little-endian vector of `u32` limbs with
//! no trailing zero limbs. Zero is represented as `Sign::Zero` with an empty
//! limb vector, which makes equality and hashing structural.
//!
//! The implementation favours clarity and verifiability over peak throughput:
//! schoolbook multiplication and binary long division are ample for the
//! coefficient growth seen in the exact simplex solver of `abc-lp` (hundreds
//! of bits), and every primitive is exercised against an `i128` oracle by
//! property tests.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// Flips `Plus` to `Minus` and vice versa; `Zero` is unchanged.
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// # Example
///
/// ```
/// use abc_rational::BigInt;
///
/// let a = BigInt::from(1_000_000_007_u64);
/// let b = &a * &a;
/// assert_eq!(b % &a, BigInt::from(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian base-2^32 magnitude; empty iff `sign == Sign::Zero`;
    /// the most significant limb is never zero.
    limbs: Vec<u32>,
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl std::error::Error for ParseBigIntError {}

// ---------------------------------------------------------------------------
// Magnitude (unsigned limb-vector) primitives.
// ---------------------------------------------------------------------------

fn mag_trim(limbs: &mut Vec<u32>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let mut sum = u64::from(long[i]) + carry;
        if i < short.len() {
            sum += u64::from(short[i]);
        }
        out.push(sum as u32);
        carry = sum >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Computes `a - b`; requires `a >= b` (checked by callers via [`mag_cmp`]).
fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let mut diff = i64::from(a[i]) - borrow;
        if i < b.len() {
            diff -= i64::from(b[i]);
        }
        if diff < 0 {
            diff += 1 << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(diff as u32);
    }
    debug_assert_eq!(borrow, 0);
    mag_trim(&mut out);
    out
}

fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let cur = u64::from(out[i + j]) + u64::from(ai) * u64::from(bj) + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = u64::from(out[k]) + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_shl1(limbs: &mut Vec<u32>) {
    let mut carry = 0u32;
    for limb in limbs.iter_mut() {
        let new_carry = *limb >> 31;
        *limb = (*limb << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        limbs.push(carry);
    }
}

fn mag_bit(limbs: &[u32], bit: usize) -> bool {
    let limb = bit / 32;
    let off = bit % 32;
    limb < limbs.len() && (limbs[limb] >> off) & 1 == 1
}

fn mag_bits(limbs: &[u32]) -> usize {
    match limbs.last() {
        None => 0,
        Some(&top) => (limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
    }
}

fn mag_set_bit(limbs: &mut Vec<u32>, bit: usize) {
    let limb = bit / 32;
    while limbs.len() <= limb {
        limbs.push(0);
    }
    limbs[limb] |= 1 << (bit % 32);
}

/// Division with remainder on magnitudes: returns `(quotient, remainder)`.
///
/// Uses binary long division: O(bits(a) * len(b)). Panics if `b` is zero.
fn mag_div_rem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    // Fast path: single-limb divisor.
    if b.len() == 1 {
        let d = u64::from(b[0]);
        let mut quot = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | u64::from(a[i]);
            quot[i] = (cur / d) as u32;
            rem = cur % d;
        }
        mag_trim(&mut quot);
        let mut r = Vec::new();
        if rem != 0 {
            r.push(rem as u32);
        }
        return (quot, r);
    }
    let bits = mag_bits(a);
    let mut quot: Vec<u32> = Vec::new();
    let mut rem: Vec<u32> = Vec::new();
    for bit in (0..bits).rev() {
        mag_shl1(&mut rem);
        if mag_bit(a, bit) {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if mag_cmp(&rem, b) != Ordering::Less {
            rem = mag_sub(&rem, b);
            mag_set_bit(&mut quot, bit);
        }
    }
    mag_trim(&mut quot);
    (quot, rem)
}

// ---------------------------------------------------------------------------
// Constructors and conversions.
// ---------------------------------------------------------------------------

impl BigInt {
    /// The additive identity.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt::from(1u32)
    }

    fn from_mag(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        mag_trim(&mut limbs);
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, limbs }
        }
    }

    /// Returns the sign of this integer.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns `true` iff this integer is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff this integer is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Returns `true` iff this integer is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` iff this integer equals one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs == [1]
    }

    /// Returns the absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Minus => BigInt {
                sign: Sign::Plus,
                limbs: self.limbs.clone(),
            },
            _ => self.clone(),
        }
    }

    /// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
    ///
    /// # Example
    ///
    /// ```
    /// use abc_rational::BigInt;
    /// assert_eq!(BigInt::from(-12).gcd(&BigInt::from(18)), BigInt::from(6));
    /// ```
    #[must_use]
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.limbs.clone();
        let mut b = other.limbs.clone();
        while !b.is_empty() {
            let (_, r) = mag_div_rem(&a, &b);
            a = b;
            b = r;
        }
        BigInt::from_mag(if a.is_empty() { Sign::Zero } else { Sign::Plus }, a)
    }

    /// Simultaneous quotient and remainder (truncated division, like `/` and
    /// `%` on Rust primitives: remainder takes the sign of the dividend).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q_mag, r_mag) = mag_div_rem(&self.limbs, &other.limbs);
        let q_sign = if q_mag.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        let r_sign = if r_mag.is_empty() {
            Sign::Zero
        } else {
            self.sign
        };
        (
            BigInt::from_mag(q_sign, q_mag),
            BigInt::from_mag(r_sign, r_mag),
        )
    }

    /// Converts to `i128`, returning `None` on overflow.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut mag: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate() {
            mag |= u128::from(limb) << (32 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => (mag <= i128::MAX as u128).then_some(mag as i128),
            Sign::Minus => {
                if mag <= i128::MAX as u128 {
                    Some(-(mag as i128))
                } else if mag == (i128::MAX as u128) + 1 {
                    Some(i128::MIN)
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `i64`, returning `None` on overflow.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        self.to_i128().and_then(|v| i64::try_from(v).ok())
    }

    /// Approximate conversion to `f64` (may lose precision or overflow to
    /// infinity; intended for reporting only, never for decisions).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let mut mag = 0f64;
        for &limb in self.limbs.iter().rev() {
            mag = mag * 4294967296.0 + f64::from(limb);
        }
        match self.sign {
            Sign::Minus => -mag,
            _ => mag,
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        mag_bits(&self.limbs)
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                #[allow(clippy::cast_lossless)]
                let mut v = v as u128;
                let mut limbs = Vec::new();
                while v != 0 {
                    limbs.push(v as u32);
                    v >>= 32;
                }
                BigInt::from_mag(if limbs.is_empty() { Sign::Zero } else { Sign::Plus }, limbs)
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let neg = v < 0;
                let mag = (v as i128).unsigned_abs();
                let mut limbs = Vec::new();
                let mut m = mag;
                while m != 0 {
                    limbs.push(m as u32);
                    m >>= 32;
                }
                let sign = if limbs.is_empty() {
                    Sign::Zero
                } else if neg {
                    Sign::Minus
                } else {
                    Sign::Plus
                };
                BigInt::from_mag(sign, limbs)
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);
impl_from_signed!(i8, i16, i32, i64, i128, isize);

// ---------------------------------------------------------------------------
// Ordering.
// ---------------------------------------------------------------------------

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            other => return other,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Plus => mag_cmp(&self.limbs, &other.limbs),
            Sign::Minus => mag_cmp(&other.limbs, &self.limbs),
        }
    }
}

// ---------------------------------------------------------------------------
// Arithmetic.
// ---------------------------------------------------------------------------

/// `a + b` with `b`'s sign taken as `b_sign` — the shared body of `Add` and
/// `Sub`, so subtraction never clones its right-hand side just to flip it.
fn add_with_sign(a: &BigInt, b: &BigInt, b_sign: Sign) -> BigInt {
    match (a.sign, b_sign) {
        (Sign::Zero, _) => BigInt {
            sign: b_sign,
            limbs: b.limbs.clone(),
        },
        (_, Sign::Zero) => a.clone(),
        (sa, sb) if sa == sb => BigInt::from_mag(sa, mag_add(&a.limbs, &b.limbs)),
        (sa, _) => match mag_cmp(&a.limbs, &b.limbs) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_mag(sa, mag_sub(&a.limbs, &b.limbs)),
            Ordering::Less => BigInt::from_mag(sa.negate(), mag_sub(&b.limbs, &a.limbs)),
        },
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.negate(),
            limbs: self.limbs.clone(),
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        add_with_sign(self, rhs, rhs.sign)
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        add_with_sign(self, rhs, rhs.sign.negate())
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_mag(sign, mag_mul(&self.limbs, &rhs.limbs))
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

/// Forwards the owned/mixed operator impls to the by-reference ones.
macro_rules! forward_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
        impl $assign_trait<BigInt> for BigInt {
            fn $assign_method(&mut self, rhs: BigInt) {
                *self = (&*self).$method(&rhs);
            }
        }
        impl $assign_trait<&BigInt> for BigInt {
            fn $assign_method(&mut self, rhs: &BigInt) {
                *self = (&*self).$method(rhs);
            }
        }
    };
}

forward_binop!(Add, add, AddAssign, add_assign);
forward_binop!(Sub, sub, SubAssign, sub_assign);
forward_binop!(Mul, mul, MulAssign, mul_assign);
forward_binop!(Div, div, DivAssign, div_assign);
forward_binop!(Rem, rem, RemAssign, rem_assign);

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, v| acc + v)
    }
}

impl<'a> Sum<&'a BigInt> for BigInt {
    fn sum<I: Iterator<Item = &'a BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, v| acc + v)
    }
}

impl Product for BigInt {
    fn product<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::one(), |acc, v| acc * v)
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing.
// ---------------------------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide the magnitude by 10^9 to produce decimal chunks.
        let mut mag = self.limbs.clone();
        let chunk_div = [1_000_000_000u32];
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = mag_div_rem(&mag, &chunk_div);
            chunks.push(r.first().copied().unwrap_or(0));
            mag = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        f.pad_integral(self.sign != Sign::Minus, "", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10u32);
        for c in digits.chars() {
            let d = c.to_digit(10).ok_or(ParseBigIntError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc * &ten + BigInt::from(d);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_identities() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(BigInt::zero(), BigInt::default());
        assert_eq!(b(5) + BigInt::zero(), b(5));
        assert_eq!(b(5) * BigInt::zero(), BigInt::zero());
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(-2) * b(3), b(-6));
        assert_eq!(b(7) / b(2), b(3));
        assert_eq!(b(7) % b(2), b(1));
        assert_eq!(b(-7) / b(2), b(-3));
        assert_eq!(b(-7) % b(2), b(-1));
        assert_eq!(b(7) / b(-2), b(-3));
        assert_eq!(b(7) % b(-2), b(1));
    }

    #[test]
    fn mixed_sign_addition_cancels() {
        assert_eq!(b(100) + b(-100), BigInt::zero());
        assert_eq!(b(-100) + b(40), b(-60));
        assert_eq!(b(40) + b(-100), b(-60));
    }

    #[test]
    fn subtraction_zero_cases() {
        // The clone-free Sub path flips only the effective sign.
        assert_eq!(BigInt::zero() - b(5), b(-5));
        assert_eq!(BigInt::zero() - b(-5), b(5));
        assert_eq!(b(5) - BigInt::zero(), b(5));
        assert_eq!(BigInt::zero() - BigInt::zero(), BigInt::zero());
        assert_eq!(b(5) - b(-3), b(8));
        assert_eq!(b(-5) - b(3), b(-8));
        assert_eq!(b(-5) - b(-5), BigInt::zero());
    }

    #[test]
    fn large_multiplication_round_trips_via_division() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let c: BigInt = "987654321098765432109876543210987654321".parse().unwrap();
        let prod = &a * &c;
        assert_eq!(&prod / &a, c);
        assert_eq!(&prod % &a, BigInt::zero());
        assert_eq!((&prod + BigInt::one()) % &a, BigInt::one());
    }

    #[test]
    fn display_multi_chunk() {
        let a: BigInt = "1000000000000000000000".parse().unwrap();
        assert_eq!(a.to_string(), "1000000000000000000000");
        let m: BigInt = "-1000000001".parse().unwrap();
        assert_eq!(m.to_string(), "-1000000001");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x3".parse::<BigInt>().is_err());
        assert_eq!("+42".parse::<BigInt>().unwrap(), b(42));
        assert_eq!("-0".parse::<BigInt>().unwrap(), BigInt::zero());
    }

    #[test]
    fn ordering_crosses_signs_and_lengths() {
        assert!(b(-1) < BigInt::zero());
        assert!(BigInt::zero() < b(1));
        assert!(b(i128::from(u64::MAX)) > b(1));
        assert!(b(-i128::from(u64::MAX)) < b(-1));
        let big: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        assert!(big > b(i128::MAX));
        assert_eq!(big.to_i128(), None);
    }

    #[test]
    fn gcd_matches_euclid() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(0).gcd(&b(0)), BigInt::zero());
        assert_eq!(b(17).gcd(&b(13)), b(1));
    }

    #[test]
    fn to_i128_boundaries() {
        assert_eq!(b(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(b(i128::MIN).to_i128(), Some(i128::MIN));
        assert_eq!((b(i128::MAX) + BigInt::one()).to_i128(), None);
        assert_eq!((b(i128::MIN) - BigInt::one()).to_i128(), None);
        assert_eq!(b(0).to_i128(), Some(0));
    }

    #[test]
    fn bits_counts_magnitude() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(b(256).bits(), 9);
        assert_eq!(b(-256).bits(), 9);
        assert_eq!((b(1) << 100).bits(), 101);
    }

    impl std::ops::Shl<usize> for BigInt {
        type Output = BigInt;
        fn shl(self, rhs: usize) -> BigInt {
            let mut out = self;
            for _ in 0..rhs {
                out = &out + &out.clone();
            }
            out
        }
    }

    #[test]
    fn division_binary_long_path() {
        // Multi-limb divisor exercises the binary long-division path.
        let a: BigInt = "987654321987654321987654321987654321".parse().unwrap();
        let d: BigInt = "12345678901234567890".parse().unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r >= BigInt::zero() && r < d);
    }

    #[test]
    fn sum_and_product_impls() {
        let v = vec![b(1), b(2), b(3), b(4)];
        assert_eq!(v.iter().sum::<BigInt>(), b(10));
        assert_eq!(v.into_iter().product::<BigInt>(), b(24));
    }
}
