//! Exact arithmetic for the ABC-model reproduction.
//!
//! The Asynchronous Bounded-Cycle model (Robinson & Schmid, PODC/SSS 2008,
//! TCS 2011) proves its central model-indistinguishability result
//! (Theorem 7/12) by exhibiting a solution to a system of *strict* linear
//! inequalities `Ax < b` whose coefficients are built from the rational model
//! parameter `Ξ > 1`. Deciding feasibility of that system — and verifying
//! Farkas infeasibility certificates when the ABC synchrony condition is
//! violated — must be done in exact arithmetic: floating point could both
//! forge counterexamples to a theorem and "prove" assignments that do not
//! exist.
//!
//! This crate provides the two number types the rest of the workspace builds
//! on:
//!
//! * [`BigInt`] — an arbitrary-precision signed integer (sign + little-endian
//!   `u32` limbs). Simplex pivoting grows coefficients quickly; fixed-width
//!   integers overflow on execution graphs of even moderate size.
//! * [`Ratio`] — an always-normalized exact rational built on [`BigInt`].
//!
//! Both types implement the full complement of arithmetic operators (owned
//! and by-reference), total ordering, hashing, and decimal parsing/printing.
//!
//! # Example
//!
//! ```
//! use abc_rational::{BigInt, Ratio};
//!
//! let xi = Ratio::new(3, 2); // Ξ = 3/2
//! let ratio = Ratio::new(4, 3); // a relevant cycle with |Z−|=4, |Z+|=3
//! assert!(ratio < xi, "cycle satisfies the ABC synchrony condition");
//!
//! let big = BigInt::from(u64::MAX) * BigInt::from(u64::MAX);
//! assert_eq!(big.to_string(), "340282366920938463426481119284349108225");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod ratio;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use ratio::{ParseRatioError, Ratio};
