//! VLSI Systems-on-Chip substrate (Section 5.3 of the paper).
//!
//! The paper argues the ABC model is a natural fit for fault-tolerant
//! clock generation in deep sub-micron VLSI (the DARTS line of work): link
//! delays depend on implementation technology and place-and-route, so
//! compiling *time values* into an algorithm is fragile, while the ABC
//! condition constrains only (1) cumulative path delays and (2) timing
//! *ratios* — both of which survive technology migration, because
//! migrating a design (say FPGA → ASIC) scales minimum and maximum path
//! delays by roughly the same factor.
//!
//! This crate models an `w × h` grid of clock-generation nodes whose
//! pairwise link delays follow place-and-route distance plus jitter, runs
//! the Algorithm 1 tick generation on it, and measures the `Ξ` margin:
//! `Ξ / max_relevant_cycle_ratio` of the produced execution. The
//! migration experiment re-runs the same netlist under a scaled
//! technology profile and shows the margin is preserved — the §5.3 claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abc_clocksync::{instrument, TickGen};
use abc_core::{check, ProcessId, Xi};
use abc_rational::Ratio;
use abc_sim::delay::PerLinkBand;
use abc_sim::{RunLimits, Simulation};

/// A technology profile: a delay scale (numerator/denominator, applied to
/// the base per-unit-distance delay) and a jitter fraction in percent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TechProfile {
    /// Human-readable name ("FPGA", "ASIC", ...).
    pub name: &'static str,
    /// Delay scale numerator.
    pub scale_num: u64,
    /// Delay scale denominator.
    pub scale_den: u64,
    /// Link jitter in percent of the nominal delay (min = nominal,
    /// max = nominal·(100+jitter)/100).
    pub jitter_pct: u64,
}

/// A generic FPGA profile: slow wires, moderate jitter.
pub const FPGA: TechProfile = TechProfile {
    name: "FPGA",
    scale_num: 10,
    scale_den: 1,
    jitter_pct: 30,
};

/// A migrated high-speed ASIC profile: ~3.3× faster, same relative jitter.
pub const ASIC: TechProfile = TechProfile {
    name: "ASIC",
    scale_num: 3,
    scale_den: 1,
    jitter_pct: 30,
};

/// An `w × h` grid System-on-Chip running distributed clock generation.
#[derive(Clone, Debug)]
pub struct SoC {
    width: usize,
    height: usize,
    profile: TechProfile,
}

/// Measurements from one clock-generation run.
#[derive(Clone, Debug)]
pub struct SoCRun {
    /// The minimum clock value reached by any node (progress).
    pub min_clock: u64,
    /// The maximum clock spread observed (precision).
    pub spread: u64,
    /// The maximum relevant-cycle ratio of the execution.
    pub max_cycle_ratio: Option<Ratio>,
    /// The margin `Ξ / max_cycle_ratio` (`None` when the trace is
    /// cycle-free).
    pub xi_margin: Option<Ratio>,
}

impl SoC {
    /// A `width × height` grid under the given technology profile.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than 4 or more than 128 nodes.
    #[must_use]
    pub fn new(width: usize, height: usize, profile: TechProfile) -> SoC {
        let n = width * height;
        assert!((4..=128).contains(&n), "grid size out of range");
        SoC {
            width,
            height,
            profile,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Manhattan distance between two nodes of the grid.
    fn distance(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = (a % self.width, a / self.width);
        let (bx, by) = (b % self.width, b / self.width);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The place-and-route delay model: nominal link delay =
    /// `scale · (1 + distance)`, jittered upward by `jitter_pct`.
    #[must_use]
    pub fn delay_model(&self, seed: u64) -> PerLinkBand {
        let n = self.nodes();
        // Base band covers self-messages (distance 0).
        let base = self.profile.scale_num.max(1) / self.profile.scale_den.max(1);
        let mut model = PerLinkBand::new(
            base.max(1),
            (base.max(1)) * (100 + self.profile.jitter_pct) / 100 + 1,
            seed,
        );
        for a in 0..n {
            for bn in 0..n {
                if a == bn {
                    continue;
                }
                let d = 1 + self.distance(a, bn);
                let nominal = d * self.profile.scale_num / self.profile.scale_den;
                let nominal = nominal.max(1);
                let hi = (nominal * (100 + self.profile.jitter_pct)).div_ceil(100);
                model.set_link(ProcessId(a), ProcessId(bn), nominal, hi.max(nominal));
            }
        }
        model
    }

    /// The worst-case link delay ratio of the fabric (diagonal × jitter
    /// over unit link): a safe `Ξ` must exceed this.
    #[must_use]
    pub fn worst_link_ratio(&self) -> Ratio {
        let max_d = 1 + (self.width - 1 + self.height - 1) as u64;
        let min_nominal = self.profile.scale_num / self.profile.scale_den;
        let max_hi = max_d * self.profile.scale_num * (100 + self.profile.jitter_pct)
            / (self.profile.scale_den * 100)
            + 1;
        Ratio::new(
            i64::try_from(max_hi).expect("fits"),
            i64::try_from(min_nominal.max(1)).expect("fits"),
        )
    }

    /// Runs Algorithm 1 tick generation on the fabric and measures
    /// progress, precision, and the `Ξ` margin.
    #[must_use]
    pub fn run_clock_generation(&self, xi: &Xi, seed: u64, max_events: usize) -> SoCRun {
        let n = self.nodes();
        let f = (n - 1) / 3;
        let mut sim = Simulation::new(self.delay_model(seed));
        for _ in 0..n {
            sim.add_process(TickGen::new(n, f));
        }
        sim.run(RunLimits {
            max_events,
            max_time: u64::MAX,
        });
        let trace = sim.trace();
        let g = trace.to_execution_graph();
        let ratio = check::max_relevant_cycle_ratio(&g)
            .expect("SoC executions fit the exact-ratio bisection");
        let margin = ratio.as_ref().map(|r| xi.as_ratio() / r);
        SoCRun {
            min_clock: instrument::min_final_clock(trace).unwrap_or(0),
            spread: instrument::max_clock_spread(trace).unwrap_or(0),
            max_cycle_ratio: ratio,
            xi_margin: margin,
        }
    }

    /// Migrates the design to another technology profile (same netlist,
    /// scaled delays).
    #[must_use]
    pub fn migrate(&self, profile: TechProfile) -> SoC {
        SoC {
            width: self.width,
            height: self.height,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_distances() {
        let soc = SoC::new(3, 2, FPGA);
        assert_eq!(soc.distance(0, 0), 0);
        assert_eq!(soc.distance(0, 2), 2);
        assert_eq!(soc.distance(0, 5), 3); // (0,0) -> (2,1)
    }

    #[test]
    fn clock_generation_runs_and_keeps_margin() {
        let soc = SoC::new(2, 2, FPGA);
        // Worst link ratio for 2x2 FPGA: max dist 2+1=3 scaled ~ 39/10.
        let xi = Xi::from_integer(5);
        let run = soc.run_clock_generation(&xi, 7, 1_200);
        assert!(run.min_clock > 5, "fabric clock progressed: {run:?}");
        if let Some(margin) = &run.xi_margin {
            assert!(margin > &Ratio::one(), "Xi margin positive: {run:?}");
        }
        // Precision within 2 Xi.
        assert!(Ratio::from_integer(run.spread as i64) <= Ratio::from_integer(2) * xi.as_ratio());
    }

    #[test]
    fn migration_preserves_xi_margin() {
        let fpga = SoC::new(2, 2, FPGA);
        let asic = fpga.migrate(ASIC);
        let xi = Xi::from_integer(5);
        let run_fpga = fpga.run_clock_generation(&xi, 11, 1_200);
        let run_asic = asic.run_clock_generation(&xi, 11, 1_200);
        // Both technologies keep the execution admissible for the same Xi
        // (margins above 1): the §5.3 migration claim.
        let mf = run_fpga
            .xi_margin
            .clone()
            .unwrap_or_else(|| Ratio::from_integer(i64::MAX));
        let ma = run_asic
            .xi_margin
            .clone()
            .unwrap_or_else(|| Ratio::from_integer(i64::MAX));
        assert!(mf > Ratio::one(), "FPGA margin: {run_fpga:?}");
        assert!(ma > Ratio::one(), "ASIC margin: {run_asic:?}");
        // And both make progress with bounded spread.
        assert!(run_fpga.min_clock > 5 && run_asic.min_clock > 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tiny_grid_rejected() {
        let _ = SoC::new(1, 2, FPGA);
    }
}
