//! Weaker variants of the ABC model (Section 6 of the paper).
//!
//! The paper defines four variants in analogy to Dwork–Lynch–Stockmeyer:
//!
//! | Variant | `Ξ` known? | Holds from? | Here |
//! |---|---|---|---|
//! | ABC | yes | always | `abc-core`, `abc-clocksync` |
//! | ?ABC | **no** | always | [`XiEstimator`] (adaptive estimation) |
//! | ◇ABC | yes | eventually (after `C_GST`) | [`EventuallyBanded`] delays + post-GST analysis |
//! | ?◇ABC | no | eventually | [`DoublingLockStep`] (round doubling) |
//!
//! * [`XiEstimator`] implements the refinement the paper sketches: run the
//!   Fig. 3 detector with an estimate `Ξ̂`; when a message from a suspected
//!   process arrives after all, the estimate was too small — double it and
//!   rehabilitate. In a run whose true ratio bound is `Ξ*`, estimates
//!   converge (no revision can happen once `Ξ̂ ≥ Ξ*`), and from then on
//!   suspicions are sound.
//! * [`DoublingLockStep`] simulates *eventual* lock-step rounds: round `r`
//!   lasts `X₀·2^r` phases, so once `2^r·X₀ ≥ 2Ξ_true` (which eventually
//!   happens for any unknown, eventually-holding `Ξ`), every later round
//!   is lock-step — the ?◇ABC strategy of Widder & Schmid that the paper
//!   imports.
//! * [`restrict_to_core`] realizes the paper's restricted execution graphs
//!   (the WTL-flavored weakening): only messages among a designated core
//!   are subject to the synchrony condition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use abc_core::graph::ExecutionGraph;
use abc_core::{ProcessId, Xi};
use abc_sim::delay::{DelayModel, Delivery};
use abc_sim::{Context, Process};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// ?ABC: adaptive Xi estimation.
// ---------------------------------------------------------------------------

/// Messages of the adaptive detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdMsg {
    /// Probe query.
    Query(u64),
    /// Reply to a probe.
    Reply(u64),
    /// Chain ping `(probe, hop)`.
    Ping(u64, u64),
    /// Chain pong `(probe, hop)`.
    Pong(u64, u64),
}

/// The ?ABC detector: like the Fig. 3 detector but with an adaptive
/// estimate `Ξ̂` that doubles whenever a "late" reply disproves it.
#[derive(Clone, Debug)]
pub struct XiEstimator {
    n: usize,
    /// Current chain threshold = `⌈2·Ξ̂⌉`.
    threshold: u64,
    probe: u64,
    hop: u64,
    replied: u128,
    suspected: u128,
    /// Number of upward revisions of the estimate.
    pub revisions: u64,
}

impl XiEstimator {
    /// Starts with the (probably too small) estimate `Ξ̂ = initial`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[must_use]
    pub fn new(n: usize, initial: &Xi) -> XiEstimator {
        assert!(n <= 128);
        XiEstimator {
            n,
            threshold: initial.two_xi_ceil().max(2),
            probe: 0,
            hop: 0,
            replied: 0,
            suspected: 0,
            revisions: 0,
        }
    }

    /// The current estimate expressed as the chain threshold `⌈2Ξ̂⌉`.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether `p` is currently suspected.
    #[must_use]
    pub fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected & (1 << p.0) != 0
    }

    /// Number of currently suspected processes.
    #[must_use]
    pub fn suspected_count(&self) -> usize {
        self.suspected.count_ones() as usize
    }

    fn start_probe(&mut self, ctx: &mut Context<'_, AdMsg>) {
        self.replied = 1 << ctx.me().0;
        self.hop = 0;
        ctx.broadcast(AdMsg::Query(self.probe));
        ctx.broadcast(AdMsg::Ping(self.probe, 0));
    }
}

impl Process<AdMsg> for XiEstimator {
    fn on_init(&mut self, ctx: &mut Context<'_, AdMsg>) {
        self.start_probe(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AdMsg>, from: ProcessId, msg: &AdMsg) {
        match *msg {
            AdMsg::Query(p) => ctx.send(from, AdMsg::Reply(p)),
            AdMsg::Ping(p, h) => ctx.send(from, AdMsg::Pong(p, h)),
            AdMsg::Reply(p) => {
                if p == self.probe {
                    self.replied |= 1 << from.0;
                }
                if self.suspected & (1 << from.0) != 0 {
                    // A suspected process answered: our estimate was too
                    // small. Double it (threshold ~ 2Ξ̂) and rehabilitate.
                    self.suspected &= !(1 << from.0);
                    self.threshold = self.threshold.saturating_mul(2);
                    self.revisions += 1;
                }
            }
            AdMsg::Pong(p, h) => {
                if p == self.probe && h == self.hop {
                    self.hop += 1;
                    if 2 * self.hop >= self.threshold {
                        let all: u128 = (1 << self.n) - 1;
                        self.suspected |= all & !self.replied;
                        self.probe += 1;
                        self.start_probe(ctx);
                    } else {
                        ctx.broadcast(AdMsg::Ping(self.probe, self.hop));
                    }
                }
            }
        }
    }
}

/// A responder for [`XiEstimator`] probes.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdResponder;

impl Process<AdMsg> for AdResponder {
    fn on_init(&mut self, _ctx: &mut Context<'_, AdMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, AdMsg>, from: ProcessId, msg: &AdMsg) {
        match *msg {
            AdMsg::Query(p) => ctx.send(from, AdMsg::Reply(p)),
            AdMsg::Ping(p, h) => ctx.send(from, AdMsg::Pong(p, h)),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// ◇ABC: delays that only eventually satisfy a band.
// ---------------------------------------------------------------------------

/// A delay model for the ◇ABC variant: chaotic delays in `[1, chaos_hi]`
/// before the (unknown to the algorithms) global stabilization time, a
/// well-behaved band `[lo, hi]` afterwards.
#[derive(Clone, Debug)]
pub struct EventuallyBanded {
    gst: u64,
    chaos_hi: u64,
    lo: u64,
    hi: u64,
    rng: SmallRng,
}

impl EventuallyBanded {
    /// Chaos of magnitude `chaos_hi` before `gst`, band `[lo, hi]` after.
    ///
    /// # Panics
    ///
    /// Panics on an invalid band.
    #[must_use]
    pub fn new(gst: u64, chaos_hi: u64, lo: u64, hi: u64, seed: u64) -> EventuallyBanded {
        assert!(lo > 0 && lo <= hi && chaos_hi > 0);
        EventuallyBanded {
            gst,
            chaos_hi,
            lo,
            hi,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for EventuallyBanded {
    fn delivery(&mut self, _f: ProcessId, _t: ProcessId, send_time: u64, _q: u64) -> Delivery {
        if send_time < self.gst {
            Delivery::After(self.rng.random_range(1..=self.chaos_hi))
        } else {
            Delivery::After(self.rng.random_range(self.lo..=self.hi))
        }
    }
}

// ---------------------------------------------------------------------------
// ?◇ABC: eventual lock-step via round doubling.
// ---------------------------------------------------------------------------

/// Eventual lock-step rounds without knowing `Ξ`: round `r` spans
/// `X₀ · 2^r` ticks of the Algorithm 1 clock. Once the doubled round
/// length passes the (unknown) `2Ξ`, Lemma 4's causal-cone argument
/// applies to every later round boundary, so all later rounds are
/// lock-step. The report records, per round, whether all correct round
/// messages had arrived — experiments check the suffix property.
#[derive(Clone, Debug)]
pub struct DoublingLockStep {
    core: abc_clocksync::TickCore,
    x0: u64,
    me: Option<ProcessId>,
    /// Round message presence per round: `(round, senders_mask)`.
    pub snapshots: Vec<(u64, u128)>,
    round_msgs: BTreeMap<u64, u128>,
    current_round: u64,
}

/// Message for [`DoublingLockStep`]: a tick, optionally tagged as carrying
/// the sender's round-`r` message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DlsMsg {
    /// Tick value.
    pub k: u64,
    /// The round whose message this tick carries, if any.
    pub round: Option<u64>,
}

/// Round-`r` boundary tick for doubling rounds: `X₀·(2^r − 1)` (the sum of
/// all previous round lengths).
#[must_use]
pub fn doubling_boundary(x0: u64, r: u64) -> u64 {
    x0 * ((1u64 << r.min(40)) - 1)
}

impl DoublingLockStep {
    /// A doubling lock-step process with initial round length `x0` ticks.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128`, `n ≥ 3f + 1`, and `x0 ≥ 1`.
    #[must_use]
    pub fn new(n: usize, f: usize, x0: u64) -> DoublingLockStep {
        assert!(x0 >= 1);
        DoublingLockStep {
            core: abc_clocksync::TickCore::new(n, f),
            x0,
            me: None,
            snapshots: Vec::new(),
            round_msgs: BTreeMap::new(),
            current_round: 0,
        }
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.current_round
    }

    /// Whether every round from `from_round` on saw all round messages
    /// from `correct_mask` (the eventual-lock-step suffix property).
    #[must_use]
    pub fn lockstep_suffix_holds(&self, from_round: u64, correct_mask: u128) -> bool {
        self.snapshots
            .iter()
            .filter(|(r, _)| *r >= from_round)
            .all(|(_, m)| m & correct_mask == correct_mask)
    }

    fn emit(&mut self, ticks: Vec<u64>, ctx: &mut Context<'_, DlsMsg>) {
        for t in ticks {
            // Is t a round boundary?
            let mut r = 0;
            let mut boundary = None;
            loop {
                let b = doubling_boundary(self.x0, r);
                if b == t {
                    boundary = Some(r);
                    break;
                }
                if b > t {
                    break;
                }
                r += 1;
            }
            if let Some(round) = boundary {
                if round > 0 {
                    let mask = self.round_msgs.get(&(round - 1)).copied().unwrap_or(0);
                    self.snapshots.push((round, mask));
                }
                self.current_round = self.current_round.max(round);
                ctx.broadcast(DlsMsg {
                    k: t,
                    round: Some(round),
                });
            } else {
                ctx.broadcast(DlsMsg { k: t, round: None });
            }
        }
    }
}

impl Process<DlsMsg> for DoublingLockStep {
    fn on_init(&mut self, ctx: &mut Context<'_, DlsMsg>) {
        self.me = Some(ctx.me());
        let ticks = self.core.on_init();
        self.emit(ticks, ctx);
        ctx.set_label(self.core.clock());
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DlsMsg>, from: ProcessId, msg: &DlsMsg) {
        if let Some(r) = msg.round {
            *self.round_msgs.entry(r).or_insert(0) |= 1 << from.0;
        }
        let ticks = self.core.on_tick(from, msg.k);
        self.emit(ticks, ctx);
        ctx.set_label(self.core.clock());
    }
}

// ---------------------------------------------------------------------------
// Restricted execution graphs (WTL-style weakening).
// ---------------------------------------------------------------------------

/// Rebuilds `g` with every message not exchanged *within* `core` exempted
/// from the ABC synchrony condition — the paper's restricted execution
/// graphs (Sections 2 and 6): only core-internal cycles are constrained.
#[must_use]
pub fn restrict_to_core(g: &ExecutionGraph, core: &[ProcessId]) -> ExecutionGraph {
    let mut b = ExecutionGraph::builder(g.num_processes());
    for e in g.events() {
        match e.trigger {
            abc_core::graph::Trigger::Init => {
                b.init(e.process);
            }
            abc_core::graph::Trigger::Message(m) => {
                let msg = g.message(m);
                let (mid, _) = b.send(msg.from, msg.receiver);
                if !(core.contains(&msg.sender) && core.contains(&msg.receiver)) {
                    b.set_exempt(mid);
                }
            }
        }
    }
    for p in 0..g.num_processes() {
        if g.is_faulty(ProcessId(p)) {
            b.mark_faulty(ProcessId(p));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_core::check;
    use abc_sim::delay::BandDelay;
    use abc_sim::{CrashAt, RunLimits, Simulation};

    #[test]
    fn estimator_converges_and_stops_missuspecting() {
        // True band [10, 39]: ratio just under 4 (true threshold 8); the
        // estimator starts way too small at Xi-hat = 11/10.
        let mut sim = Simulation::new(BandDelay::new(10, 39, 11));
        sim.add_process(XiEstimator::new(4, &Xi::from_fraction(11, 10)));
        for _ in 1..4 {
            sim.add_process(AdResponder);
        }
        sim.run(RunLimits {
            max_events: 60_000,
            max_time: u64::MAX,
        });
        let est = sim.process_as::<XiEstimator>(ProcessId(0)).unwrap();
        assert!(est.revisions >= 1, "estimate must have been revised");
        assert!(est.threshold() >= 4, "threshold grew: {}", est.threshold());
        assert_eq!(
            est.suspected_count(),
            0,
            "after convergence no correct process stays suspected"
        );
    }

    #[test]
    fn estimator_still_detects_crashes() {
        let mut sim = Simulation::new(BandDelay::new(10, 19, 4));
        sim.add_process(XiEstimator::new(4, &Xi::from_integer(2)));
        sim.add_process(AdResponder);
        sim.add_process(AdResponder);
        sim.add_faulty_process(CrashAt::new(AdResponder, 0));
        sim.run(RunLimits {
            max_events: 30_000,
            max_time: u64::MAX,
        });
        let est = sim.process_as::<XiEstimator>(ProcessId(0)).unwrap();
        assert!(est.is_suspected(ProcessId(3)));
        assert!(!est.is_suspected(ProcessId(1)));
    }

    #[test]
    fn doubling_lockstep_eventually_synchronizes() {
        // Chaos until t = 2_000 (delays up to 400), then band [50, 99].
        let n = 4;
        let mut sim = Simulation::new(EventuallyBanded::new(2_000, 400, 50, 99, 3));
        for _ in 0..n {
            sim.add_process(DoublingLockStep::new(n, 1, 2));
        }
        sim.run(RunLimits {
            max_events: 120_000,
            max_time: u64::MAX,
        });
        let correct_mask: u128 = (1 << n) - 1;
        for p in 0..n {
            let d = sim.process_as::<DoublingLockStep>(ProcessId(p)).unwrap();
            let total = d.rounds_completed();
            assert!(total >= 6, "p{p} completed {total} rounds");
            // The last couple of rounds must be lock-step (rounds long
            // enough + delays stabilized).
            assert!(
                d.lockstep_suffix_holds(total.saturating_sub(1), correct_mask),
                "p{p} suffix violated: {:?}",
                d.snapshots
            );
        }
    }

    #[test]
    fn core_restriction_exempts_outside_messages() {
        // A violating two-chain graph, but the slow spanning message is
        // sent to a non-core process: restricted graph is admissible.
        let mut b = ExecutionGraph::builder(4);
        let q = b.init(ProcessId(0));
        for i in 1..4 {
            b.init(ProcessId(i));
        }
        let (_, r2) = b.send(q, ProcessId(2));
        let (_, r3) = b.send(r2, ProcessId(3));
        b.send(r3, ProcessId(1));
        b.send(q, ProcessId(1)); // slow spanning message: ratio 3
        let g = b.finish();
        let xi = Xi::from_integer(2);
        assert!(!check::is_admissible(&g, &xi).unwrap());
        // Restrict to a core excluding process 3: the chain hop through 3
        // leaves the core, breaking every constrained cycle.
        let core = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let restricted = restrict_to_core(&g, &core);
        assert!(check::is_admissible(&restricted, &xi).unwrap());
        // Restricting to the full set changes nothing.
        let full: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let same = restrict_to_core(&g, &full);
        assert!(!check::is_admissible(&same, &xi).unwrap());
    }

    #[test]
    fn doubling_boundaries() {
        assert_eq!(doubling_boundary(2, 0), 0);
        assert_eq!(doubling_boundary(2, 1), 2);
        assert_eq!(doubling_boundary(2, 2), 6);
        assert_eq!(doubling_boundary(2, 3), 14);
    }
}
