//! Randomized sweeps of the Section 3 theorems: many seeds, several
//! system sizes and adversaries — the paper's bounds must hold on every
//! single admissible run.

use abc_clocksync::{byzantine, instrument, TickGen};
use abc_core::{check, ProcessId, Xi};
use abc_rational::Ratio;
use abc_sim::delay::{AdversarialSpan, BandDelay};
use abc_sim::{Mute, RunLimits, Simulation};
use proptest::prelude::*;

fn spread_of(trace: &abc_sim::Trace) -> u64 {
    instrument::max_clock_spread(trace).unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorems 1-4 under band delays with a Byzantine rusher and a mute
    /// process, across random seeds.
    #[test]
    fn section3_bounds_hold_across_seeds(seed in any::<u64>(), jump in 1u64..50) {
        let (n, f) = (7, 2);
        let xi = Xi::from_integer(2);
        let mut sim = Simulation::new(BandDelay::new(10, 19, seed));
        for _ in 0..(n - f) {
            sim.add_process(TickGen::new(n, f));
        }
        sim.add_faulty_process(byzantine::TickRusher::new(jump));
        sim.add_faulty_process(Mute);
        sim.run(RunLimits { max_events: 100_000, max_time: 1_200 });
        let trace = sim.trace();
        // Thm 1: progress.
        prop_assert!(instrument::min_final_clock(trace).unwrap() > 10);
        // Thm 3: precision.
        let spread = spread_of(trace);
        prop_assert!(
            Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi),
            "spread {spread} (seed {seed})"
        );
        // Thm 2: consistent-cut synchrony.
        let cut = instrument::max_consistent_cut_spread(trace).unwrap();
        prop_assert!(Ratio::from_integer(cut as i64) <= instrument::two_xi(&xi));
        // Thm 4: bounded progress.
        prop_assert!(instrument::bounded_progress_holds(trace, &xi));
    }

    /// The victim-link adversary cannot push the precision past 2Xi either,
    /// for Xi matching its band ratio.
    #[test]
    fn adversarial_victim_respects_bound(seed in 0u64..50, victim in 0usize..4) {
        let xi = Xi::from_integer(4);
        let mut sim = Simulation::new(AdversarialSpan::new(10, 39, ProcessId(victim)));
        for _ in 0..4 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.run(RunLimits { max_events: 4_000, max_time: u64::MAX });
        let spread = spread_of(sim.trace());
        prop_assert!(Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi));
        let _ = seed;
    }

    /// Every produced trace really is ABC-admissible for Xi above the
    /// delay-band ratio — checked with the polynomial checker, not assumed.
    #[test]
    fn traces_are_admissible(seed in any::<u64>()) {
        let mut sim = Simulation::new(BandDelay::new(10, 19, seed));
        for _ in 0..4 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.run(RunLimits { max_events: 800, max_time: u64::MAX });
        let g = sim.trace().to_execution_graph();
        prop_assert!(check::is_admissible(&g, &Xi::from_fraction(2, 1)).unwrap());
        // And the measured max cycle ratio is below the band ratio 19/10.
        if let Some(r) = check::max_relevant_cycle_ratio(&g).unwrap() {
            prop_assert!(r < Ratio::new(19, 10), "ratio {r}");
        }
    }
}
