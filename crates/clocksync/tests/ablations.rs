//! Ablations called out in DESIGN.md §3.5: the design choices of
//! Algorithms 1 and 2 are load-bearing — removing them visibly breaks the
//! guarantees.

use abc_clocksync::{LockStep, RoundApp, TickGen};
use abc_core::{ProcessId, Xi};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation};
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct Probe;

impl RoundApp for Probe {
    type Payload = u64;
    fn first_message(&mut self, me: ProcessId, _n: usize) -> u64 {
        me.0 as u64
    }
    fn on_round(&mut self, me: ProcessId, r: u64, _rcv: &BTreeMap<ProcessId, u64>) -> u64 {
        me.0 as u64 + r
    }
}

fn run_lockstep(phases: u64, seed: u64) -> bool {
    let n = 4;
    let mut sim = Simulation::new(BandDelay::new(50, 99, seed));
    for _ in 0..n {
        sim.add_process(LockStep::with_phases(n, 1, phases, Probe));
    }
    sim.run(RunLimits {
        max_events: 10_000,
        max_time: u64::MAX,
    });
    let correct_mask: u128 = (1 << n) - 1;
    (0..n).all(|p| {
        let ls = sim.process_as::<LockStep<Probe>>(ProcessId(p)).unwrap();
        ls.report().rounds_started() >= 5 && ls.report().lockstep_holds(correct_mask)
    })
}

/// Theorem 5's phase count ⌈2Ξ⌉ is tight in spirit: the sound count works
/// on every seed, while 1-phase rounds (< 2Ξ) lose round messages.
#[test]
fn lockstep_needs_two_xi_phases() {
    let xi = Xi::from_integer(2);
    let sound = xi.two_xi_ceil(); // 4
    for seed in 0..6 {
        assert!(
            run_lockstep(sound, seed),
            "sound phase count failed at seed {seed}"
        );
    }
    let mut broke = false;
    for seed in 0..12 {
        if !run_lockstep(1, seed) {
            broke = true;
            break;
        }
    }
    assert!(
        broke,
        "1-phase rounds should violate lock-step on some seed"
    );
}

/// The f parameter is load-bearing in the other direction too: declaring
/// f = 0 (advance needs all n ticks) stalls the system as soon as one
/// process is mute.
#[test]
fn zero_fault_budget_cannot_tolerate_a_mute_process() {
    let mut sim = Simulation::new(BandDelay::new(10, 19, 3));
    for _ in 0..3 {
        sim.add_process(TickGen::new(4, 0)); // f = 0: advance needs 4 ticks
    }
    sim.add_faulty_process(abc_sim::Mute);
    sim.run(RunLimits {
        max_events: 5_000,
        max_time: u64::MAX,
    });
    let max_clock = sim
        .trace()
        .events()
        .iter()
        .filter_map(|e| e.label)
        .max()
        .unwrap_or(0);
    assert!(max_clock <= 1, "clocks must stall without the fault budget");
    // Contrast: with f = 1 the same scenario makes progress (covered by
    // byzantine::tests::mute_process_cannot_stall_progress).
}
