//! Byzantine fault-tolerant clock synchronization and lock-step rounds in
//! the ABC model (Section 3 of the paper).
//!
//! * [`TickGen`] — the paper's **Algorithm 1**: tick generation with the
//!   catch-up rule (`f+1` ticks above my clock ⇒ jump) and the advance rule
//!   (`n−f` ticks at my clock ⇒ increment), tolerating `f` Byzantine
//!   processes among `n ≥ 3f+1`.
//! * [`LockStep`] — the paper's **Algorithm 2**: lock-step round simulation
//!   on top of Algorithm 1, with application round messages piggybacked on
//!   every `⌈2Ξ⌉`-th tick.
//! * [`byzantine`] — adversarial behaviors used to stress the algorithms.
//! * [`presets`] — named system + delay-band configurations that sweep
//!   harnesses (`abc-harness`, the `abc` CLI) address by name.
//! * [`instrument`] — trace analyses validating the paper's theorems:
//!   progress (Thm 1), consistent-cut synchrony ≤ 2Ξ (Thm 2), real-time
//!   precision ≤ 2Ξ (Thm 3), bounded progress ϱ = 4Ξ+1 (Thm 4), and
//!   lock-step correctness (Thm 5).
//!
//! # Example: seven processes, two Byzantine, precision within 2Ξ
//!
//! ```
//! use abc_clocksync::{TickGen, byzantine::TickRusher, instrument};
//! use abc_sim::{Simulation, RunLimits, delay::BandDelay};
//! use abc_core::Xi;
//!
//! let xi = Xi::from_integer(2); // delays in [50,100] keep ratios below 2
//! let mut sim = Simulation::new(BandDelay::new(50, 100, 7));
//! for _ in 0..5 {
//!     sim.add_process(TickGen::new(7, 2));
//! }
//! sim.add_faulty_process(TickRusher::new(3));
//! sim.add_faulty_process(TickRusher::new(5));
//! sim.run(RunLimits { max_events: 20_000, max_time: u64::MAX });
//!
//! let spread = instrument::max_clock_spread(sim.trace()).unwrap();
//! assert!(abc_rational::Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
mod core_rules;
pub mod instrument;
mod lockstep;
pub mod presets;
mod tickgen;

pub use core_rules::TickCore;
pub use lockstep::{LockStep, LockStepReport, RoundApp, TickMsg};
pub use tickgen::TickGen;
