//! Algorithm 1 as a simulated process.

use abc_core::ProcessId;
use abc_sim::{Context, Process};

use crate::core_rules::TickCore;

/// The paper's Algorithm 1 (Byzantine clock synchronization) as an
/// [`abc_sim::Process`] over plain tick messages (`u64`).
///
/// Every step labels the trace event with the clock value after the step
/// and marks steps that increment-and-broadcast as *distinguished*
/// (Theorem 4's distinguished events), so [`crate::instrument`] can check
/// the paper's bounds directly on the trace.
#[derive(Clone, Debug)]
pub struct TickGen {
    core: TickCore,
}

impl TickGen {
    /// A clock-synchronization process for `n` processes tolerating `f`
    /// Byzantine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128` and `n ≥ 3f + 1`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> TickGen {
        TickGen {
            core: TickCore::new(n, f),
        }
    }

    /// The current clock value.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.core.clock()
    }
}

impl Process<u64> for TickGen {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        for t in self.core.on_init() {
            ctx.broadcast(t);
        }
        ctx.set_label(self.core.clock());
        // The init step broadcasts tick 0: it is a distinguished
        // (clock-establishing + broadcasting) event.
        ctx.mark_distinguished();
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        let to_send = self.core.on_tick(from, *msg);
        let progressed = !to_send.is_empty();
        for t in to_send {
            ctx.broadcast(t);
        }
        ctx.set_label(self.core.clock());
        if progressed {
            ctx.mark_distinguished();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_core::{check, Xi};
    use abc_sim::delay::{BandDelay, FixedDelay};
    use abc_sim::{RunLimits, Simulation};

    #[test]
    fn four_correct_processes_make_progress() {
        let mut sim = Simulation::new(FixedDelay::new(10));
        for _ in 0..4 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.run(RunLimits {
            max_events: 2_000,
            max_time: u64::MAX,
        });
        // All clocks advanced well beyond 0.
        for p in 0..4 {
            let last = sim
                .trace()
                .events()
                .iter()
                .filter(|e| e.process.0 == p)
                .filter_map(|e| e.label)
                .next_back()
                .unwrap();
            assert!(last > 50, "clock of p{p} stuck at {last}");
        }
    }

    #[test]
    fn band_delay_executions_are_abc_admissible() {
        // Delays in [50, 100]: every relevant cycle ratio stays below
        // 100/50 = 2, so the execution must be admissible for Xi slightly
        // above 2 — verified with the real checker on the real trace.
        let mut sim = Simulation::new(BandDelay::new(50, 100, 99));
        for _ in 0..4 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.run(RunLimits {
            max_events: 600,
            max_time: u64::MAX,
        });
        let g = sim.trace().to_execution_graph();
        let xi = Xi::from_fraction(21, 10);
        assert!(check::is_admissible(&g, &xi).unwrap());
    }

    #[test]
    fn clocks_are_monotone_per_process() {
        let mut sim = Simulation::new(BandDelay::new(5, 9, 3));
        for _ in 0..4 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.run(RunLimits {
            max_events: 1_000,
            max_time: u64::MAX,
        });
        for p in 0..4 {
            let labels: Vec<u64> = sim
                .trace()
                .events()
                .iter()
                .filter(|e| e.process.0 == p)
                .filter_map(|e| e.label)
                .collect();
            assert!(labels.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
