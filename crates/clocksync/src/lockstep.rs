//! Algorithm 2: lock-step round simulation on top of Algorithm 1.
//!
//! Clocks are treated as phase counters; a round consists of `X = ⌈2Ξ⌉`
//! phases. The round-`r` application message is piggybacked on the
//! `(tick X·r)` message, and a process *starts round `r+1`* — reads the
//! round-`r` messages, computes, and broadcasts its round-`r+1` message —
//! at the moment its clock reaches `X·(r+1)`. Theorem 5 (via the causal
//! cone Lemma 4) guarantees that by then every correct process's round-`r`
//! message has arrived; [`LockStepReport`] records the actual arrival
//! snapshots so the experiments can verify exactly that.

use std::collections::BTreeMap;

use abc_core::ProcessId;
use abc_core::Xi;
use abc_sim::{Context, Process};

use crate::core_rules::TickCore;

/// A tick message optionally carrying a piggybacked round payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TickMsg<P> {
    /// The tick value.
    pub k: u64,
    /// The round payload attached to ticks at round boundaries
    /// (`k = X·r` carries the round-`r` message).
    pub payload: Option<P>,
}

/// A synchronous round-based application driven by [`LockStep`].
///
/// Round 0 only emits messages ([`RoundApp::first_message`]); every later
/// round `r ≥ 1` receives the round-`r−1` messages and emits the round-`r`
/// message ([`RoundApp::on_round`]).
pub trait RoundApp: Send {
    /// The application's round message type. `Send` because payloads ride
    /// in simulation messages, which cross engine worker threads
    /// (`abc_sim::Process` requires it).
    type Payload: Clone + std::fmt::Debug + Send;

    /// The round-0 message (sent at wake-up).
    fn first_message(&mut self, me: ProcessId, n: usize) -> Self::Payload;

    /// Computes round `r ≥ 1` from the round-`r−1` messages received
    /// (keyed by sender; Byzantine senders may be absent or lying), and
    /// returns the round-`r` message to broadcast.
    fn on_round(
        &mut self,
        me: ProcessId,
        round: u64,
        received: &BTreeMap<ProcessId, Self::Payload>,
    ) -> Self::Payload;
}

/// What a [`LockStep`] process observed, for Theorem 5 validation.
#[derive(Clone, Debug, Default)]
pub struct LockStepReport {
    /// For each started round `r ≥ 1`: the bitmask of processes whose
    /// round-`r−1` message had arrived when round `r` was computed.
    pub snapshots: Vec<(u64, u128)>,
}

impl LockStepReport {
    /// Number of rounds this process started (beyond round 0).
    #[must_use]
    pub fn rounds_started(&self) -> u64 {
        self.snapshots.len() as u64
    }

    /// Checks Theorem 5 for this process: every round computation saw the
    /// round messages of all processes in `correct_mask`.
    #[must_use]
    pub fn lockstep_holds(&self, correct_mask: u128) -> bool {
        self.snapshots
            .iter()
            .all(|(_, present)| present & correct_mask == correct_mask)
    }
}

/// Algorithms 1 + 2 merged: Byzantine clock synchronization driving a
/// lock-step round application.
#[derive(Clone, Debug)]
pub struct LockStep<A: RoundApp> {
    core: TickCore,
    phases_per_round: u64,
    me: Option<ProcessId>,
    round_msgs: BTreeMap<u64, BTreeMap<ProcessId, A::Payload>>,
    report: LockStepReport,
    app: A,
}

impl<A: RoundApp> LockStep<A> {
    /// Wraps `app` for a system of `n` processes with `f` Byzantine faults
    /// under model parameter `xi` (rounds have `⌈2Ξ⌉` phases).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128` and `n ≥ 3f + 1`.
    #[must_use]
    pub fn new(n: usize, f: usize, xi: &Xi, app: A) -> LockStep<A> {
        LockStep::with_phases(n, f, xi.two_xi_ceil().max(1), app)
    }

    /// Like [`LockStep::new`] but with an explicit phase count per round.
    ///
    /// Theorem 5 requires at least `⌈2Ξ⌉` phases; shorter rounds are
    /// **unsound** (round messages may miss their round) — exposed for the
    /// ablation experiments that demonstrate exactly that.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128`, `n ≥ 3f + 1`, and `phases ≥ 1`.
    #[must_use]
    pub fn with_phases(n: usize, f: usize, phases: u64, app: A) -> LockStep<A> {
        assert!(phases >= 1);
        LockStep {
            core: TickCore::new(n, f),
            phases_per_round: phases,
            me: None,
            round_msgs: BTreeMap::new(),
            report: LockStepReport::default(),
            app,
        }
    }

    /// The wrapped application.
    #[must_use]
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The Theorem 5 observation report.
    #[must_use]
    pub fn report(&self) -> &LockStepReport {
        &self.report
    }

    /// The current clock (phase counter).
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.core.clock()
    }

    /// Current round (`⌊k / X⌋`).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.core.clock() / self.phases_per_round
    }

    /// Builds the outgoing tick message for tick `t`, computing and
    /// attaching the round payload at round boundaries.
    fn make_msg(&mut self, t: u64, n: usize) -> TickMsg<A::Payload> {
        let payload = if t % self.phases_per_round == 0 {
            let r = t / self.phases_per_round;
            let me = self.me.expect("initialized");
            if r == 0 {
                Some(self.app.first_message(me, n))
            } else {
                let prev = self.round_msgs.entry(r - 1).or_default().clone();
                let mut present: u128 = 0;
                for p in prev.keys() {
                    present |= 1 << p.0;
                }
                self.report.snapshots.push((r, present));
                Some(self.app.on_round(me, r, &prev))
            }
        } else {
            None
        };
        TickMsg { k: t, payload }
    }
}

impl<A: RoundApp + 'static> Process<TickMsg<A::Payload>> for LockStep<A> {
    fn on_init(&mut self, ctx: &mut Context<'_, TickMsg<A::Payload>>) {
        self.me = Some(ctx.me());
        let n = ctx.num_processes();
        for t in self.core.on_init() {
            let msg = self.make_msg(t, n);
            ctx.broadcast(msg);
        }
        ctx.set_label(self.core.clock());
        ctx.mark_distinguished();
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, TickMsg<A::Payload>>,
        from: ProcessId,
        msg: &TickMsg<A::Payload>,
    ) {
        // Stash a piggybacked round payload (first message per sender and
        // round wins; Byzantine equivocation cannot overwrite).
        if let Some(p) = &msg.payload {
            if msg.k % self.phases_per_round == 0 {
                let r = msg.k / self.phases_per_round;
                self.round_msgs
                    .entry(r)
                    .or_default()
                    .entry(from)
                    .or_insert_with(|| p.clone());
            }
        }
        let to_send = self.core.on_tick(from, msg.k);
        let progressed = !to_send.is_empty();
        let n = ctx.num_processes();
        for t in to_send {
            let m = self.make_msg(t, n);
            ctx.broadcast(m);
        }
        ctx.set_label(self.core.clock());
        if progressed {
            ctx.mark_distinguished();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_sim::delay::BandDelay;
    use abc_sim::{RunLimits, Simulation};

    /// Test app: each round message carries (sender, round); the app checks
    /// that received messages are exactly for the previous round.
    #[derive(Clone, Debug, Default)]
    struct Recorder {
        rounds_seen: Vec<u64>,
        inputs_ok: bool,
    }

    impl Recorder {
        fn new() -> Recorder {
            Recorder {
                rounds_seen: Vec::new(),
                inputs_ok: true,
            }
        }
    }

    impl RoundApp for Recorder {
        type Payload = (usize, u64);

        fn first_message(&mut self, me: ProcessId, _n: usize) -> (usize, u64) {
            (me.0, 0)
        }

        fn on_round(
            &mut self,
            me: ProcessId,
            round: u64,
            received: &BTreeMap<ProcessId, (usize, u64)>,
        ) -> (usize, u64) {
            self.rounds_seen.push(round);
            for (p, (sender, r)) in received {
                if *sender != p.0 || *r != round - 1 {
                    self.inputs_ok = false;
                }
            }
            (me.0, round)
        }
    }

    #[test]
    fn lockstep_rounds_complete_and_see_all_correct_messages() {
        let xi = Xi::from_integer(2);
        let n = 4;
        let mut sim = Simulation::new(BandDelay::new(50, 99, 5));
        for _ in 0..n {
            sim.add_process(LockStep::new(n, 1, &xi, Recorder::new()));
        }
        sim.run(RunLimits {
            max_events: 8_000,
            max_time: u64::MAX,
        });
        let correct_mask: u128 = (1 << n) - 1;
        for p in 0..n {
            let ls = sim
                .process_as::<LockStep<Recorder>>(abc_core::ProcessId(p))
                .expect("concrete type");
            assert!(ls.report().rounds_started() >= 5, "p{p} too few rounds");
            assert!(
                ls.report().lockstep_holds(correct_mask),
                "p{p} missed a correct round message: {:?}",
                ls.report().snapshots
            );
            assert!(ls.app().inputs_ok, "p{p} saw wrong-round inputs");
            let rounds = &ls.app().rounds_seen;
            let expected: Vec<u64> = (1..=rounds.len() as u64).collect();
            assert_eq!(rounds, &expected, "p{p} rounds in order, none skipped");
        }
    }
}
