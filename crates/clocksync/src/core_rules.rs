//! The Algorithm 1 state machine, shared by [`crate::TickGen`] and
//! [`crate::LockStep`].
//!
//! ```text
//! VAR k: integer ← 0;
//! send (tick 0) to all [once];
//! /* catch-up rule */
//! if received (tick l) from f+1 distinct processes and l > k then
//!     send (tick k+1), ..., (tick l) to all [once];  k ← l;
//! /* advance rule */
//! if received (tick k) from n−f distinct processes then
//!     send (tick k+1) to all [once];  k ← k+1;
//! ```
//!
//! The rules are applied to fixpoint after every reception (one rule firing
//! can enable the other). The *once* semantics holds by construction: `k`
//! is monotone and exactly the ticks in `(k_old, k_new]` are sent on each
//! firing.

use std::collections::BTreeMap;

use abc_core::ProcessId;

/// The clock/tick state machine of Algorithm 1.
///
/// Supports up to 128 processes (sender sets are bitmask-compressed).
#[derive(Clone, Debug)]
pub struct TickCore {
    n: usize,
    f: usize,
    k: u64,
    initialized: bool,
    /// For each tick value > current `k` (plus the current frontier):
    /// bitmask of distinct senders seen.
    received: BTreeMap<u64, u128>,
}

impl TickCore {
    /// State machine for `n` processes tolerating `f` Byzantine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128` and `n ≥ 3f + 1`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> TickCore {
        assert!(
            n >= 1 && n <= 128,
            "sender bitmasks support up to 128 processes"
        );
        assert!(n >= 3 * f + 1, "Algorithm 1 requires n >= 3f + 1");
        TickCore {
            n,
            f,
            k: 0,
            initialized: false,
            received: BTreeMap::new(),
        }
    }

    /// The current clock value `k`.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.k
    }

    /// System size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault budget `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// The initialization step: returns the ticks to broadcast (always
    /// `[0]`).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn on_init(&mut self) -> Vec<u64> {
        assert!(!self.initialized, "init step happens once");
        self.initialized = true;
        vec![0]
    }

    /// Records `(tick l)` from `from` and applies the rules to fixpoint.
    ///
    /// Returns the ticks to broadcast now, in increasing order.
    pub fn on_tick(&mut self, from: ProcessId, l: u64) -> Vec<u64> {
        debug_assert!(from.0 < self.n, "sender out of range");
        // Ticks at or below our clock can never fire a rule again — except
        // ticks exactly at k, which feed the advance rule.
        if l >= self.k {
            *self.received.entry(l).or_insert(0) |= 1u128 << from.0;
        }
        let mut to_send = Vec::new();
        loop {
            // Catch-up rule: largest l > k with f+1 distinct senders.
            let catch_up = self
                .received
                .range((self.k + 1)..)
                .rev()
                .find(|(_, mask)| mask.count_ones() as usize >= self.f + 1)
                .map(|(l, _)| *l);
            if let Some(l) = catch_up {
                for t in (self.k + 1)..=l {
                    to_send.push(t);
                }
                self.k = l;
                self.prune();
                continue;
            }
            // Advance rule: n−f distinct senders at exactly k.
            let at_k = self.received.get(&self.k).copied().unwrap_or(0);
            if at_k.count_ones() as usize >= self.n - self.f {
                self.k += 1;
                to_send.push(self.k);
                self.prune();
                continue;
            }
            break;
        }
        to_send
    }

    /// Drops bookkeeping for tick values below the current clock (they can
    /// never fire a rule again).
    fn prune(&mut self) {
        while let Some((&l, _)) = self.received.first_key_value() {
            if l < self.k {
                self.received.remove(&l);
            } else {
                break;
            }
        }
    }

    /// Number of distinct senders recorded for tick `l` (diagnostics).
    #[must_use]
    pub fn senders_of(&self, l: u64) -> usize {
        self.received.get(&l).map_or(0, |m| m.count_ones() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn init_broadcasts_tick_zero_once() {
        let mut c = TickCore::new(4, 1);
        assert_eq!(c.on_init(), vec![0]);
        assert_eq!(c.clock(), 0);
    }

    #[test]
    #[should_panic(expected = "once")]
    fn double_init_panics() {
        let mut c = TickCore::new(4, 1);
        c.on_init();
        c.on_init();
    }

    #[test]
    #[should_panic(expected = "3f + 1")]
    fn insufficient_n_rejected() {
        let _ = TickCore::new(6, 2);
    }

    #[test]
    fn advance_rule_needs_n_minus_f() {
        // n = 4, f = 1: advance needs 3 distinct (tick 0).
        let mut c = TickCore::new(4, 1);
        c.on_init();
        assert_eq!(c.on_tick(p(0), 0), Vec::<u64>::new());
        assert_eq!(c.on_tick(p(1), 0), Vec::<u64>::new());
        assert_eq!(c.on_tick(p(2), 0), vec![1]); // third distinct sender
        assert_eq!(c.clock(), 1);
        // Duplicate senders do not count twice.
        let mut c2 = TickCore::new(4, 1);
        c2.on_init();
        c2.on_tick(p(0), 0);
        assert_eq!(c2.on_tick(p(0), 0), Vec::<u64>::new());
        assert_eq!(c2.clock(), 0);
    }

    #[test]
    fn catch_up_rule_needs_f_plus_1_and_jumps() {
        // n = 4, f = 1: catch-up needs 2 distinct (tick l), l > k.
        let mut c = TickCore::new(4, 1);
        c.on_init();
        assert_eq!(c.on_tick(p(0), 5), Vec::<u64>::new()); // one Byzantine alone: no
        assert_eq!(c.on_tick(p(1), 5), vec![1, 2, 3, 4, 5]); // second sender
        assert_eq!(c.clock(), 5);
    }

    #[test]
    fn catch_up_takes_largest_eligible() {
        let mut c = TickCore::new(4, 1);
        c.on_init();
        assert_eq!(c.on_tick(p(0), 3), Vec::<u64>::new());
        assert_eq!(c.on_tick(p(1), 7), Vec::<u64>::new());
        // Second distinct sender for tick 7 fires the catch-up; tick 3
        // still has only one sender and is skipped over entirely.
        let sent = c.on_tick(p(0), 7);
        assert_eq!(c.clock(), 7);
        assert_eq!(sent, vec![1, 2, 3, 4, 5, 6, 7]);
        // Late tick 3 is stale now.
        assert_eq!(c.on_tick(p(1), 3), Vec::<u64>::new());
    }

    #[test]
    fn catch_up_can_enable_advance() {
        // After catching up to l, n-f senders at l advance immediately.
        let mut c = TickCore::new(4, 1);
        c.on_init();
        c.on_tick(p(0), 2);
        c.on_tick(p(1), 2);
        // k jumped to 2 (catch-up, senders {0,1} at tick 2).
        assert_eq!(c.clock(), 2);
        let sent = c.on_tick(p(2), 2);
        // Third distinct sender at 2: advance fires.
        assert_eq!(sent, vec![3]);
        assert_eq!(c.clock(), 3);
    }

    #[test]
    fn stale_ticks_are_ignored() {
        let mut c = TickCore::new(4, 1);
        c.on_init();
        c.on_tick(p(0), 4);
        c.on_tick(p(1), 4); // catch up to 4
        assert_eq!(c.clock(), 4);
        // Old ticks (below k) can never matter.
        assert_eq!(c.on_tick(p(2), 1), Vec::<u64>::new());
        assert_eq!(c.on_tick(p(3), 1), Vec::<u64>::new());
        assert_eq!(c.clock(), 4);
        assert_eq!(c.senders_of(1), 0, "pruned");
    }

    #[test]
    fn full_round_progression_without_faults() {
        // 4 correct processes in lock step: drive one core with everyone's
        // tick-0 and tick-1 messages.
        let mut c = TickCore::new(4, 0);
        c.on_init();
        let mut sent = Vec::new();
        for i in 0..4 {
            sent.extend(c.on_tick(p(i), 0));
        }
        assert_eq!(sent, vec![1]); // advance needs all 4 when f = 0
        for i in 0..4 {
            sent.extend(c.on_tick(p(i), 1));
        }
        assert_eq!(sent, vec![1, 2]);
        assert_eq!(c.clock(), 2);
    }
}
