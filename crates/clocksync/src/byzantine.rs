//! Byzantine adversary behaviors for stressing Algorithm 1 / Algorithm 2.
//!
//! A Byzantine process in the paper's model is an arbitrary state machine;
//! here that is simply an arbitrary [`Process`] implementation, registered
//! with [`abc_sim::Simulation::add_faulty_process`] so its messages are
//! exempt from the ABC synchrony condition. Note that with `n ≥ 3f + 1`:
//!
//! * a *rusher* alone cannot trigger catch-up at correct processes (it
//!   provides only `f < f+1` distinct senders for any fabricated tick);
//! * a *mute* or crashed adversary cannot stall the advance rule (only
//!   `n − f` ticks are awaited).
//!
//! The tests and experiments check exactly these two levers.

use abc_core::ProcessId;
use abc_sim::{Context, Process};

use crate::lockstep::TickMsg;

/// Broadcasts ever-larger tick values, trying to pull correct clocks ahead.
///
/// Reacts only to tick values it has not reacted to before (strictly
/// above the last trigger): an unthrottled echo adversary would generate
/// an exponential message storm between two rushers, which consumes
/// simulation budget without strengthening the attack — the catch-up
/// quorum `f+1` is what matters, not message volume.
#[derive(Clone, Debug)]
pub struct TickRusher {
    jump: u64,
    next: u64,
    last_trigger: Option<u64>,
}

impl TickRusher {
    /// Jumps `jump` ticks ahead on every reaction.
    #[must_use]
    pub fn new(jump: u64) -> TickRusher {
        TickRusher {
            jump,
            next: 0,
            last_trigger: None,
        }
    }

    fn bump(&mut self) -> u64 {
        self.next = self.next.saturating_add(self.jump);
        self.next
    }

    fn should_react(&mut self, tick: u64) -> bool {
        if self.last_trigger.is_none_or(|l| tick > l) {
            self.last_trigger = Some(tick);
            true
        } else {
            false
        }
    }
}

impl Process<u64> for TickRusher {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        let t = self.bump();
        ctx.broadcast(t);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, msg: &u64) {
        if self.should_react(*msg) {
            let t = self.bump();
            ctx.broadcast(t);
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Process<TickMsg<P>> for TickRusher {
    fn on_init(&mut self, ctx: &mut Context<'_, TickMsg<P>>) {
        let t = self.bump();
        ctx.broadcast(TickMsg {
            k: t,
            payload: None,
        });
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TickMsg<P>>, _from: ProcessId, m: &TickMsg<P>) {
        if self.should_react(m.k) {
            let t = self.bump();
            ctx.broadcast(TickMsg {
                k: t,
                payload: None,
            });
        }
    }
}

/// Sends different tick values to different halves of the system
/// (equivocation), trying to split the correct processes.
#[derive(Clone, Debug)]
pub struct Equivocator {
    counter: u64,
}

impl Equivocator {
    /// A fresh equivocator.
    #[must_use]
    pub fn new() -> Equivocator {
        Equivocator { counter: 0 }
    }
}

impl Default for Equivocator {
    fn default() -> Equivocator {
        Equivocator::new()
    }
}

impl Process<u64> for Equivocator {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        let n = ctx.num_processes();
        for p in 0..n {
            ctx.send(ProcessId(p), if p % 2 == 0 { 0 } else { 10 });
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: &u64) {
        self.counter += 1;
        let n = ctx.num_processes();
        let c = self.counter;
        for p in 0..n {
            ctx.send(
                ProcessId(p),
                if p % 2 == 0 { c } else { c.saturating_mul(3) },
            );
        }
    }
}

/// Replays only `(tick 0)` forever, feigning a stuck clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct Laggard;

impl Process<u64> for Laggard {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, _msg: &u64) {
        ctx.broadcast(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TickGen;
    use abc_sim::delay::BandDelay;
    use abc_sim::{Mute, RunLimits, Simulation};

    fn final_clocks(sim: &Simulation<u64, BandDelay>, correct: &[usize]) -> Vec<u64> {
        correct
            .iter()
            .map(|&p| {
                sim.trace()
                    .events()
                    .iter()
                    .filter(|e| e.process.0 == p)
                    .filter_map(|e| e.label)
                    .next_back()
                    .unwrap_or(0)
            })
            .collect()
    }

    #[test]
    fn rusher_cannot_run_clocks_away() {
        // n = 4, f = 1: the lone rusher provides only 1 < f+1 = 2 senders
        // for its fabricated ticks, so correct clocks track each other.
        let mut sim = Simulation::new(BandDelay::new(10, 19, 2));
        for _ in 0..3 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.add_faulty_process(TickRusher::new(100));
        sim.run(RunLimits {
            max_events: 4_000,
            max_time: u64::MAX,
        });
        let clocks = final_clocks(&sim, &[0, 1, 2]);
        let (lo, hi) = (clocks.iter().min().unwrap(), clocks.iter().max().unwrap());
        assert!(*hi >= 10, "correct clocks progressed: {clocks:?}");
        assert!(hi - lo <= 4, "clocks stayed close: {clocks:?}");
        // The rusher's huge ticks never became correct clock values: the
        // rusher jumps by 100 per step; correct clocks move by ~1.
        assert!(*hi < 1_000, "rusher failed to drag clocks: {clocks:?}");
    }

    #[test]
    fn mute_process_cannot_stall_progress() {
        let mut sim = Simulation::new(BandDelay::new(10, 19, 4));
        for _ in 0..3 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.add_faulty_process(Mute);
        sim.run(RunLimits {
            max_events: 3_000,
            max_time: u64::MAX,
        });
        for c in final_clocks(&sim, &[0, 1, 2]) {
            assert!(c >= 10, "clock stalled at {c}");
        }
    }

    #[test]
    fn equivocator_cannot_split_correct_clocks() {
        let mut sim = Simulation::new(BandDelay::new(10, 19, 6));
        for _ in 0..3 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.add_faulty_process(Equivocator::new());
        sim.run(RunLimits {
            max_events: 4_000,
            max_time: u64::MAX,
        });
        let clocks = final_clocks(&sim, &[0, 1, 2]);
        let (lo, hi) = (clocks.iter().min().unwrap(), clocks.iter().max().unwrap());
        assert!(hi - lo <= 4, "equivocator split the clocks: {clocks:?}");
    }

    #[test]
    fn below_threshold_resilience_breaks() {
        // n = 4 but f = 1 actual Byzantine rushers are TWO (> f): the
        // catch-up rule's f+1 = 2 quorum is now reachable by liars alone,
        // and correct clocks get dragged arbitrarily far ahead —
        // demonstrating that n >= 3f+1 is load-bearing.
        let mut sim = Simulation::new(BandDelay::new(10, 19, 8));
        for _ in 0..2 {
            sim.add_process(TickGen::new(4, 1));
        }
        sim.add_faulty_process(TickRusher::new(1_000));
        sim.add_faulty_process(TickRusher::new(1_000));
        sim.run(RunLimits {
            max_events: 2_000,
            max_time: u64::MAX,
        });
        let clocks = final_clocks(&sim, &[0, 1]);
        assert!(
            clocks.iter().any(|c| *c >= 1_000),
            "two rushers should drag clocks: {clocks:?}"
        );
    }
}
