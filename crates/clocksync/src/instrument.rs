//! Trace analyses for the Section 3 theorems.
//!
//! Every [`crate::TickGen`] / [`crate::LockStep`] step labels its trace
//! event with the clock value after the step and marks clock-advancing
//! broadcasts as distinguished events, so the paper's guarantees become
//! measurable properties of a [`Trace`]:
//!
//! * **Theorem 1 (Progress)** — [`min_final_clock`]: every correct clock
//!   grows without bound (operationally: beyond any target reached within
//!   the run budget).
//! * **Theorems 2/3 (Synchrony / Precision)** — [`max_clock_spread`]: at
//!   every real time `t`, `|Cp(t) − Cq(t)| ≤ 2Ξ` over correct `p, q`
//!   (Mattern's real-time cuts transfer the consistent-cut bound).
//! * **Theorem 4 (Bounded progress)** — [`bounded_progress_worst_gap`]:
//!   no consistent cut interval contains `ϱ = 4Ξ+1` distinguished events
//!   of one correct process but none of another.
//! * **Theorem 5 (Lock-step)** — via [`crate::LockStepReport`].

use abc_core::ProcessId;
use abc_core::Xi;
use abc_rational::Ratio;
use abc_sim::Trace;

/// `2Ξ` as an exact rational — the Theorem 2/3 precision bound.
#[must_use]
pub fn two_xi(xi: &Xi) -> Ratio {
    Ratio::from_integer(2) * xi.as_ratio()
}

/// `4Ξ + 1` as an exact rational — the Theorem 4 bounded-progress `ϱ`.
#[must_use]
pub fn rho_bound(xi: &Xi) -> Ratio {
    Ratio::from_integer(4) * xi.as_ratio() + Ratio::one()
}

/// The clock value of each correct process over (real) time, sampled at
/// event occurrences: `(time, clocks_by_process)` snapshots taken after
/// every event once all correct processes have woken up.
#[must_use]
pub fn clock_timeline(trace: &Trace) -> Vec<(u64, Vec<Option<u64>>)> {
    let n = trace.num_processes();
    let mut clocks: Vec<Option<u64>> = vec![None; n];
    let mut out = Vec::new();
    for ev in trace.events() {
        if let Some(label) = ev.label {
            if !trace.is_faulty(ev.process) {
                clocks[ev.process.0] = Some(label);
            }
        }
        out.push((ev.time, clocks.clone()));
    }
    out
}

/// The maximum over real time of `max_p C_p(t) − min_q C_q(t)` over correct
/// processes (Theorem 3's quantity), or `None` if fewer than two correct
/// processes ever ran.
///
/// Only instants where **all** correct processes have taken their wake-up
/// step are sampled (clocks are undefined before boot; the paper's model
/// wakes every process with an external message).
#[must_use]
pub fn max_clock_spread(trace: &Trace) -> Option<u64> {
    let correct: Vec<usize> = (0..trace.num_processes())
        .filter(|p| !trace.is_faulty(ProcessId(*p)))
        .collect();
    if correct.len() < 2 {
        return None;
    }
    // Single pass (clock_timeline would clone the whole clock vector per
    // event, which is too expensive on storm-sized traces).
    let mut clocks: Vec<Option<u64>> = vec![None; trace.num_processes()];
    let mut spread: Option<u64> = None;
    for ev in trace.events() {
        if let Some(label) = ev.label {
            if !trace.is_faulty(ev.process) {
                clocks[ev.process.0] = Some(label);
            }
        }
        let mut min = u64::MAX;
        let mut max = 0;
        let mut all = true;
        for p in &correct {
            match clocks[*p] {
                Some(c) => {
                    min = min.min(c);
                    max = max.max(c);
                }
                None => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            let s = max - min;
            spread = Some(spread.map_or(s, |cur| cur.max(s)));
        }
    }
    spread
}

/// The smallest final clock value over correct processes (Theorem 1:
/// progress — compare against a target for the run's budget).
#[must_use]
pub fn min_final_clock(trace: &Trace) -> Option<u64> {
    let n = trace.num_processes();
    let mut last: Vec<Option<u64>> = vec![None; n];
    for ev in trace.events() {
        if let Some(l) = ev.label {
            last[ev.process.0] = Some(l);
        }
    }
    (0..n)
        .filter(|p| !trace.is_faulty(ProcessId(*p)))
        .map(|p| last[p].unwrap_or(0))
        .min()
}

/// Per-event vector clocks: `vc[e][q]` = number of events of process `q`
/// in the causal past of event `e` (inclusive).
fn vector_clocks(trace: &Trace) -> Vec<Vec<usize>> {
    let n = trace.num_processes();
    let mut vc: Vec<Vec<usize>> = Vec::with_capacity(trace.events().len());
    let mut last_of_process: Vec<Option<usize>> = vec![None; n];
    for (idx, ev) in trace.events().iter().enumerate() {
        let mut v = match last_of_process[ev.process.0] {
            Some(prev) => vc[prev].clone(),
            None => vec![0; n],
        };
        if let Some(mi) = ev.trigger {
            let send_ev = trace.messages()[mi].send_event;
            for q in 0..n {
                v[q] = v[q].max(vc[send_ev][q]);
            }
        }
        v[ev.process.0] += 1;
        vc.push(v);
        last_of_process[ev.process.0] = Some(idx);
    }
    vc
}

/// The worst bounded-progress gap (Theorem 4): the maximum number of
/// distinguished events one correct process `p` performed inside a
/// consistent cut interval `[⟨φ_p⟩, ⟨φ'_p⟩]` in which some other correct
/// process performed **none**. Theorem 4 asserts this is `< ϱ = 4Ξ+1`,
/// i.e. at most `⌈4Ξ+1⌉ − 1`.
#[must_use]
pub fn bounded_progress_worst_gap(trace: &Trace) -> u64 {
    let n = trace.num_processes();
    let vc = vector_clocks(trace);
    let correct: Vec<usize> = (0..n).filter(|p| !trace.is_faulty(ProcessId(*p))).collect();
    // Per process: the prefix counts of distinguished events, indexed by
    // "number of events of that process".
    let mut dist_prefix: Vec<Vec<u64>> = vec![vec![0]; n];
    for ev in trace.events() {
        let v = &mut dist_prefix[ev.process.0];
        let last = *v.last().unwrap();
        v.push(last + u64::from(ev.distinguished));
    }
    // Events of each process in order.
    let mut events_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (idx, ev) in trace.events().iter().enumerate() {
        events_of[ev.process.0].push(idx);
    }
    let mut worst = 0u64;
    for &p in &correct {
        let evs = &events_of[p];
        for &q in &correct {
            if q == p {
                continue;
            }
            // For interval (a, b] of p's events: distinguished p-events =
            // dp[b_pos+1] − dp[a_pos+1]; q has none iff q's distinguished
            // prefix at vc-counts agree. Group b by q's distinguished count
            // and take the max p-count difference within a group.
            let dq = &dist_prefix[q];
            let dp = &dist_prefix[p];
            let mut run_start_dp: Option<(u64, u64)> = None; // (q_dist, dp at start)
            for (pos, &e) in evs.iter().enumerate() {
                let q_dist = dq[vc[e][q]];
                let p_dist = dp[pos + 1];
                match run_start_dp {
                    Some((qd, dp0)) if qd == q_dist => {
                        worst = worst.max(p_dist - dp0);
                    }
                    _ => {
                        run_start_dp = Some((q_dist, p_dist));
                    }
                }
            }
        }
    }
    worst
}

/// Checks Theorem 4 for a given `Ξ`: the worst gap stays below
/// `ϱ = 4Ξ + 1`.
#[must_use]
pub fn bounded_progress_holds(trace: &Trace, xi: &Xi) -> bool {
    let gap = bounded_progress_worst_gap(trace);
    Ratio::from_integer(i64::try_from(gap).expect("gap fits i64")) < rho_bound(xi)
}

/// The Theorem 2 / Lemma 4 quantity on *consistent cuts*: for every event
/// `e` of a correct process, the frontier clock values of the causal-past
/// cut `⟨e⟩` must differ by at most `2Ξ` — operationally, `p`'s clock at
/// `e` exceeds no correct `q`'s last clock inside `⟨e⟩` by more than `2Ξ`
/// (the causal-cone property that the Lemma 4 cycle argument enforces).
///
/// Returns the maximum observed frontier spread, or `None` without labels.
#[must_use]
pub fn max_consistent_cut_spread(trace: &Trace) -> Option<u64> {
    let n = trace.num_processes();
    let vc = vector_clocks(trace);
    // labels_of[p][i] = clock label after the i-th event of p.
    let mut labels_of: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut event_pos: Vec<(usize, usize)> = Vec::new(); // (process, local idx)
    for ev in trace.events() {
        let p = ev.process.0;
        event_pos.push((p, labels_of[p].len()));
        let prev = labels_of[p].last().copied().unwrap_or(0);
        labels_of[p].push(ev.label.unwrap_or(prev));
    }
    let correct: Vec<usize> = (0..n).filter(|p| !trace.is_faulty(ProcessId(*p))).collect();
    if correct.len() < 2 {
        return None;
    }
    let mut worst: Option<u64> = None;
    for (idx, ev) in trace.events().iter().enumerate() {
        let p = ev.process.0;
        if trace.is_faulty(ev.process) {
            continue;
        }
        let (pp, pi) = event_pos[idx];
        debug_assert_eq!(pp, p);
        let my_clock = labels_of[p][pi];
        for &q in &correct {
            if q == p {
                continue;
            }
            let seen = vc[idx][q]; // events of q inside ⟨e⟩
                                   // Only meaningful once q is inside the causal cone at all.
            if seen == 0 {
                continue;
            }
            let q_clock = labels_of[q][seen - 1];
            let spread = my_clock.abs_diff(q_clock);
            worst = Some(worst.map_or(spread, |w| w.max(spread)));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TickGen;
    use abc_sim::delay::{AdversarialSpan, BandDelay, FixedDelay};
    use abc_sim::{RunLimits, Simulation};

    fn run_tickgen<D: abc_sim::DelayModel>(
        n: usize,
        f_registered: usize,
        delay: D,
        events: usize,
    ) -> Simulation<u64, D> {
        let mut sim = Simulation::new(delay);
        for _ in 0..n {
            sim.add_process(TickGen::new(n, f_registered));
        }
        sim.run(RunLimits {
            max_events: events,
            max_time: u64::MAX,
        });
        sim
    }

    #[test]
    fn theorem1_progress() {
        let sim = run_tickgen(4, 1, FixedDelay::new(7), 4_000);
        assert!(min_final_clock(sim.trace()).unwrap() > 100);
    }

    #[test]
    fn theorem2_3_precision_band_delays() {
        // Delays in [10, 19]: ratio < 2, so Xi = 2 admits the execution and
        // the spread must stay within 2·Xi = 4.
        let xi = Xi::from_integer(2);
        let sim = run_tickgen(4, 1, BandDelay::new(10, 19, 42), 6_000);
        let spread = max_clock_spread(sim.trace()).unwrap();
        assert!(
            Ratio::from_integer(spread as i64) <= two_xi(&xi),
            "spread {spread} exceeds 2Xi = {}",
            two_xi(&xi)
        );
    }

    #[test]
    fn theorem2_3_precision_adversarial() {
        // Victimize p0 with delay 39 while others run at 10: ratios stay
        // below 4, and the spread must stay within 2·Xi = 8 for Xi = 4.
        let xi = Xi::from_integer(4);
        let sim = run_tickgen(4, 1, AdversarialSpan::new(10, 39, ProcessId(0)), 6_000);
        let spread = max_clock_spread(sim.trace()).unwrap();
        assert!(
            Ratio::from_integer(spread as i64) <= two_xi(&xi),
            "spread {spread}"
        );
        // The adversary actually creates skew (> 1), showing the bound is
        // not trivially slack.
        assert!(spread >= 1, "adversary produced no skew at all");
    }

    #[test]
    fn theorem4_bounded_progress() {
        let xi = Xi::from_integer(2);
        let sim = run_tickgen(4, 1, BandDelay::new(10, 19, 5), 4_000);
        assert!(bounded_progress_holds(sim.trace(), &xi));
        let gap = bounded_progress_worst_gap(sim.trace());
        assert!(gap >= 1, "some interval should show a gap");
    }

    #[test]
    fn spread_requires_two_correct_processes() {
        let mut sim = Simulation::new(FixedDelay::new(5));
        sim.add_process(TickGen::new(4, 1));
        sim.add_faulty_process(TickGen::new(4, 1));
        sim.add_faulty_process(TickGen::new(4, 1));
        sim.add_faulty_process(TickGen::new(4, 1));
        sim.run(RunLimits {
            max_events: 100,
            max_time: u64::MAX,
        });
        assert_eq!(max_clock_spread(sim.trace()), None);
    }

    #[test]
    fn vector_clocks_count_causal_pasts() {
        // p0 init -> msg to p1; p1's receive event has vc = [1, 2] (p0's
        // init + p1's init + itself).
        let mut sim = Simulation::new(FixedDelay::new(3));
        sim.add_process(TickGen::new(2, 0));
        sim.add_process(TickGen::new(2, 0));
        sim.run(RunLimits {
            max_events: 10,
            max_time: u64::MAX,
        });
        let vc = vector_clocks(sim.trace());
        // First event is an init: vc = e_p incremented only.
        assert_eq!(vc[0].iter().sum::<usize>(), 1);
        // Every event's vc dominates its local predecessor's.
        let trace = sim.trace();
        for (i, ev) in trace.events().iter().enumerate() {
            for (j, other) in trace.events().iter().enumerate().take(i) {
                if other.process == ev.process {
                    assert!(vc[i].iter().zip(&vc[j]).all(|(a, b)| a >= b));
                }
            }
        }
    }
}
