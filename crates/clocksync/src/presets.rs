//! Named, prebuilt clock-synchronization system configurations.
//!
//! Sweep harnesses (the `abc-harness` crate and its `abc sweep` CLI) refer
//! to these by name instead of re-deriving `(n, f, band, Ξ)` tuples: each
//! preset pairs an Algorithm 1 system with a delay band whose ratio keeps
//! the execution inside (or deliberately near) the ABC admissibility region
//! for the stated `Ξ`.

use abc_core::Xi;

/// A named Algorithm 1 system + delay-band configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Preset {
    /// Stable name (CLI-addressable).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Number of processes.
    pub n: usize,
    /// Fault budget the algorithm is configured for (`n ≥ 3f + 1`).
    pub f: usize,
    /// Process slots actually occupied by Byzantine tick-rushers.
    pub byzantine: &'static [usize],
    /// Delay band `[lo, hi]`.
    pub lo: u64,
    /// Delay band `[lo, hi]`.
    pub hi: u64,
    /// The `Ξ` to check against, as `(num, den)`.
    pub xi: (i64, i64),
}

impl Preset {
    /// The preset's `Ξ` as a validated [`Xi`].
    #[must_use]
    pub fn xi(&self) -> Xi {
        Xi::from_fraction(self.xi.0, self.xi.1)
    }
}

/// All named presets, in stable order.
#[must_use]
pub fn all() -> &'static [Preset] {
    &[
        Preset {
            name: "quartet",
            description: "4 correct processes, comfortable band (admissible for Xi = 2)",
            n: 4,
            f: 1,
            byzantine: &[],
            lo: 10,
            hi: 19,
            xi: (2, 1),
        },
        Preset {
            name: "quartet-tight",
            description: "4 correct processes checked at the band's edge (Xi barely above hi/lo)",
            n: 4,
            f: 1,
            byzantine: &[],
            lo: 10,
            hi: 19,
            xi: (191, 100),
        },
        Preset {
            name: "septet-byz",
            description: "7 processes, 2 Byzantine tick-rushers, band [50, 100], Xi = 21/10",
            n: 7,
            f: 2,
            byzantine: &[5, 6],
            lo: 50,
            hi: 100,
            xi: (21, 10),
        },
        Preset {
            name: "decade-wide",
            description: "10 processes, 3 fault budget (unused), wide band [1, 8], Xi = 9",
            n: 10,
            f: 3,
            byzantine: &[],
            lo: 1,
            hi: 8,
            xi: (9, 1),
        },
    ]
}

/// Looks up a preset by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Preset> {
    all().iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for p in all() {
            assert!(p.n >= 3 * p.f + 1, "{}: n < 3f+1", p.name);
            assert!(p.byzantine.len() <= p.f, "{}: too many Byzantine", p.name);
            assert!(
                p.byzantine.iter().all(|s| *s < p.n),
                "{}: slot range",
                p.name
            );
            assert!(p.lo > 0 && p.lo <= p.hi, "{}: band", p.name);
            let _ = p.xi(); // validates Xi > 1
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names: Vec<&str> = all().iter().map(|p| p.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        assert_eq!(by_name("quartet").unwrap().n, 4);
        assert!(by_name("nope").is_none());
    }
}
