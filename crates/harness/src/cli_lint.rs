//! The `abc lint` subcommand: runs the `abc-lint` static analysis pass
//! (rule catalog R1–R5, see `crates/lint`) over a workspace tree and
//! exits nonzero on findings — the local mirror of the CI `lint` job.

use std::path::PathBuf;

use abc_lint::{lint_root, RuleFilter};

use crate::cli::{Args, EXIT_OK, EXIT_VIOLATION};

pub(crate) fn cmd_lint(args: &Args) -> Result<i32, String> {
    args.known(&["root", "json", "rule"])?;
    args.no_positionals()?;
    let json = args.parsed("json", false)?;
    let filter = match args.many("rule") {
        [] => RuleFilter::all(),
        rules => {
            // `--rule R1 --rule R3` and `--rule R1,R3` both work.
            let names: Vec<&str> = rules
                .iter()
                .flat_map(|r| r.split(','))
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .collect();
            RuleFilter::only(&names)?
        }
    };
    let root = match args.one("root")? {
        Some(r) => PathBuf::from(r),
        None => discover_root()?,
    };
    let report = lint_root(&root, &filter)?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.is_clean() {
        EXIT_OK
    } else {
        EXIT_VIOLATION
    })
}

/// The nearest ancestor of the current directory containing a
/// `lint.conf` (so `abc lint` works from any crate dir); falls back to
/// the current directory itself.
fn discover_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("getting current dir: {e}"))?;
    let mut dir = cwd.clone();
    loop {
        if dir.join("lint.conf").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Ok(cwd);
        }
    }
}
