//! Declarative scenario specifications: what to simulate, under which
//! delay adversary (with parameter ranges), with which fault plan, and how
//! many seeded repetitions.

use std::fmt;
use std::str::FromStr;

use abc_core::Xi;
use abc_sim::delay::{AdversarialSpan, BandDelay, DelayModel, FixedDelay, GrowingDelay, Lossy};
use abc_sim::RunLimits;

/// An inclusive arithmetic progression over `u64`: one sweep axis.
///
/// `Grid::fixed(v)` is the degenerate single-point axis. The CLI syntax is
/// `v` for a fixed value and `from..to..step` for a progression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// First value.
    pub from: u64,
    /// Inclusive upper bound (the last point is the largest
    /// `from + k*step <= to`).
    pub to: u64,
    /// Step between points (> 0 unless the grid is a single point).
    pub step: u64,
}

impl Grid {
    /// A single-point axis.
    #[must_use]
    pub fn fixed(v: u64) -> Grid {
        Grid {
            from: v,
            to: v,
            step: 1,
        }
    }

    /// An inclusive progression `from, from+step, …, <= to`.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0` or `from > to`.
    #[must_use]
    pub fn range(from: u64, to: u64, step: u64) -> Grid {
        assert!(step > 0, "grid step must be positive");
        assert!(from <= to, "grid bounds inverted");
        Grid { from, to, step }
    }

    /// The axis points, in order.
    #[must_use]
    pub fn points(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut v = self.from;
        while v <= self.to {
            out.push(v);
            match v.checked_add(self.step) {
                Some(next) => v = next,
                None => break,
            }
        }
        out
    }
}

impl FromStr for Grid {
    type Err = String;

    fn from_str(s: &str) -> Result<Grid, String> {
        let num = |v: &str| v.parse::<u64>().map_err(|e| format!("{v:?}: {e}"));
        match s.split("..").collect::<Vec<_>>().as_slice() {
            [v] => Ok(Grid::fixed(num(v)?)),
            [from, to, step] => {
                let (from, to, step) = (num(from)?, num(to)?, num(step)?);
                if step == 0 || from > to {
                    return Err(format!("invalid grid {s:?}: need from <= to and step > 0"));
                }
                Ok(Grid { from, to, step })
            }
            _ => Err(format!(
                "invalid grid {s:?}: expected `v` or `from..to..step`"
            )),
        }
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.from == self.to {
            write!(f, "{}", self.from)
        } else {
            write!(f, "{}..{}..{}", self.from, self.to, self.step)
        }
    }
}

/// A delay-model family with swept parameter axes (the paper's Section 2
/// adversary, parameterized). The cartesian product of the axes yields the
/// grid points of the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelaySweep {
    /// Every message takes exactly `d`.
    Fixed {
        /// Delay axis.
        d: Grid,
    },
    /// Uniform delays in `[lo, hi]` (points with `lo > hi` are skipped).
    Band {
        /// Lower-bound axis.
        lo: Grid,
        /// Upper-bound axis.
        hi: Grid,
    },
    /// [`GrowingDelay`]: band `[lo, hi]` scaled by `1 + t/tau`.
    Growing {
        /// Lower-bound axis.
        lo: Grid,
        /// Upper-bound axis.
        hi: Grid,
        /// Doubling-timescale axis.
        tau: Grid,
    },
    /// [`AdversarialSpan`]: victim links at `hi`, everything else at `lo`.
    Span {
        /// Fast-path delay axis.
        lo: Grid,
        /// Victim delay axis.
        hi: Grid,
        /// The victimized process.
        victim: usize,
    },
}

/// One concrete delay-model instantiation (a grid point of a
/// [`DelaySweep`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayPoint {
    /// Fixed delay `d`.
    Fixed {
        /// The delay.
        d: u64,
    },
    /// Uniform band `[lo, hi]`.
    Band {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Growing band `[lo, hi]`, timescale `tau`.
    Growing {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
        /// Doubling timescale.
        tau: u64,
    },
    /// Victimized process at `hi`, rest at `lo`.
    Span {
        /// Fast delay.
        lo: u64,
        /// Victim delay.
        hi: u64,
        /// Victim process index.
        victim: usize,
    },
}

impl DelaySweep {
    /// Expands the swept axes into concrete grid points (skipping empty
    /// bands where an axis combination yields `lo > hi`).
    #[must_use]
    pub fn points(&self) -> Vec<DelayPoint> {
        let mut out = Vec::new();
        match self {
            DelaySweep::Fixed { d } => {
                for d in d.points() {
                    out.push(DelayPoint::Fixed { d });
                }
            }
            DelaySweep::Band { lo, hi } => {
                for lo in lo.points() {
                    for hi in hi.points() {
                        if lo > 0 && lo <= hi {
                            out.push(DelayPoint::Band { lo, hi });
                        }
                    }
                }
            }
            DelaySweep::Growing { lo, hi, tau } => {
                for lo in lo.points() {
                    for hi in hi.points() {
                        for tau in tau.points() {
                            if lo > 0 && lo <= hi && tau > 0 {
                                out.push(DelayPoint::Growing { lo, hi, tau });
                            }
                        }
                    }
                }
            }
            DelaySweep::Span { lo, hi, victim } => {
                for lo in lo.points() {
                    for hi in hi.points() {
                        if lo > 0 && lo <= hi {
                            out.push(DelayPoint::Span {
                                lo,
                                hi,
                                victim: *victim,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl FromStr for DelaySweep {
    type Err = String;

    /// CLI syntax: `fixed:D`, `band:LO:HI`, `growing:LO:HI:TAU`,
    /// `span:LO:HI:VICTIM`; every numeric field is a [`Grid`]
    /// (`v` or `from..to..step`).
    fn from_str(s: &str) -> Result<DelaySweep, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let grid = |v: &str| v.parse::<Grid>();
        match parts.as_slice() {
            ["fixed", d] => Ok(DelaySweep::Fixed { d: grid(d)? }),
            ["band", lo, hi] => Ok(DelaySweep::Band {
                lo: grid(lo)?,
                hi: grid(hi)?,
            }),
            ["growing", lo, hi, tau] => Ok(DelaySweep::Growing {
                lo: grid(lo)?,
                hi: grid(hi)?,
                tau: grid(tau)?,
            }),
            ["span", lo, hi, victim] => Ok(DelaySweep::Span {
                lo: grid(lo)?,
                hi: grid(hi)?,
                victim: victim.parse().map_err(|e| format!("victim: {e}"))?,
            }),
            _ => Err(format!(
                "invalid delay spec {s:?}: expected fixed:D | band:LO:HI | \
                 growing:LO:HI:TAU | span:LO:HI:VICTIM"
            )),
        }
    }
}

impl fmt::Display for DelayPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayPoint::Fixed { d } => write!(f, "fixed[{d}]"),
            DelayPoint::Band { lo, hi } => write!(f, "band[{lo},{hi}]"),
            DelayPoint::Growing { lo, hi, tau } => write!(f, "growing[{lo},{hi}]/tau={tau}"),
            DelayPoint::Span { lo, hi, victim } => write!(f, "span[{lo},{hi}]->p{victim}"),
        }
    }
}

/// A delay model built from a [`DelayPoint`]: boxed behind the sim's
/// blanket `impl DelayModel for Box<D>`, so every sweep worker drives the
/// same `Simulation<u64, Lossy<BuiltDelay>>` type regardless of family,
/// and the box is constructed inside the worker thread (`Send`).
pub type BuiltDelay = Box<dyn DelayModel + Send>;

impl DelayPoint {
    /// Builds the concrete (seeded) delay model for one run, wrapped in a
    /// [`Lossy`] shell carrying the fault plan's dropped links.
    #[must_use]
    pub fn build(&self, seed: u64, dropped_links: &[(usize, usize)]) -> Lossy<BuiltDelay> {
        let inner: BuiltDelay = match *self {
            DelayPoint::Fixed { d } => Box::new(FixedDelay::new(d)),
            DelayPoint::Band { lo, hi } => Box::new(BandDelay::new(lo, hi, seed)),
            DelayPoint::Growing { lo, hi, tau } => Box::new(GrowingDelay::new(lo, hi, tau, seed)),
            DelayPoint::Span { lo, hi, victim } => {
                Box::new(AdversarialSpan::new(lo, hi, abc_core::ProcessId(victim)))
            }
        };
        let mut lossy = Lossy::new(inner);
        for (from, to) in dropped_links {
            lossy.drop_link(abc_core::ProcessId(*from), abc_core::ProcessId(*to));
        }
        lossy
    }
}

/// Which algorithm runs at the (correct) process slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's Algorithm 1 ([`abc_clocksync::TickGen`]): `n` processes
    /// configured for fault budget `f`; Byzantine fault-plan slots run
    /// [`abc_clocksync::byzantine::TickRusher`].
    ClockSync {
        /// System size.
        n: usize,
        /// Fault budget (`n >= 3f + 1`).
        f: usize,
    },
    /// All-to-all gossip: broadcast at wake-up, echo `m + 1` to each sender
    /// until a per-process reply budget is spent. Byzantine fault-plan
    /// slots run mute.
    Gossip {
        /// System size.
        n: usize,
        /// Per-process reply budget.
        budget: u32,
    },
}

impl Protocol {
    /// Number of process slots.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        match self {
            Protocol::ClockSync { n, .. } | Protocol::Gossip { n, .. } => *n,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::ClockSync { n, f: fb } => write!(f, "clocksync(n={n},f={fb})"),
            Protocol::Gossip { n, budget } => write!(f, "gossip(n={n},budget={budget})"),
        }
    }
}

/// The fault plan applied to every run: crash faults, Byzantine slots, and
/// dropped directed links.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(slot, steps)`: the process at `slot` crashes after `steps`
    /// completed steps (it keeps receiving, per the paper's receive/process
    /// split). Crash-faulty slots count against the faulty set.
    pub crash: Vec<(usize, usize)>,
    /// Slots occupied by Byzantine adversaries.
    pub byzantine: Vec<usize>,
    /// Directed links on which every message is dropped.
    pub dropped_links: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// No faults at all.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Validates slot indices against the protocol size.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the out-of-range entry.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (slot, _) in &self.crash {
            if *slot >= n {
                return Err(format!("crash slot {slot} out of range (n = {n})"));
            }
        }
        for slot in &self.byzantine {
            if *slot >= n {
                return Err(format!("byzantine slot {slot} out of range (n = {n})"));
            }
            if self.crash.iter().any(|(s, _)| s == slot) {
                return Err(format!("slot {slot} is both crash and Byzantine"));
            }
        }
        for (from, to) in &self.dropped_links {
            if *from >= n || *to >= n {
                return Err(format!("dropped link {from}->{to} out of range (n = {n})"));
            }
        }
        Ok(())
    }
}

/// A complete scenario sweep: protocol, swept delay adversary, fault plan,
/// run limits, the `Ξ` to monitor against, and the seeded repetition count.
///
/// The sweep executes `delay.points().len() * runs_per_point` independent
/// simulations; run `i` draws its randomness from splitmix64 stream `i` of
/// `base_seed` (`SmallRng::seed_stream`), so results are identical at any
/// worker-thread count.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Display name (reports echo it).
    pub name: String,
    /// The protocol under test.
    pub protocol: Protocol,
    /// The swept delay adversary.
    pub delay: DelaySweep,
    /// Faults applied to every run.
    pub faults: FaultPlan,
    /// Per-run budgets.
    pub limits: RunLimits,
    /// The synchrony parameter each run is monitored against.
    pub xi: Xi,
    /// Seeded repetitions per grid point.
    pub runs_per_point: usize,
    /// Master seed for stream-splitting.
    pub base_seed: u64,
    /// Engine worker threads per simulation
    /// ([`abc_sim::Simulation::set_sim_workers`]; values below 1 are
    /// clamped to 1 = the sequential engine). Traces and verdicts are
    /// byte-identical at any value; workers only change wall-clock time
    /// on wide scenarios.
    pub sim_workers: usize,
}

impl ScenarioSpec {
    /// Total number of runs (`grid points × runs per point`).
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.delay.points().len() * self.runs_per_point
    }

    /// Builds a spec from a named clock-sync preset
    /// ([`abc_clocksync::presets`]).
    #[must_use]
    pub fn from_preset(
        preset: &abc_clocksync::presets::Preset,
        runs_per_point: usize,
        base_seed: u64,
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: preset.name.to_string(),
            protocol: Protocol::ClockSync {
                n: preset.n,
                f: preset.f,
            },
            delay: DelaySweep::Band {
                lo: Grid::fixed(preset.lo),
                hi: Grid::fixed(preset.hi),
            },
            faults: FaultPlan {
                crash: Vec::new(),
                byzantine: preset.byzantine.to_vec(),
                dropped_links: Vec::new(),
            },
            limits: RunLimits {
                max_events: 2_000,
                max_time: u64::MAX,
            },
            xi: preset.xi(),
            runs_per_point,
            base_seed,
            sim_workers: 1,
        }
    }

    /// Validates the spec (fault plan vs. system size, non-empty grid).
    ///
    /// # Errors
    ///
    /// A human-readable message describing the problem.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.protocol.num_processes();
        if n == 0 {
            return Err("protocol has zero processes".into());
        }
        self.faults.validate(n)?;
        if let Protocol::ClockSync { n, f } = self.protocol {
            if n < 3 * f + 1 {
                return Err(format!("clocksync needs n >= 3f+1, got n={n}, f={f}"));
            }
        }
        if self.delay.points().is_empty() {
            return Err("delay sweep has no grid points".into());
        }
        if let DelaySweep::Span { victim, .. } = self.delay {
            if victim >= n {
                return Err(format!("span victim {victim} out of range (n = {n})"));
            }
        }
        if self.runs_per_point == 0 {
            return Err("runs_per_point must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_and_parsing() {
        assert_eq!(Grid::fixed(5).points(), vec![5]);
        assert_eq!(Grid::range(2, 9, 3).points(), vec![2, 5, 8]);
        assert_eq!("7".parse::<Grid>().unwrap(), Grid::fixed(7));
        assert_eq!("1..9..4".parse::<Grid>().unwrap(), Grid::range(1, 9, 4));
        assert!("1..0..2".parse::<Grid>().is_err());
        assert!("x".parse::<Grid>().is_err());
        assert_eq!(Grid::range(2, 9, 3).to_string(), "2..9..3");
    }

    #[test]
    fn delay_sweep_expands_cartesian_grids() {
        let sweep: DelaySweep = "band:1..3..1:4".parse().unwrap();
        assert_eq!(sweep.points().len(), 3);
        let sweep: DelaySweep = "growing:10:19:50..150..50".parse().unwrap();
        let pts = sweep.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].to_string(), "growing[10,19]/tau=50");
        // lo > hi combinations are skipped, not errors.
        let sweep: DelaySweep = "band:1..10..4:5".parse().unwrap();
        assert_eq!(sweep.points().len(), 2); // lo = 1, 5; lo = 9 skipped
        assert!("pigeon:1".parse::<DelaySweep>().is_err());
    }

    #[test]
    fn spec_validation_catches_mistakes() {
        let mut spec = ScenarioSpec {
            name: "t".into(),
            protocol: Protocol::ClockSync { n: 4, f: 1 },
            delay: "band:10:19".parse().unwrap(),
            faults: FaultPlan::none(),
            limits: RunLimits::default(),
            xi: Xi::from_integer(2),
            runs_per_point: 8,
            base_seed: 1,
            sim_workers: 1,
        };
        assert!(spec.validate().is_ok());
        assert_eq!(spec.total_runs(), 8);
        spec.faults.byzantine = vec![9];
        assert!(spec.validate().is_err());
        spec.faults.byzantine = vec![1];
        spec.faults.crash = vec![(1, 3)];
        assert!(spec.validate().is_err(), "slot both crash and Byzantine");
        spec.faults = FaultPlan::none();
        spec.protocol = Protocol::ClockSync { n: 3, f: 1 };
        assert!(spec.validate().is_err(), "n < 3f+1");
    }

    #[test]
    fn presets_convert_to_specs() {
        let preset = abc_clocksync::presets::by_name("septet-byz").unwrap();
        let spec = ScenarioSpec::from_preset(preset, 4, 7);
        spec.validate().unwrap();
        assert_eq!(spec.protocol.num_processes(), 7);
        assert_eq!(spec.faults.byzantine, vec![5, 6]);
        assert_eq!(spec.total_runs(), 4);
    }
}
