//! The deterministic multi-threaded sweep runner and its aggregate report.
//!
//! A sweep fans `spec.total_runs()` independent simulations out over a
//! `std::thread` work queue. Determinism is by construction:
//!
//! * run `i` draws all randomness from splitmix64 stream `i` of the spec's
//!   base seed (`SmallRng::seed_stream`) — workers never share generator
//!   state;
//! * workers only *claim* run indices from an atomic counter; results are
//!   stored by index and aggregated in index order afterwards.
//!
//! Hence the [`SweepReport`]'s aggregate text is byte-identical at any
//! worker-thread count (asserted by `tests/determinism.rs` at 1, 2, and 8
//! workers over 512 runs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use abc_clocksync::byzantine::TickRusher;
use abc_clocksync::TickGen;
use abc_core::cycle::WitnessSummary;
use abc_core::monitor::{IncrementalChecker, MonitorStats};
use abc_core::{ProcessId, Xi};
use abc_rational::Ratio;
use abc_sim::{Context, CrashAt, Mute, Process, RunStats, Simulation, Trace};
use rand::rngs::SmallRng;
use rand::RngCore;

use crate::spec::{DelayPoint, Protocol, ScenarioSpec};

/// The first ABC violation of one run, as latched by the online monitor.
#[derive(Clone, Debug)]
pub struct ViolationInfo {
    /// Index of the trace event whose append closed the violating cycle.
    pub at_event: usize,
    /// The witness summary (process path + ratio).
    pub witness: WitnessSummary,
}

impl ViolationInfo {
    /// The witness's `|Z−|/|Z+|` ratio.
    ///
    /// # Panics
    ///
    /// Never: violation witnesses are relevant cycles, which always have
    /// forward messages.
    #[must_use]
    pub fn ratio(&self) -> Ratio {
        self.witness
            .classification
            .ratio()
            .expect("violation witnesses are relevant")
    }
}

/// The result of one swept run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Global run index (also the randomness stream index).
    pub run_index: usize,
    /// Index into the delay grid.
    pub point_index: usize,
    /// The seed handed to the delay model.
    pub seed: u64,
    /// Engine statistics.
    pub stats: RunStats,
    /// First violation, if the monitored `Ξ` was breached.
    pub violation: Option<ViolationInfo>,
    /// The run's final margin: the maximum relevant-cycle ratio when
    /// monitoring stopped (at the latch for violating runs, at the end of
    /// the trace otherwise). `None` when no relevant cycle ever formed.
    pub final_margin: Option<Ratio>,
    /// The minimum over the run of the headroom `Ξ − ratio(t)`. The
    /// relevant-cycle ratio is monotone nondecreasing over a growing
    /// trace (arcs are only added), so the minimum is attained when
    /// monitoring stops and equals `Ξ −` [`RunOutcome::final_margin`];
    /// `<= 0` exactly on violating runs, `None` with no relevant cycle.
    pub min_margin_over_time: Option<Ratio>,
    /// The full trace — kept only when the sweep was asked to retain
    /// violating traces (for offline replay / persistence).
    pub trace: Option<Trace>,
}

/// Sweep execution options.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Retain the trace of every violating run in its [`RunOutcome`].
    pub keep_violating_traces: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            threads: 1,
            keep_violating_traces: false,
        }
    }
}

/// Per-grid-point aggregates.
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// The grid point's display label.
    pub label: String,
    /// Runs executed at this point.
    pub runs: usize,
    /// Runs that violated the monitored `Ξ`.
    pub violations: usize,
    /// Largest first-violation ratio observed at this point.
    pub max_ratio: Option<Ratio>,
    /// Smallest final margin over the point's runs (among runs where a
    /// relevant cycle formed at all).
    pub margin_min: Option<Ratio>,
    /// Largest final margin over the point's runs — the heatmap cell
    /// value (`None` when no run formed a relevant cycle).
    pub margin_max: Option<Ratio>,
}

/// Aggregates of a whole sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Spec name.
    pub name: String,
    /// Rendered protocol.
    pub protocol: String,
    /// The monitored `Ξ`.
    pub xi: Xi,
    /// Total runs executed.
    pub total_runs: usize,
    /// Runs with a violation (the violation census headline).
    pub violations: usize,
    /// Per-grid-point census.
    pub points: Vec<PointSummary>,
    /// Distribution of first-violation cycle ratios over all runs.
    pub ratio_histogram: Vec<(Ratio, usize)>,
    /// The earliest violating run (by run index) and its violation.
    pub first_violation: Option<(usize, ViolationInfo)>,
    /// Sum of executed events over all runs.
    pub events_total: u64,
    /// Smallest per-run event count.
    pub events_min: u64,
    /// Largest per-run event count.
    pub events_max: u64,
    /// Messages handed to the delay models, summed.
    pub messages_sent: u64,
    /// Messages delivered, summed.
    pub messages_delivered: u64,
    /// Messages dropped, summed.
    pub messages_dropped: u64,
    /// Largest payload-slab high-water mark over all runs.
    pub slab_peak_max: usize,
    /// Runs that reached quiescence within their budgets.
    pub quiescent_runs: usize,
    /// Largest final event time over all runs.
    pub final_time_max: u64,
    /// Wall-clock time of the whole sweep (excluded from the deterministic
    /// aggregate text).
    pub wall_clock: Duration,
    /// All per-run outcomes, in run order.
    pub outcomes: Vec<RunOutcome>,
}

impl SweepReport {
    /// The deterministic aggregate rendering: everything except wall-clock
    /// time. Byte-identical across worker-thread counts for a fixed spec.
    #[must_use]
    pub fn aggregate_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {}: protocol={} xi={} runs={} points={}",
            self.name,
            self.protocol,
            self.xi,
            self.total_runs,
            self.points.len()
        );
        for p in &self.points {
            let _ = write!(
                out,
                "  point {}: runs={} violations={}",
                p.label, p.runs, p.violations
            );
            if let Some(r) = &p.max_ratio {
                let _ = write!(out, " max_ratio={r}");
            }
            match (&p.margin_min, &p.margin_max) {
                (Some(lo), Some(hi)) => {
                    let _ = writeln!(out, " margin={lo}..{hi}");
                }
                _ => {
                    let _ = writeln!(out, " margin=none");
                }
            }
        }
        let _ = writeln!(out, "margin heatmap: [{}]", self.margin_heatmap());
        let _ = writeln!(out, "violations: {}/{}", self.violations, self.total_runs);
        match &self.first_violation {
            Some((run, v)) => {
                let _ = writeln!(
                    out,
                    "first violation: run {} at event {} — {}",
                    run, v.at_event, v.witness
                );
            }
            None => {
                let _ = writeln!(out, "first violation: none");
            }
        }
        if self.ratio_histogram.is_empty() {
            let _ = writeln!(out, "ratio histogram: empty");
        } else {
            let _ = write!(out, "ratio histogram:");
            for (r, count) in &self.ratio_histogram {
                let _ = write!(out, " {r}x{count}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "events: total={} min={} max={}",
            self.events_total, self.events_min, self.events_max
        );
        let _ = writeln!(
            out,
            "messages: sent={} delivered={} dropped={}",
            self.messages_sent, self.messages_delivered, self.messages_dropped
        );
        let _ = writeln!(
            out,
            "slab_peak_max={} quiescent={}/{} final_time_max={}",
            self.slab_peak_max, self.quiescent_runs, self.total_runs, self.final_time_max
        );
        out
    }

    /// One heatmap cell per delay-grid point, keyed by the point's
    /// largest final margin relative to the monitored `Ξ`:
    ///
    /// * `-` — no run formed a relevant cycle;
    /// * `.` — max margin below `Ξ/2`;
    /// * `:` — below `3Ξ/4`;
    /// * `=` — below `9Ξ/10`;
    /// * `+` — below `Ξ` (inside the early-warning band);
    /// * `#` — at or above `Ξ` (some run violated).
    ///
    /// Comparisons are exact rational arithmetic (`2r < Ξ` etc.), so the
    /// heatmap is as deterministic as the rest of the aggregate text.
    #[must_use]
    pub fn margin_heatmap(&self) -> String {
        let xi = self.xi.as_ratio();
        self.points
            .iter()
            .map(|p| match &p.margin_max {
                None => '-',
                Some(r) => {
                    // `r < (n/d)·Ξ` as the integer comparison `d·r < n·Ξ`.
                    let below = |n: i64, d: i64| {
                        &(r * &Ratio::from_integer(d)) < &(xi * &Ratio::from_integer(n))
                    };
                    if below(1, 2) {
                        '.'
                    } else if below(3, 4) {
                        ':'
                    } else if below(9, 10) {
                        '='
                    } else if r < xi {
                        '+'
                    } else {
                        '#'
                    }
                }
            })
            .collect()
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.aggregate_text())?;
        write!(f, "wall clock: {:?}", self.wall_clock)
    }
}

/// The harness's gossip protocol: broadcast at wake-up, echo `m + 1` to
/// each sender until the reply budget is spent.
struct Gossip {
    budget: u32,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(from, msg + 1);
            ctx.set_label(*msg);
        }
    }
}

/// Streams `trace` into a fresh online monitor
/// ([`Trace::replay_into_monitor_until_violation`]), stopping at the first
/// violation; returns the monitor stats at stop time, the violation (if
/// any) with the index of the closing event, and the final margin — the
/// maximum relevant-cycle ratio when monitoring stopped (`None` when no
/// relevant cycle formed).
///
/// # Errors
///
/// The rendered [`abc_core::check::CheckError`] if `Ξ` exceeds the
/// monitor's integer range.
pub fn monitor_trace(
    trace: &Trace,
    xi: &Xi,
) -> Result<(MonitorStats, Option<ViolationInfo>, Option<Ratio>), String> {
    let (mon, violation_at) = trace
        .replay_into_monitor_until_violation(xi)
        .map_err(|e| e.to_string())?;
    let violation = violation_at.map(|at_event| ViolationInfo {
        at_event,
        witness: mon
            .violation()
            .expect("a latched violation accompanies the index")
            .summarize(mon.graph()),
    });
    let margin = mon
        .current_margin()
        .map_err(|e| e.to_string())?
        .map(|m| m.ratio);
    Ok((mon.stats(), violation, margin))
}

fn spawn_clocksync(
    sim: &mut Simulation<u64, abc_sim::delay::Lossy<crate::spec::BuiltDelay>>,
    n: usize,
    f: usize,
    spec: &ScenarioSpec,
) {
    for slot in 0..n {
        if spec.faults.byzantine.contains(&slot) {
            sim.add_faulty_process(TickRusher::new(3));
        } else if let Some((_, steps)) = spec.faults.crash.iter().find(|(s, _)| *s == slot) {
            sim.add_faulty_process(CrashAt::new(TickGen::new(n, f), *steps));
        } else {
            sim.add_process(TickGen::new(n, f));
        }
    }
}

fn spawn_gossip(
    sim: &mut Simulation<u64, abc_sim::delay::Lossy<crate::spec::BuiltDelay>>,
    n: usize,
    budget: u32,
    spec: &ScenarioSpec,
) {
    for slot in 0..n {
        if spec.faults.byzantine.contains(&slot) {
            sim.add_faulty_process(Mute);
        } else if let Some((_, steps)) = spec.faults.crash.iter().find(|(s, _)| *s == slot) {
            sim.add_faulty_process(CrashAt::new(Gossip { budget }, *steps));
        } else {
            sim.add_process(Gossip { budget });
        }
    }
}

/// Builds the seeded delay model and process set for run `run_index` and
/// simulates it, returning the simulation (trace inside), the engine
/// stats, and the per-run seed. The deterministic substrate shared by
/// [`run_one`] and [`generate_trace`].
fn simulate_run(
    spec: &ScenarioSpec,
    points: &[DelayPoint],
    run_index: usize,
) -> (
    Simulation<u64, abc_sim::delay::Lossy<crate::spec::BuiltDelay>>,
    RunStats,
    u64,
) {
    let point_index = run_index / spec.runs_per_point;
    let point = &points[point_index];
    // Stream-split: run i's randomness is independent of every other run's
    // at any thread count.
    let seed = SmallRng::seed_stream(spec.base_seed, run_index as u64).next_u64();
    let delay = point.build(seed, &spec.faults.dropped_links);
    let mut sim: Simulation<u64, _> = Simulation::new(delay);
    sim.set_sim_workers(spec.sim_workers.max(1));
    match spec.protocol {
        Protocol::ClockSync { n, f } => spawn_clocksync(&mut sim, n, f, spec),
        Protocol::Gossip { n, budget } => spawn_gossip(&mut sim, n, budget, spec),
    }
    let stats = sim.run(spec.limits);
    (sim, stats, seed)
}

/// Simulates run `run_index` of the sweep and returns its full trace plus
/// engine stats — the workload generator behind `abc loadgen`, which
/// replays sweep-generated traces against a running `abc-service` instead
/// of monitoring them in-process.
#[must_use]
pub fn generate_trace(
    spec: &ScenarioSpec,
    points: &[DelayPoint],
    run_index: usize,
) -> (Trace, RunStats) {
    let (sim, stats, _) = simulate_run(spec, points, run_index);
    (sim.into_trace(), stats)
}

/// Executes run `run_index` of the sweep: builds the seeded delay model and
/// process set, simulates, and monitors the trace against the spec's `Ξ`.
#[must_use]
pub fn run_one(
    spec: &ScenarioSpec,
    points: &[DelayPoint],
    run_index: usize,
    keep_violating_trace: bool,
) -> RunOutcome {
    let point_index = run_index / spec.runs_per_point;
    let (sim, stats, seed) = simulate_run(spec, points, run_index);
    let trace = sim.trace();
    let (_, violation, final_margin) = monitor_trace(trace, &spec.xi)
        .expect("Xi monitorability is validated before the sweep starts");
    let min_margin_over_time = final_margin.as_ref().map(|m| spec.xi.as_ratio() - m);
    let trace = (keep_violating_trace && violation.is_some()).then(|| trace.clone());
    RunOutcome {
        run_index,
        point_index,
        seed,
        stats,
        violation,
        final_margin,
        min_margin_over_time,
        trace,
    }
}

/// Runs the whole sweep over a work queue of `options.threads` workers and
/// aggregates the [`SweepReport`] in run order.
///
/// # Errors
///
/// A human-readable message if the spec is invalid or `Ξ` is not
/// monitorable.
pub fn run_sweep(spec: &ScenarioSpec, options: SweepOptions) -> Result<SweepReport, String> {
    spec.validate()?;
    // Fail fast (instead of inside a worker) if Xi overflows the monitor.
    IncrementalChecker::new(spec.protocol.num_processes(), &spec.xi)
        .map_err(|e| format!("Xi not monitorable: {e}"))?;

    let points = spec.delay.points();
    let total = spec.total_runs();
    let threads = options.threads.max(1).min(total.max(1));
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<RunOutcome>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let _span = abc_obs::span("sweep.run");
                let outcome = run_one(spec, &points, i, options.keep_violating_traces);
                collected.lock().expect("collector poisoned").push(outcome);
            });
        }
    });
    let mut outcomes = collected.into_inner().expect("collector poisoned");
    outcomes.sort_by_key(|o| o.run_index);
    let wall_clock = started.elapsed();

    // Aggregate strictly in run order: the report is a pure function of
    // (spec, outcomes), independent of scheduling.
    let mut points_summary: Vec<PointSummary> = points
        .iter()
        .map(|p| PointSummary {
            label: p.to_string(),
            runs: 0,
            violations: 0,
            max_ratio: None,
            margin_min: None,
            margin_max: None,
        })
        .collect();
    let mut histogram: BTreeMap<Ratio, usize> = BTreeMap::new();
    let mut report = SweepReport {
        name: spec.name.clone(),
        protocol: spec.protocol.to_string(),
        xi: spec.xi.clone(),
        total_runs: total,
        violations: 0,
        points: Vec::new(),
        ratio_histogram: Vec::new(),
        first_violation: None,
        events_total: 0,
        events_min: u64::MAX,
        events_max: 0,
        messages_sent: 0,
        messages_delivered: 0,
        messages_dropped: 0,
        slab_peak_max: 0,
        quiescent_runs: 0,
        final_time_max: 0,
        wall_clock,
        outcomes: Vec::new(),
    };
    for o in &outcomes {
        let ps = &mut points_summary[o.point_index];
        ps.runs += 1;
        if let Some(m) = &o.final_margin {
            if ps.margin_min.as_ref().is_none_or(|lo| *m < *lo) {
                ps.margin_min = Some(m.clone());
            }
            if ps.margin_max.as_ref().is_none_or(|hi| *hi < *m) {
                ps.margin_max = Some(m.clone());
            }
        }
        if let Some(v) = &o.violation {
            let ratio = v.ratio();
            ps.violations += 1;
            if ps.max_ratio.as_ref().is_none_or(|m| *m < ratio) {
                ps.max_ratio = Some(ratio.clone());
            }
            report.violations += 1;
            *histogram.entry(ratio).or_insert(0) += 1;
            if report.first_violation.is_none() {
                report.first_violation = Some((o.run_index, v.clone()));
            }
        }
        let events = o.stats.events_executed as u64;
        report.events_total += events;
        report.events_min = report.events_min.min(events);
        report.events_max = report.events_max.max(events);
        report.messages_sent += o.stats.messages_sent as u64;
        report.messages_delivered += o.stats.messages_delivered as u64;
        report.messages_dropped += o.stats.messages_dropped as u64;
        report.slab_peak_max = report.slab_peak_max.max(o.stats.payload_slab_peak);
        report.quiescent_runs += usize::from(o.stats.quiescent);
        report.final_time_max = report.final_time_max.max(o.stats.final_time);
    }
    if report.events_min == u64::MAX {
        report.events_min = 0;
    }
    report.points = points_summary;
    report.ratio_histogram = histogram.into_iter().collect();
    report.outcomes = outcomes;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DelaySweep, FaultPlan, Grid};
    use abc_sim::RunLimits;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            protocol: Protocol::ClockSync { n: 4, f: 1 },
            delay: DelaySweep::Band {
                lo: Grid::fixed(10),
                hi: Grid::fixed(19),
            },
            faults: FaultPlan::none(),
            limits: RunLimits {
                max_events: 150,
                max_time: u64::MAX,
            },
            xi: Xi::from_integer(2),
            runs_per_point: 6,
            base_seed: 11,
            sim_workers: 1,
        }
    }

    #[test]
    fn comfortable_band_has_no_violations() {
        let report = run_sweep(&small_spec(), SweepOptions::default()).unwrap();
        assert_eq!(report.total_runs, 6);
        assert_eq!(report.violations, 0);
        assert!(report.first_violation.is_none());
        assert_eq!(report.events_min, 150);
        assert!(report.messages_delivered > 0);
        let text = report.aggregate_text();
        assert!(text.contains("violations: 0/6"), "{text}");
        // No violation ⇒ every formed margin stays below Ξ, the headroom
        // is positive, and no heatmap cell saturates.
        let xi = report.xi.as_ratio().clone();
        for o in &report.outcomes {
            if let Some(m) = &o.final_margin {
                assert!(*m < xi, "admissible run with margin {m} >= {xi}");
                let head = o.min_margin_over_time.as_ref().unwrap();
                assert_eq!(*head, &xi - m);
                assert!(head.is_positive());
            } else {
                assert!(o.min_margin_over_time.is_none());
            }
        }
        assert!(
            !report.margin_heatmap().contains('#'),
            "{}",
            report.margin_heatmap()
        );
    }

    #[test]
    fn tight_xi_produces_violations_with_witnesses() {
        let mut spec = small_spec();
        // A wide band [1, 6] reorders enough for relevant cycles of ratio
        // 2–3; Xi = 3/2 puts those over the line.
        spec.delay = DelaySweep::Band {
            lo: Grid::fixed(1),
            hi: Grid::fixed(6),
        };
        spec.xi = Xi::from_fraction(3, 2);
        spec.runs_per_point = 8;
        let report = run_sweep(
            &spec,
            SweepOptions {
                threads: 2,
                keep_violating_traces: true,
            },
        )
        .unwrap();
        assert!(report.violations > 0, "{}", report.aggregate_text());
        let (_, v) = report.first_violation.as_ref().unwrap();
        assert!(v.ratio() >= *spec.xi.as_ratio());
        assert!(!report.ratio_histogram.is_empty());
        // A violating run's final margin is the latched witness ratio, so
        // its point's heatmap cell saturates and its headroom is <= 0.
        assert!(report.margin_heatmap().contains('#'));
        let violating_run = report
            .outcomes
            .iter()
            .find(|o| o.violation.is_some())
            .unwrap();
        assert_eq!(
            violating_run.final_margin.as_ref().unwrap(),
            &violating_run.violation.as_ref().unwrap().ratio()
        );
        assert!(!violating_run
            .min_margin_over_time
            .as_ref()
            .unwrap()
            .is_positive());
        // Violating traces were retained and re-check offline to the same
        // verdict.
        let violating = report
            .outcomes
            .iter()
            .find(|o| o.violation.is_some())
            .unwrap();
        let trace = violating.trace.as_ref().expect("trace kept");
        let reparsed = Trace::from_text(&trace.to_text()).unwrap();
        let (_, v2, _) = monitor_trace(&reparsed, &spec.xi).unwrap();
        assert_eq!(
            v2.unwrap().at_event,
            violating.violation.as_ref().unwrap().at_event
        );
    }

    #[test]
    fn byzantine_and_crash_slots_are_exempt_and_marked() {
        let mut spec = small_spec();
        spec.faults.byzantine = vec![3];
        spec.faults.crash = vec![(2, 5)];
        spec.runs_per_point = 2;
        let report = run_sweep(
            &spec,
            SweepOptions {
                threads: 1,
                keep_violating_traces: false,
            },
        )
        .unwrap();
        assert_eq!(report.violations, 0, "faulty senders are exempt");
    }

    #[test]
    fn gossip_protocol_and_dropped_links_run() {
        let mut spec = small_spec();
        spec.protocol = Protocol::Gossip { n: 3, budget: 10 };
        spec.faults.dropped_links = vec![(0, 2)];
        spec.runs_per_point = 3;
        let report = run_sweep(&spec, SweepOptions::default()).unwrap();
        assert!(report.messages_dropped > 0, "dropped link saw traffic");
        assert!(report.quiescent_runs > 0, "gossip budgets drain");
    }

    #[test]
    fn thread_count_does_not_change_aggregates() {
        let mut spec = small_spec();
        spec.runs_per_point = 16;
        let a = run_sweep(
            &spec,
            SweepOptions {
                threads: 1,
                keep_violating_traces: false,
            },
        )
        .unwrap();
        let b = run_sweep(
            &spec,
            SweepOptions {
                threads: 5,
                keep_violating_traces: false,
            },
        )
        .unwrap();
        assert_eq!(a.aggregate_text(), b.aggregate_text());
        // Per-run seeds agree too (stream splitting is index-based).
        let seeds = |r: &SweepReport| r.outcomes.iter().map(|o| o.seed).collect::<Vec<_>>();
        assert_eq!(seeds(&a), seeds(&b));
    }
}
