//! The `abc` command line: `sweep`, `check`, `monitor`, `replay`, `list`,
//! plus the networked `serve`, `feed`, and `loadgen` (thin drivers over
//! the `abc-service` crate).
//!
//! Argument parsing is hand-rolled (no external deps); every subcommand is
//! a pure function from parsed arguments to an exit code, so the whole CLI
//! is exercisable from integration tests without spawning processes.
//!
//! Exit codes: `0` success / admissible, `1` usage or input error, `2`
//! analysis ran and found an ABC violation.

use std::collections::HashMap;

use abc_core::{check, Xi};
use abc_sim::{RunLimits, Trace};

use crate::spec::{DelaySweep, FaultPlan, Protocol, ScenarioSpec};
use crate::sweep::{monitor_trace, run_sweep, SweepOptions};

/// Exit code: analysis succeeded and the execution is admissible.
pub const EXIT_OK: i32 = 0;
/// Exit code: usage or input error.
pub const EXIT_USAGE: i32 = 1;
/// Exit code: analysis succeeded and found a violation.
pub const EXIT_VIOLATION: i32 = 2;

const USAGE: &str = "\
abc — sweep, persist, and re-check ABC-model executions

USAGE:
  abc sweep  (--preset NAME | --protocol clocksync --n N --f F |
              --protocol gossip --n N --budget B)
             [--delay SPEC] --xi XI [--runs N] [--seed S] [--threads T]
             [--max-events E] [--sim-workers W] [--crash SLOT@STEPS]...
             [--byz SLOT]... [--drop FROM:TO]... [--save-violations DIR]
             [--name NAME]
  abc check   (FILE | --scenario NAME) --xi XI
  abc monitor FILE --xi XI
  abc replay  FILE
  abc list
  abc serve   [--addr A] [--status-addr A] [--shards N] [--xi XI]
              [--max-line BYTES] [--max-frame BYTES] [--max-processes N]
              [--prune-horizon H] [--warn-margin P/Q] [--margin-tracking BOOL]
              [--forensics-dir DIR] [--forensics-tail N] [--trace-out FILE]
  abc feed    FILE --addr A --xi XI [--binary] [--margin-every N]
  abc loadgen --addr A [--connections C] [--traces N] [--preset NAME]
              [--delay SPEC] [--xi XI] [--max-events E] [--seed S]
              [--sim-workers W] [--verify BOOL] [--binary]
  abc inspect FILE        (a .forensics bundle or a Chrome trace JSON)
  abc lint    [--root DIR] [--json] [--rule R1[,R2…]]...

DELAY SPECS (numeric fields accept `v` or `from..to..step` grids):
  fixed:D | band:LO:HI | growing:LO:HI:TAU | span:LO:HI:VICTIM

EXIT CODES: 0 admissible/ok, 1 usage or input error, 2 violation found.";

/// Flags that are pure switches: present (true) or absent (false), never
/// followed by a value.
const SWITCH_FLAGS: &[&str] = &["binary", "json"];

/// Parsed flags: `--key value` pairs (repeatable) plus positionals.
pub(crate) struct Args {
    pub(crate) positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
}

impl Args {
    pub(crate) fn parse(args: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags: HashMap<String, Vec<String>> = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if SWITCH_FLAGS.contains(&key) {
                    flags
                        .entry(key.to_string())
                        .or_default()
                        .push("true".into());
                    continue;
                }
                // No flag of this CLI takes a value beginning with `--`,
                // so a following flag means the value was forgotten —
                // reject instead of silently consuming the next flag.
                let value = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags
                    .entry(key.to_string())
                    .or_default()
                    .push(value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    pub(crate) fn no_positionals(&self) -> Result<(), String> {
        match self.positional.first() {
            None => Ok(()),
            Some(p) => Err(format!("unexpected argument {p:?}")),
        }
    }

    pub(crate) fn one(&self, key: &str) -> Result<Option<&str>, String> {
        match self.flags.get(key).map(Vec::as_slice) {
            None => Ok(None),
            Some([v]) => Ok(Some(v)),
            Some(_) => Err(format!("--{key} given more than once")),
        }
    }

    pub(crate) fn required(&self, key: &str) -> Result<&str, String> {
        self.one(key)?.ok_or_else(|| format!("--{key} is required"))
    }

    pub(crate) fn many(&self, key: &str) -> &[String] {
        self.flags.get(key).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.one(key)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    pub(crate) fn known(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

/// Runs the CLI on pre-split arguments (everything after the program
/// name); prints to stdout and returns the exit code.
///
/// # Errors
///
/// A human-readable message for usage/input errors (callers print it to
/// stderr and exit with [`EXIT_USAGE`]).
pub fn run(args: &[String]) -> Result<i32, String> {
    let Some((cmd, rest)) = args.split_first() else {
        println!("{USAGE}");
        return Ok(EXIT_USAGE);
    };
    match cmd.as_str() {
        "sweep" => cmd_sweep(&Args::parse(rest)?),
        "check" => cmd_check(&Args::parse(rest)?),
        "monitor" => cmd_monitor(&Args::parse(rest)?),
        "replay" => cmd_replay(&Args::parse(rest)?),
        "list" => cmd_list(&Args::parse(rest)?),
        "serve" => crate::cli_service::cmd_serve(&Args::parse(rest)?),
        "feed" => crate::cli_service::cmd_feed(&Args::parse(rest)?),
        "loadgen" => crate::cli_service::cmd_loadgen(&Args::parse(rest)?),
        "inspect" => crate::cli_service::cmd_inspect(&Args::parse(rest)?),
        "lint" => crate::cli_lint::cmd_lint(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(EXIT_OK)
        }
        other => Err(format!("unknown subcommand {other:?} (try `abc help`)")),
    }
}

fn parse_fault_plan(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    for c in args.many("crash") {
        let (slot, steps) = c
            .split_once('@')
            .ok_or_else(|| format!("--crash {c:?}: expected SLOT@STEPS"))?;
        plan.crash.push((
            slot.parse().map_err(|e| format!("--crash slot: {e}"))?,
            steps.parse().map_err(|e| format!("--crash steps: {e}"))?,
        ));
    }
    for b in args.many("byz") {
        plan.byzantine
            .push(b.parse().map_err(|e| format!("--byz: {e}"))?);
    }
    for d in args.many("drop") {
        let (from, to) = d
            .split_once(':')
            .ok_or_else(|| format!("--drop {d:?}: expected FROM:TO"))?;
        plan.dropped_links.push((
            from.parse().map_err(|e| format!("--drop from: {e}"))?,
            to.parse().map_err(|e| format!("--drop to: {e}"))?,
        ));
    }
    Ok(plan)
}

fn cmd_sweep(args: &Args) -> Result<i32, String> {
    args.known(&[
        "preset",
        "protocol",
        "n",
        "f",
        "budget",
        "delay",
        "xi",
        "runs",
        "seed",
        "threads",
        "max-events",
        "sim-workers",
        "crash",
        "byz",
        "drop",
        "save-violations",
        "name",
    ])?;
    let runs = args.parsed("runs", 64usize)?;
    let seed = args.parsed("seed", 42u64)?;
    let threads = args.parsed(
        "threads",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    )?;
    let max_events = args.parsed("max-events", 2_000usize)?;

    args.no_positionals()?;
    let mut spec = if let Some(name) = args.one("preset")? {
        // A preset fixes the protocol; accepting (and ignoring) protocol
        // flags alongside it would silently run something else.
        for conflicting in ["protocol", "n", "f", "budget"] {
            if args.one(conflicting)?.is_some() {
                return Err(format!(
                    "--preset fixes the protocol; --{conflicting} cannot be combined with it"
                ));
            }
        }
        let preset = abc_clocksync::presets::by_name(name)
            .ok_or_else(|| format!("unknown preset {name:?} (see `abc list`)"))?;
        let mut spec = ScenarioSpec::from_preset(preset, runs, seed);
        if let Some(xi) = args.one("xi")? {
            spec.xi = xi.parse()?;
        }
        if let Some(delay) = args.one("delay")? {
            spec.delay = delay.parse()?;
        }
        spec
    } else {
        let protocol = match args.required("protocol")? {
            "clocksync" => Protocol::ClockSync {
                n: args.parsed("n", 4usize)?,
                f: args.parsed("f", 1usize)?,
            },
            "gossip" => Protocol::Gossip {
                n: args.parsed("n", 4usize)?,
                budget: args.parsed("budget", 20u32)?,
            },
            other => return Err(format!("unknown protocol {other:?}")),
        };
        let delay: DelaySweep = args.required("delay")?.parse()?;
        let xi: Xi = args.required("xi")?.parse()?;
        ScenarioSpec {
            name: args.one("name")?.unwrap_or("cli").to_string(),
            protocol,
            delay,
            faults: FaultPlan::none(),
            limits: RunLimits {
                max_events,
                max_time: u64::MAX,
            },
            xi,
            runs_per_point: runs,
            base_seed: seed,
            sim_workers: 1,
        }
    };
    spec.limits.max_events = max_events;
    spec.runs_per_point = runs;
    // Per-simulation engine workers (trace-identical at any value); the
    // sweep's own `--threads` fan-out across runs is usually the better
    // lever, so this defaults to the sequential engine.
    spec.sim_workers = args.parsed("sim-workers", 1usize)?;
    // CLI fault flags *extend* the spec's plan (a preset's Byzantine slots
    // survive `--drop`/`--crash` additions); `run_sweep` validates the
    // merged plan against the system size.
    let cli_faults = parse_fault_plan(args)?;
    spec.faults.crash.extend(cli_faults.crash);
    spec.faults.byzantine.extend(cli_faults.byzantine);
    spec.faults.dropped_links.extend(cli_faults.dropped_links);
    if let Some(name) = args.one("name")? {
        spec.name = name.to_string();
    }

    let save_dir = args.one("save-violations")?.map(std::path::PathBuf::from);
    let report = run_sweep(
        &spec,
        SweepOptions {
            threads,
            keep_violating_traces: save_dir.is_some(),
        },
    )?;
    println!("{report}");
    if let Some(dir) = save_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut saved = 0usize;
        for o in &report.outcomes {
            if let Some(trace) = &o.trace {
                let path = dir.join(format!("{}-run{}.trace", spec.name, o.run_index));
                let mut text = format!("# stats {}\n", o.stats);
                if let Some(v) = &o.violation {
                    text.push_str(&format!(
                        "# violation at event {}: {}\n",
                        v.at_event, v.witness
                    ));
                }
                text.push_str(&trace.to_text());
                std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
                saved += 1;
            }
        }
        println!("saved {saved} violating trace(s) to {}", dir.display());
    }
    Ok(if report.violations > 0 {
        EXIT_VIOLATION
    } else {
        EXIT_OK
    })
}

pub(crate) fn read_trace(path: &str) -> Result<Trace, String> {
    // Streamed line-by-line through the incremental parser: the file text
    // is never held whole, and a corrupt/oversized line fails at the line
    // cap instead of after an unbounded read. The file cap is far above
    // the wire default because a legal `faulty` line grows with the
    // process count (~8 bytes per faulty index): 64 MiB admits every
    // trace the serializer itself can produce for millions of processes,
    // while still bounding memory against a corrupt newline-free file.
    const FILE_MAX_LINE_LEN: usize = 64 * 1024 * 1024;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    Trace::from_reader(std::io::BufReader::new(file), FILE_MAX_LINE_LEN)
        .map_err(|e| format!("{path}: {e}"))
}

fn trace_file_arg(args: &Args) -> Result<&str, String> {
    match args.positional.as_slice() {
        [file] => Ok(file),
        [] => Err("expected a trace file argument".into()),
        _ => Err("expected exactly one trace file argument".into()),
    }
}

fn cmd_check(args: &Args) -> Result<i32, String> {
    args.known(&["scenario", "xi"])?;
    let xi: Xi = args.required("xi")?.parse()?;
    let (label, g) = if let Some(name) = args.one("scenario")? {
        if !args.positional.is_empty() {
            return Err("give either a trace file or --scenario, not both".into());
        }
        let build = abc_models::scenarios::named()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, b)| b)
            .ok_or_else(|| format!("unknown scenario {name:?} (see `abc list`)"))?;
        (name.to_string(), build())
    } else {
        let file = trace_file_arg(args)?;
        (file.to_string(), read_trace(file)?.to_execution_graph())
    };
    println!(
        "{label}: {} processes, {} events, {} messages",
        g.num_processes(),
        g.num_events(),
        g.num_messages()
    );
    match check::find_violation(&g, &xi).map_err(|e| e.to_string())? {
        None => {
            println!("ADMISSIBLE for Xi = {xi}");
            Ok(EXIT_OK)
        }
        Some(cycle) => {
            println!("VIOLATION for Xi = {xi}: {}", cycle.summarize(&g));
            Ok(EXIT_VIOLATION)
        }
    }
}

fn cmd_monitor(args: &Args) -> Result<i32, String> {
    args.known(&["xi"])?;
    let xi: Xi = args.required("xi")?.parse()?;
    let file = trace_file_arg(args)?;
    let trace = read_trace(file)?;
    let (stats, violation, margin) = monitor_trace(&trace, &xi)?;
    println!(
        "{file}: streamed {} events / {} messages (relaxations={}, full_checks={})",
        stats.events, stats.messages, stats.relaxations, stats.full_checks
    );
    match &margin {
        None => println!("final margin: none (no relevant cycle)"),
        Some(m) => println!("final margin: {m} (headroom {})", xi.as_ratio() - m),
    }
    match violation {
        None => {
            println!("ADMISSIBLE for Xi = {xi} (monitored online)");
            Ok(EXIT_OK)
        }
        Some(v) => {
            println!(
                "VIOLATION for Xi = {xi} latched at event {}: {}",
                v.at_event, v.witness
            );
            Ok(EXIT_VIOLATION)
        }
    }
}

fn cmd_replay(args: &Args) -> Result<i32, String> {
    args.known(&[])?;
    let file = trace_file_arg(args)?;
    let trace = read_trace(file)?;
    let delivered = trace
        .messages()
        .iter()
        .filter(|m| m.recv_event.is_some())
        .count();
    println!(
        "{file}: {} processes, {} events, {} messages ({} delivered, {} in flight/dropped)",
        trace.num_processes(),
        trace.events().len(),
        trace.messages().len(),
        delivered,
        trace.messages().len() - delivered
    );
    let faulty: Vec<String> = (0..trace.num_processes())
        .filter(|p| trace.is_faulty(abc_core::ProcessId(*p)))
        .map(|p| format!("p{p}"))
        .collect();
    println!(
        "faulty: {}",
        if faulty.is_empty() {
            "none".to_string()
        } else {
            faulty.join(" ")
        }
    );
    println!("events per process: {:?}", trace.events_per_process());
    if let Some(last) = trace.events().last() {
        println!("final time: {}", last.time);
    }
    // Canonical round trip: parse(to_text(t)) == t, byte for byte.
    let canonical = trace.to_text();
    let reparsed = Trace::from_text(&canonical).map_err(|e| e.to_string())?;
    if reparsed.to_text() == canonical {
        println!("round trip: OK ({} bytes canonical)", canonical.len());
        Ok(EXIT_OK)
    } else {
        Err("round trip mismatch: serializer and parser disagree".into())
    }
}

fn cmd_list(args: &Args) -> Result<i32, String> {
    args.known(&[])?;
    args.no_positionals()?;
    println!("clock-sync presets (abc sweep --preset NAME):");
    for p in abc_clocksync::presets::all() {
        println!("  {:<14} {}", p.name, p.description);
    }
    println!("named scenarios (abc check --scenario NAME):");
    for (name, desc, _) in abc_models::scenarios::named() {
        println!("  {name:<16} {desc}");
    }
    Ok(EXIT_OK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn usage_and_unknown_commands() {
        assert_eq!(run(&[]).unwrap(), EXIT_USAGE);
        assert_eq!(run(&sv(&["help"])).unwrap(), EXIT_OK);
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&["sweep", "--bogus", "1"])).is_err());
        assert!(run(&sv(&["check"])).is_err(), "missing file and xi");
    }

    #[test]
    fn malformed_flag_usage_is_rejected_not_misparsed() {
        // A flag followed by another flag must not consume it as a value.
        assert!(run(&sv(&[
            "sweep",
            "--preset",
            "quartet",
            "--save-violations",
            "--threads",
            "8"
        ]))
        .is_err());
        // Stray positionals to sweep/list are errors, not silently ignored.
        assert!(run(&sv(&["sweep", "oops", "--preset", "quartet"])).is_err());
        assert!(run(&sv(&["list", "oops"])).is_err());
        // --preset fixes the protocol: protocol flags cannot ride along.
        assert!(run(&sv(&["sweep", "--preset", "quartet", "--n", "7"])).is_err());
        assert!(run(&sv(&[
            "sweep",
            "--preset",
            "quartet",
            "--protocol",
            "gossip"
        ]))
        .is_err());
    }

    #[test]
    fn preset_fault_flags_extend_rather_than_replace() {
        // septet-byz keeps its two tick-rushers when the CLI adds faults:
        // a --crash on slot 5 now *conflicts* with the preset's Byzantine
        // slot 5, which only happens if the plans were merged.
        assert!(run(&sv(&[
            "sweep",
            "--preset",
            "septet-byz",
            "--crash",
            "5@3",
            "--runs",
            "2",
        ]))
        .unwrap_err()
        .contains("both crash and Byzantine"));
        // A non-conflicting addition (dropped link) runs fine alongside
        // the preset's Byzantine slots.
        let code = run(&sv(&[
            "sweep",
            "--preset",
            "septet-byz",
            "--drop",
            "0:1",
            "--runs",
            "2",
            "--max-events",
            "150",
            "--threads",
            "1",
        ]))
        .unwrap();
        assert_eq!(code, EXIT_OK);
    }

    #[test]
    fn list_runs() {
        assert_eq!(run(&sv(&["list"])).unwrap(), EXIT_OK);
    }

    #[test]
    fn check_named_scenarios_both_verdicts() {
        assert_eq!(
            run(&sv(&["check", "--scenario", "fig10-inorder", "--xi", "4"])).unwrap(),
            EXIT_OK
        );
        assert_eq!(
            run(&sv(&[
                "check",
                "--scenario",
                "fig10-reordered",
                "--xi",
                "4"
            ]))
            .unwrap(),
            EXIT_VIOLATION
        );
        assert!(run(&sv(&["check", "--scenario", "nope", "--xi", "4"])).is_err());
    }

    #[test]
    fn sweep_preset_smoke() {
        let code = run(&sv(&[
            "sweep",
            "--preset",
            "quartet",
            "--runs",
            "3",
            "--max-events",
            "120",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(code, EXIT_OK, "quartet preset is admissible");
    }
}
