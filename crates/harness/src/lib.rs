//! `abc-harness` — the parallel scenario-sweep engine (and `abc` CLI) of
//! the ABC-model reproduction.
//!
//! A single simulated execution answers "did *this* run satisfy the ABC
//! synchrony condition?"; mapping where Definition 4 actually breaks takes
//! thousands of randomized runs across delay families. This crate turns
//! the simulator into that instrument:
//!
//! * [`spec::ScenarioSpec`] — a declarative scenario: protocol
//!   ([`spec::Protocol`]), delay-model family with swept parameter ranges
//!   ([`spec::DelaySweep`]), fault plan ([`spec::FaultPlan`]), run limits,
//!   monitored `Ξ`, and a base seed;
//! * [`sweep::run_sweep`] — a deterministic `std::thread` work-queue
//!   runner that fans hundreds-to-thousands of independent runs across
//!   cores and aggregates a [`sweep::SweepReport`] (violation census,
//!   first-violation ratio distribution, message/step/slab statistics,
//!   wall-clock);
//! * the `abc` binary ([`cli`]) — `sweep`, `check`, `monitor`, and
//!   `replay` subcommands over the line-oriented trace text format
//!   (`abc_sim::textio`), plus the networked `serve` / `feed` / `loadgen`
//!   subcommands driving the `abc-service` TCP ingestion server
//!   ([`sweep::generate_trace`] supplies loadgen's sweep-generated
//!   workloads).
//!
//! # Sweep axes and the paper's adversary
//!
//! Section 2 of the paper models the network as an adversary that picks
//! each message's end-to-end delay, constrained only by the ABC condition.
//! The sweep axes are exactly the knobs of that adversary:
//!
//! * **Delay family + ranges** ([`spec::DelaySweep`]): banded delays
//!   (`band`, the Θ-style regime where every `Ξ > hi/lo` admits the run),
//!   unbounded growth (`growing`, the §5.1 spacecraft regime — no finite
//!   delay bound, ratios still banded), and targeted skew (`span`, the
//!   stress adversary driving relevant-cycle ratios toward the `Ξ`
//!   boundary). Sweeping their parameters maps the admissibility frontier
//!   instead of sampling one point of it.
//! * **Fault plan** ([`spec::FaultPlan`]): crash faults exercise the
//!   receive/processing split, Byzantine slots exercise message exemption
//!   (Section 2's message dropping), dropped links exercise lossy
//!   topologies.
//! * **Seeds**: run `i` draws from splitmix64 stream `i` of the base seed
//!   (`rand::rngs::SmallRng::seed_stream`), so one spec names the same
//!   execution set at any worker-thread count — sweeps are reproducible
//!   experiments, not load tests.
//!
//! # Example
//!
//! ```
//! use abc_harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
//! use abc_harness::sweep::{run_sweep, SweepOptions};
//! use abc_core::Xi;
//! use abc_sim::RunLimits;
//!
//! let spec = ScenarioSpec {
//!     name: "doc".into(),
//!     protocol: Protocol::ClockSync { n: 4, f: 1 },
//!     delay: DelaySweep::Band { lo: Grid::fixed(10), hi: Grid::fixed(19) },
//!     faults: FaultPlan::none(),
//!     limits: RunLimits { max_events: 120, max_time: u64::MAX },
//!     xi: Xi::from_integer(2),
//!     runs_per_point: 4,
//!     base_seed: 7,
//!     sim_workers: 1,
//! };
//! let report = run_sweep(&spec, SweepOptions { threads: 2, ..Default::default() }).unwrap();
//! assert_eq!(report.total_runs, 4);
//! assert_eq!(report.violations, 0); // band ratio 1.9 < Xi = 2
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod cli_lint;
mod cli_service;
pub mod spec;
pub mod sweep;

pub use spec::{DelayPoint, DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
pub use sweep::{generate_trace, run_sweep, RunOutcome, SweepOptions, SweepReport, ViolationInfo};
