//! The networked `abc` subcommands: `serve`, `feed`, `loadgen`, and
//! `inspect` (thin drivers over `abc-service` and `abc-obs`).

use std::time::Duration;

use abc_core::Xi;
use abc_rational::Ratio;
use abc_service::client::{
    feed_stream_binary, feed_stream_text, format_ms, run_loadgen, LoadgenDoc,
};
use abc_service::forensics::ForensicsBundle;
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig, DEFAULT_FORENSICS_TAIL};
use abc_service::signals;
use abc_sim::binio::{FrameWriter, WireRecord, DEFAULT_MAX_FRAME_LEN};
use abc_sim::textio::DEFAULT_MAX_LINE_LEN;
use abc_sim::Trace;

use crate::cli::{Args, EXIT_OK, EXIT_VIOLATION};
use crate::spec::ScenarioSpec;
use crate::sweep::generate_trace;

pub(crate) fn cmd_serve(args: &Args) -> Result<i32, String> {
    args.known(&[
        "addr",
        "status-addr",
        "shards",
        "xi",
        "max-line",
        "max-frame",
        "max-processes",
        "prune-horizon",
        "warn-margin",
        "margin-tracking",
        "forensics-dir",
        "forensics-tail",
        "trace-out",
    ])?;
    args.no_positionals()?;
    let trace_out = args.one("trace-out")?.map(std::path::PathBuf::from);
    if trace_out.is_some() {
        // The flight recorder stays a branch-on-disabled no-op unless the
        // operator asked for a trace.
        abc_obs::enable(abc_obs::DEFAULT_RING_CAPACITY);
    }
    let config = ServerConfig {
        addr: args.one("addr")?.unwrap_or("127.0.0.1:7431").to_string(),
        status_addr: args
            .one("status-addr")?
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        shards: args.parsed(
            "shards",
            std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        )?,
        xi: args
            .one("xi")?
            .map_or_else(|| Ok(Xi::from_integer(2)), str::parse)?,
        max_line_len: args.parsed("max-line", DEFAULT_MAX_LINE_LEN)?,
        max_frame_len: args.parsed("max-frame", DEFAULT_MAX_FRAME_LEN)?,
        max_processes: args.parsed("max-processes", 10_000usize)?,
        prune_horizon: match args.one("prune-horizon")? {
            Some(v) => {
                let h = v
                    .parse::<usize>()
                    .map_err(|e| format!("--prune-horizon: {e}"))?;
                if h == 0 {
                    return Err("--prune-horizon must be at least 1 (a zero horizon would \
                                compact the frontier itself and reject every message)"
                        .into());
                }
                Some(h)
            }
            None => None,
        },
        warn_margin: args
            .one("warn-margin")?
            .map(str::parse::<Ratio>)
            .transpose()
            .map_err(|e| format!("--warn-margin: {e}"))?,
        margin_tracking: args.parsed("margin-tracking", true)?,
        forensics_dir: args.one("forensics-dir")?.map(std::path::PathBuf::from),
        forensics_tail: args.parsed("forensics-tail", DEFAULT_FORENSICS_TAIL)?,
    };
    let shards = config.shards;
    let xi = config.xi.clone();
    let handle = start(config).map_err(|e| format!("starting server: {e}"))?;
    println!(
        "abc-service listening on {} (shards={shards}, default xi={xi}, \
         protocols v1 text + v2 binary)",
        handle.addr()
    );
    println!(
        "status/control on {} (commands: metrics, prom, dump, shutdown; \
         `GET /metrics` serves the Prometheus exposition over HTTP)",
        handle.status_addr()
    );
    signals::install_sigint_handler();
    loop {
        if signals::sigint_seen() || handle.is_stopping() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutting down…");
    let snapshot = handle.metrics().render();
    handle.join();
    print!("{snapshot}");
    if let Some(path) = trace_out {
        let trace = abc_obs::snapshot().chrome_trace_json();
        std::fs::write(&path, trace).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote Chrome trace to {}", path.display());
    }
    Ok(EXIT_OK)
}

/// `abc inspect FILE`: pretty-prints a forensics bundle (exit code 2
/// when it carries a latched violation) or structurally validates a
/// Chrome trace JSON export.
pub(crate) fn cmd_inspect(args: &Args) -> Result<i32, String> {
    args.known(&[])?;
    let [file] = args.positional.as_slice() else {
        return Err("expected exactly one bundle or trace-JSON file argument".into());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    if text.starts_with("abc-forensics") {
        let bundle = ForensicsBundle::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        print!("{}", bundle.pretty());
        Ok(if bundle.latch.is_some() {
            EXIT_VIOLATION
        } else {
            EXIT_OK
        })
    } else if text.trim_start().starts_with('{') {
        let stats = abc_obs::validate_chrome_trace(&text).map_err(|e| format!("{file}: {e}"))?;
        println!(
            "{file}: valid Chrome trace ({} events: {} spans, {} counter samples, {} metadata)",
            stats.events, stats.spans, stats.counters, stats.metadata
        );
        Ok(EXIT_OK)
    } else {
        Err(format!(
            "{file}: neither a forensics bundle (abc-forensics header) nor trace JSON"
        ))
    }
}

pub(crate) fn cmd_feed(args: &Args) -> Result<i32, String> {
    args.known(&["addr", "xi", "binary", "margin-every"])?;
    let addr = args.required("addr")?;
    let xi: Xi = args.required("xi")?.parse()?;
    let binary = args.parsed("binary", false)?;
    let margin_every = match args.one("margin-every")? {
        Some(v) => {
            let n = v
                .parse::<usize>()
                .map_err(|e| format!("--margin-every: {e}"))?;
            if n == 0 {
                return Err("--margin-every must be at least 1".into());
            }
            Some(n)
        }
        None => None,
    };
    let [file] = args.positional.as_slice() else {
        return Err("expected exactly one trace file argument".into());
    };
    let trace = crate::cli::read_trace(file)?;
    let events = trace.events().len();
    let outcome = if binary {
        let bytes = match margin_every {
            Some(n) => stream_binary_with_margin(&trace, n),
            None => trace.to_stream_binary(),
        };
        feed_stream_binary(addr, &xi, &bytes)?
    } else {
        let doc = match margin_every {
            Some(n) => stream_text_with_margin(&trace, n),
            None => trace.to_stream_text(),
        };
        feed_stream_text(addr, &xi, &doc)?
    };
    println!(
        "{file}: streamed {events} events / {} messages to {addr} in {} \
         ({} acks covering {} events, protocol {})",
        trace.messages().len(),
        format_ms(outcome.latency),
        outcome.oks,
        outcome.acked_events,
        if binary { "v2" } else { "v1" },
    );
    for (i, sample) in outcome.margins.iter().enumerate() {
        match (&sample.ratio, &sample.witness) {
            (None, _) => println!("margin[{i}]: none"),
            (Some(r), None) => println!("margin[{i}]: {r}"),
            (Some(r), Some(w)) => println!("margin[{i}]: {r} witness {w}"),
        }
    }
    println!("verdict: {}", outcome.verdict);
    Ok(if outcome.verdict.is_violation() {
        EXIT_VIOLATION
    } else {
        EXIT_OK
    })
}

/// The trace's v1 streaming text with a `margin` request line after every
/// `every`-th event line, plus one final request before `end` when events
/// arrived since the last sample.
fn stream_text_with_margin(trace: &Trace, every: usize) -> String {
    let plain = trace.to_stream_text();
    let mut out = String::with_capacity(plain.len() + 8 * (trace.events().len() / every + 2));
    let mut since_last = 0usize;
    for line in plain.lines() {
        if line == "end" && since_last > 0 {
            out.push_str("margin\n");
            since_last = 0;
        }
        out.push_str(line);
        out.push('\n');
        if line.starts_with("e ") {
            since_last += 1;
            if since_last == every {
                out.push_str("margin\n");
                since_last = 0;
            }
        }
    }
    out
}

/// The trace's v2 binary frames with a margin record after every
/// `every`-th event record, plus one final request before the end record
/// when events arrived since the last sample.
fn stream_binary_with_margin(trace: &Trace, every: usize) -> Vec<u8> {
    let mut w = FrameWriter::new();
    let mut since_last = 0usize;
    for rec in trace.to_stream_records() {
        if matches!(rec, WireRecord::End) && since_last > 0 {
            w.push_record(&WireRecord::Margin);
            since_last = 0;
        }
        let is_event = matches!(rec, WireRecord::Event(_));
        w.push_record(&rec);
        if is_event {
            since_last += 1;
            if since_last == every {
                w.push_record(&WireRecord::Margin);
                since_last = 0;
            }
        }
    }
    w.finish()
}

pub(crate) fn cmd_loadgen(args: &Args) -> Result<i32, String> {
    args.known(&[
        "addr",
        "connections",
        "traces",
        "preset",
        "delay",
        "xi",
        "max-events",
        "seed",
        "sim-workers",
        "verify",
        "binary",
    ])?;
    args.no_positionals()?;
    let addr = args.required("addr")?;
    let connections = args.parsed("connections", 8usize)?;
    let traces = args.parsed("traces", 16usize)?.max(1);
    let verify = args.parsed("verify", true)?;
    let binary = args.parsed("binary", false)?;
    let seed = args.parsed("seed", 42u64)?;

    let preset_name = args.one("preset")?.unwrap_or("quartet");
    let preset = abc_clocksync::presets::by_name(preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?} (see `abc list`)"))?;
    let mut spec = ScenarioSpec::from_preset(preset, 1, seed);
    if let Some(delay) = args.one("delay")? {
        spec.delay = delay.parse()?;
    }
    if let Some(xi) = args.one("xi")? {
        spec.xi = xi.parse()?;
    }
    spec.limits.max_events = args.parsed("max-events", 2_000usize)?;
    // Engine workers per generated simulation; traces are byte-identical
    // at any value, so this is purely a wall-clock knob for wide presets.
    spec.sim_workers = args.parsed("sim-workers", 1usize)?;
    let points = spec.delay.points();
    if points.is_empty() {
        return Err("delay sweep has no grid points".into());
    }
    spec.runs_per_point = traces.div_ceil(points.len());
    spec.validate()?;

    println!(
        "generating {traces} trace(s): preset={preset_name} delay grid {} point(s), \
         xi={}, max-events={}",
        points.len(),
        spec.xi,
        spec.limits.max_events
    );
    let docs: Vec<LoadgenDoc> = (0..traces)
        .map(|i| {
            let (trace, _) = generate_trace(&spec, &points, i);
            let expect = if verify {
                Some(offline_verdict(&trace, &spec.xi)?)
            } else {
                None
            };
            Ok(LoadgenDoc {
                label: format!("run{i}"),
                events: trace.events().len(),
                expect,
                binary: binary.then(|| trace.to_stream_binary()),
                text: trace.to_stream_text(),
            })
        })
        .collect::<Result<_, String>>()?;

    // The workers sample the shared work queue into the flight recorder
    // (`loadgen.queue_depth`) so the report can show depth percentiles;
    // reset first so a prior run's samples don't pollute this one.
    abc_obs::enable(abc_obs::DEFAULT_RING_CAPACITY);
    abc_obs::reset();
    let report = run_loadgen(addr, &spec.xi, &docs, connections, binary);
    abc_obs::disable();
    let report = report?;
    print!("{}", report.render());
    if verify {
        if report.mismatches > 0 {
            return Err(format!(
                "{} verdict(s) diverged from the offline monitor — server bug",
                report.mismatches
            ));
        }
        println!(
            "verified: all {} verdicts byte-identical to the offline monitor",
            report.outcomes.len()
        );
    }
    Ok(EXIT_OK)
}
