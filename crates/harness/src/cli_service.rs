//! The networked `abc` subcommands: `serve`, `feed`, and `loadgen`
//! (thin drivers over `abc-service`).

use std::time::Duration;

use abc_core::Xi;
use abc_service::client::{feed_stream_binary, feed_stream_text, run_loadgen, LoadgenDoc};
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_service::signals;
use abc_sim::binio::DEFAULT_MAX_FRAME_LEN;
use abc_sim::textio::DEFAULT_MAX_LINE_LEN;

use crate::cli::{Args, EXIT_OK, EXIT_VIOLATION};
use crate::spec::ScenarioSpec;
use crate::sweep::generate_trace;

pub(crate) fn cmd_serve(args: &Args) -> Result<i32, String> {
    args.known(&[
        "addr",
        "status-addr",
        "shards",
        "xi",
        "max-line",
        "max-frame",
        "max-processes",
        "prune-horizon",
    ])?;
    args.no_positionals()?;
    let config = ServerConfig {
        addr: args.one("addr")?.unwrap_or("127.0.0.1:7431").to_string(),
        status_addr: args
            .one("status-addr")?
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        shards: args.parsed(
            "shards",
            std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        )?,
        xi: args
            .one("xi")?
            .map_or_else(|| Ok(Xi::from_integer(2)), str::parse)?,
        max_line_len: args.parsed("max-line", DEFAULT_MAX_LINE_LEN)?,
        max_frame_len: args.parsed("max-frame", DEFAULT_MAX_FRAME_LEN)?,
        max_processes: args.parsed("max-processes", 10_000usize)?,
        prune_horizon: match args.one("prune-horizon")? {
            Some(v) => {
                let h = v
                    .parse::<usize>()
                    .map_err(|e| format!("--prune-horizon: {e}"))?;
                if h == 0 {
                    return Err("--prune-horizon must be at least 1 (a zero horizon would \
                                compact the frontier itself and reject every message)"
                        .into());
                }
                Some(h)
            }
            None => None,
        },
    };
    let shards = config.shards;
    let xi = config.xi.clone();
    let handle = start(config).map_err(|e| format!("starting server: {e}"))?;
    println!(
        "abc-service listening on {} (shards={shards}, default xi={xi}, \
         protocols v1 text + v2 binary)",
        handle.addr()
    );
    println!(
        "status/control on {} (commands: metrics, shutdown)",
        handle.status_addr()
    );
    signals::install_sigint_handler();
    loop {
        if signals::sigint_seen() || handle.is_stopping() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutting down…");
    let snapshot = handle.metrics().render();
    handle.join();
    print!("{snapshot}");
    Ok(EXIT_OK)
}

pub(crate) fn cmd_feed(args: &Args) -> Result<i32, String> {
    args.known(&["addr", "xi", "binary"])?;
    let addr = args.required("addr")?;
    let xi: Xi = args.required("xi")?.parse()?;
    let binary = args.parsed("binary", false)?;
    let [file] = args.positional.as_slice() else {
        return Err("expected exactly one trace file argument".into());
    };
    let trace = crate::cli::read_trace(file)?;
    let events = trace.events().len();
    let outcome = if binary {
        feed_stream_binary(addr, &xi, &trace.to_stream_binary())?
    } else {
        feed_stream_text(addr, &xi, &trace.to_stream_text())?
    };
    println!(
        "{file}: streamed {events} events / {} messages to {addr} in {:?} \
         ({} acks covering {} events, protocol {})",
        trace.messages().len(),
        outcome.latency,
        outcome.oks,
        outcome.acked_events,
        if binary { "v2" } else { "v1" },
    );
    println!("verdict: {}", outcome.verdict);
    Ok(if outcome.verdict.is_violation() {
        EXIT_VIOLATION
    } else {
        EXIT_OK
    })
}

pub(crate) fn cmd_loadgen(args: &Args) -> Result<i32, String> {
    args.known(&[
        "addr",
        "connections",
        "traces",
        "preset",
        "delay",
        "xi",
        "max-events",
        "seed",
        "verify",
        "binary",
    ])?;
    args.no_positionals()?;
    let addr = args.required("addr")?;
    let connections = args.parsed("connections", 8usize)?;
    let traces = args.parsed("traces", 16usize)?.max(1);
    let verify = args.parsed("verify", true)?;
    let binary = args.parsed("binary", false)?;
    let seed = args.parsed("seed", 42u64)?;

    let preset_name = args.one("preset")?.unwrap_or("quartet");
    let preset = abc_clocksync::presets::by_name(preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?} (see `abc list`)"))?;
    let mut spec = ScenarioSpec::from_preset(preset, 1, seed);
    if let Some(delay) = args.one("delay")? {
        spec.delay = delay.parse()?;
    }
    if let Some(xi) = args.one("xi")? {
        spec.xi = xi.parse()?;
    }
    spec.limits.max_events = args.parsed("max-events", 2_000usize)?;
    let points = spec.delay.points();
    if points.is_empty() {
        return Err("delay sweep has no grid points".into());
    }
    spec.runs_per_point = traces.div_ceil(points.len());
    spec.validate()?;

    println!(
        "generating {traces} trace(s): preset={preset_name} delay grid {} point(s), \
         xi={}, max-events={}",
        points.len(),
        spec.xi,
        spec.limits.max_events
    );
    let docs: Vec<LoadgenDoc> = (0..traces)
        .map(|i| {
            let (trace, _) = generate_trace(&spec, &points, i);
            let expect = if verify {
                Some(offline_verdict(&trace, &spec.xi)?)
            } else {
                None
            };
            Ok(LoadgenDoc {
                label: format!("run{i}"),
                events: trace.events().len(),
                expect,
                binary: binary.then(|| trace.to_stream_binary()),
                text: trace.to_stream_text(),
            })
        })
        .collect::<Result<_, String>>()?;

    let report = run_loadgen(addr, &spec.xi, &docs, connections, binary)?;
    print!("{}", report.render());
    if verify {
        if report.mismatches > 0 {
            return Err(format!(
                "{} verdict(s) diverged from the offline monitor — server bug",
                report.mismatches
            ));
        }
        println!(
            "verified: all {} verdicts byte-identical to the offline monitor",
            report.outcomes.len()
        );
    }
    Ok(EXIT_OK)
}
