//! The `abc` CLI entry point; all logic lives in `abc_harness::cli`.
#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match abc_harness::cli::run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("abc: {e}");
            std::process::exit(abc_harness::cli::EXIT_USAGE);
        }
    }
}
