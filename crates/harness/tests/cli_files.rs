//! End-to-end CLI coverage over real files: `check`, `monitor`, and
//! `replay` against the committed sample trace, plus a `sweep
//! --save-violations` round trip through a temp directory.

use abc_harness::cli::{run, EXIT_OK, EXIT_VIOLATION};

fn sample_path() -> String {
    format!(
        "{}/tests/data/sample_clocksync.trace",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(ToString::to_string).collect()
}

#[test]
fn check_sample_trace_both_verdicts() {
    let path = sample_path();
    // The committed sample has max relevant-cycle ratio 3: admissible for
    // Xi = 4 (strict inequality), violating for Xi = 2.
    assert_eq!(run(&sv(&["check", &path, "--xi", "4"])).unwrap(), EXIT_OK);
    assert_eq!(
        run(&sv(&["check", &path, "--xi", "2"])).unwrap(),
        EXIT_VIOLATION
    );
}

#[test]
fn monitor_sample_trace_matches_batch_verdicts() {
    let path = sample_path();
    assert_eq!(run(&sv(&["monitor", &path, "--xi", "4"])).unwrap(), EXIT_OK);
    assert_eq!(
        run(&sv(&["monitor", &path, "--xi", "2"])).unwrap(),
        EXIT_VIOLATION
    );
}

#[test]
fn replay_sample_trace_round_trips() {
    assert_eq!(run(&sv(&["replay", &sample_path()])).unwrap(), EXIT_OK);
}

#[test]
fn missing_and_corrupt_files_error_cleanly() {
    assert!(run(&sv(&["replay", "/nonexistent/x.trace"])).is_err());
    let dir = std::env::temp_dir().join("abc-cli-corrupt-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.trace");
    std::fs::write(&bad, "abc-trace v1\nprocesses zork\n").unwrap();
    assert!(run(&sv(&["check", bad.to_str().unwrap(), "--xi", "2"])).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_saves_violating_traces_that_recheck_identically() {
    let dir = std::env::temp_dir().join(format!("abc-sweep-save-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let code = run(&sv(&[
        "sweep",
        "--protocol",
        "clocksync",
        "--n",
        "4",
        "--f",
        "1",
        "--delay",
        "band:1:6",
        "--xi",
        "3/2",
        "--runs",
        "8",
        "--max-events",
        "150",
        "--seed",
        "9",
        "--threads",
        "2",
        "--name",
        "save-test",
        "--save-violations",
        dir.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(code, EXIT_VIOLATION, "wide band at Xi=3/2 must violate");
    let saved: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!saved.is_empty(), "no traces saved");
    // Every saved trace re-checks as violating at the swept Xi, through
    // the public file pipeline (comments in the file are ignored).
    for path in &saved {
        assert_eq!(
            run(&sv(&["check", path.to_str().unwrap(), "--xi", "3/2"])).unwrap(),
            EXIT_VIOLATION,
            "{}",
            path.display()
        );
        assert_eq!(
            run(&sv(&["replay", path.to_str().unwrap()])).unwrap(),
            EXIT_OK
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
