//! Property tests for bounded-memory monitoring over *random clocksync and
//! gossip runs*: a pruning monitor (settled-prefix compaction at an honest
//! watermark, any cadence) must report the same verdict, latch at the same
//! event, and produce byte-identical `Cycle` witnesses and wire summaries
//! as an unpruned monitor — and both must agree with the batch checker.

use abc_clocksync::TickGen;
use abc_core::monitor::IncrementalChecker;
use abc_core::{check, EventId, ProcessId, Xi};
use abc_sim::delay::BandDelay;
use abc_sim::{Context, CrashAt, Process, RunLimits, Simulation, Trace};
use proptest::prelude::*;

/// Broadcast at wake-up, echo `m + 1` to each sender until the reply
/// budget is spent (the harness CLI's gossip protocol).
struct Gossip {
    budget: u32,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(from, msg + 1);
        }
    }
}

fn clocksync_run(n: usize, lo: u64, hi: u64, seed: u64, crash_last: bool, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for slot in 0..n {
        if crash_last && slot == n - 1 {
            sim.add_faulty_process(CrashAt::new(TickGen::new(n, 1), 4));
        } else {
            sim.add_process(TickGen::new(n, 1));
        }
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn gossip_run(n: usize, lo: u64, hi: u64, seed: u64, budget: u32, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(Gossip { budget });
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

/// Replays `trace` into an unpruned monitor and a pruning monitor (prune
/// every `prune_every` appends at the exact lookahead watermark), checking
/// step-by-step that verdicts flip at the same event; then asserts final
/// verdict, witness bytes, and wire summaries are identical, and that both
/// agree with the batch checker over the full execution graph.
fn assert_three_way_equivalence(trace: &Trace, xi: &Xi, prune_every: usize) -> Option<usize> {
    let mut plain = IncrementalChecker::new(trace.num_processes(), xi).unwrap();
    let mut pruned = IncrementalChecker::new(trace.num_processes(), xi).unwrap();
    pruned.enable_pruning();
    for p in 0..trace.num_processes() {
        if trace.is_faulty(ProcessId(p)) {
            plain.mark_faulty(ProcessId(p));
            pruned.mark_faulty(ProcessId(p));
        }
    }
    let events = trace.events();
    let messages = trace.messages();
    let mut suffix_min: Vec<usize> = vec![usize::MAX; events.len() + 1];
    for (idx, ev) in events.iter().enumerate().rev() {
        let named = ev.trigger.map_or(usize::MAX, |mi| messages[mi].send_event);
        suffix_min[idx] = named.min(suffix_min[idx + 1]);
    }
    let mut latch_at = None;
    for (idx, ev) in events.iter().enumerate() {
        match ev.trigger {
            None => {
                plain.append_init(ev.process);
                pruned.append_init(ev.process);
            }
            Some(mi) => {
                let send = EventId(messages[mi].send_event);
                plain.append_send(send, ev.process);
                pruned.append_send(send, ev.process);
            }
        }
        assert_eq!(
            plain.is_admissible(),
            pruned.is_admissible(),
            "verdicts diverged at event {idx}"
        );
        if latch_at.is_none() && !plain.is_admissible() {
            latch_at = Some(idx);
        }
        if (idx + 1) % prune_every == 0 {
            let watermark = suffix_min[idx + 1].min(idx + 1);
            pruned.prune_settled(Some(EventId(watermark)));
        }
    }
    assert_eq!(
        plain.violation().map(|c| format!("{c}")),
        pruned.violation().map(|c| format!("{c}")),
        "witness cycles must be byte-identical"
    );
    assert_eq!(
        plain.violation_summary().map(|s| s.wire().to_string()),
        pruned.violation_summary().map(|s| s.wire().to_string()),
        "wire summaries must be byte-identical"
    );
    let g = trace.to_execution_graph();
    assert_eq!(
        check::is_admissible(&g, xi).unwrap(),
        plain.is_admissible(),
        "monitor and batch checker disagree"
    );
    // The library's bounded replay takes the same honest watermarks.
    let lib = trace.replay_into_monitor_bounded(xi, prune_every).unwrap();
    assert_eq!(lib.is_admissible(), plain.is_admissible());
    assert_eq!(
        lib.violation_summary().map(|s| s.wire().to_string()),
        plain.violation_summary().map(|s| s.wire().to_string())
    );
    latch_at
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random clocksync runs across comfortable and reordering-heavy delay
    /// bands: pruned ≡ unpruned ≡ batch, at every pruning cadence.
    #[test]
    fn clocksync_pruned_monitor_matches_unpruned_and_batch(
        n in 4usize..7,
        lo in 1u64..12,
        spread in 0u64..9,
        seed in any::<u64>(),
        crash_last in any::<bool>(),
        prune_every in 1usize..40,
        xi_num in 3i64..6,
    ) {
        let trace = clocksync_run(n, lo, lo + spread, seed, crash_last, 300);
        let xi = Xi::from_fraction(xi_num, 2);
        assert_three_way_equivalence(&trace, &xi, prune_every);
    }

    /// Random gossip runs (echo budgets drain to quiescence): same
    /// three-way equivalence.
    #[test]
    fn gossip_pruned_monitor_matches_unpruned_and_batch(
        n in 3usize..6,
        lo in 1u64..10,
        spread in 0u64..8,
        seed in any::<u64>(),
        budget in 5u32..40,
        prune_every in 1usize..25,
        xi_num in 3i64..6,
    ) {
        let trace = gossip_run(n, lo, lo + spread, seed, budget, 400);
        let xi = Xi::from_fraction(xi_num, 2);
        assert_three_way_equivalence(&trace, &xi, prune_every);
    }
}

#[test]
fn long_reordering_run_latches_identically_and_actually_prunes() {
    // A 10k-event reordering-prone clocksync stream: the pruning monitor
    // must compact real state and still latch the same violation at the
    // same sequence number with the same bytes.
    let xi = Xi::from_fraction(3, 2);
    let admissible = clocksync_run(4, 10, 19, 7, false, 10_000);
    let trace = clocksync_run(4, 1, 9, 7, false, 10_000);
    for t in [&admissible, &trace] {
        assert_three_way_equivalence(t, &xi, 16);
        let bounded = t.replay_into_monitor_bounded(&xi, 16).unwrap();
        assert!(
            bounded.stats().pruned_events > 0,
            "a 10k-event stream must compact something"
        );
    }
    // The admissible stream prunes nearly everything as it goes.
    let bounded = admissible.replay_into_monitor_bounded(&xi, 16).unwrap();
    assert!(
        bounded.stats().pruned_events > 9_000,
        "expected deep compaction, got {}",
        bounded.stats().pruned_events
    );
    assert!(
        bounded.stats().live_events_peak < 2_000,
        "live window stayed at {}",
        bounded.stats().live_events_peak
    );
}
