//! CLI coverage for the networked subcommands: `abc feed` and
//! `abc loadgen` run against an in-process `abc-service` server (the
//! `serve` subcommand itself blocks on signals, so CI smokes it as a real
//! process; here we drive the same server through its library API).

use abc_harness::cli::{run, EXIT_OK, EXIT_VIOLATION};
use abc_service::server::{start, ServerConfig};

fn sample_path() -> String {
    format!(
        "{}/tests/data/sample_clocksync.trace",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(ToString::to_string).collect()
}

#[test]
fn feed_exits_2_on_violation_and_0_when_admissible() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let path = sample_path();
    // The committed sample has max relevant-cycle ratio 3 — the same
    // verdicts (and exit codes) as `abc monitor` offline.
    assert_eq!(
        run(&sv(&["feed", &path, "--addr", &addr, "--xi", "2"])).unwrap(),
        EXIT_VIOLATION
    );
    assert_eq!(
        run(&sv(&["feed", &path, "--addr", &addr, "--xi", "4"])).unwrap(),
        EXIT_OK
    );
    // Usage errors are errors, not silent defaults.
    assert!(
        run(&sv(&["feed", &path, "--xi", "2"])).is_err(),
        "no --addr"
    );
    assert!(run(&sv(&["feed", "--addr", &addr, "--xi", "2"])).is_err());
    handle.join();
}

#[test]
fn loadgen_verifies_verdicts_against_the_offline_monitor() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    // Small but real: 6 documents over 3 connections, wide band at a
    // tight Xi (mixed verdicts), with offline verification on (default).
    let code = run(&sv(&[
        "loadgen",
        "--addr",
        &addr,
        "--connections",
        "3",
        "--traces",
        "6",
        "--delay",
        "band:1:6",
        "--xi",
        "3/2",
        "--max-events",
        "200",
        "--seed",
        "9",
    ]))
    .unwrap();
    assert_eq!(code, EXIT_OK);
    assert!(run(&sv(&["loadgen", "--addr", &addr, "--preset", "nope"])).is_err());
    handle.join();
}
