//! Property tests for the live synchrony margin over *random clocksync
//! and gossip runs*: at arbitrary prune cadences and sampling points a
//! pruning, margin-tracking monitor must report exactly the margin of an
//! unpruned monitor, both must equal the batch
//! `max_relevant_cycle_ratio` over the same prefix, and the exact values
//! must be consistent with `abc-lp`: the difference-constraint relaxation
//! of Definition 4 is infeasible at the margin (with a verified negative
//! cycle / Farkas certificate) and feasible just above it.

use abc_clocksync::TickGen;
use abc_core::graph::ExecutionGraph;
use abc_core::monitor::IncrementalChecker;
use abc_core::{check, EventId, ProcessId, Xi};
use abc_lp::diffcon::{self, DiffConstraint};
use abc_lp::{simplex, LinearSystem, Rel};
use abc_rational::Ratio;
use abc_sim::delay::BandDelay;
use abc_sim::{Context, CrashAt, Process, RunLimits, Simulation, Trace};
use proptest::prelude::*;

/// Broadcast at wake-up, echo `m + 1` to each sender until the reply
/// budget is spent (the harness CLI's gossip protocol).
struct Gossip {
    budget: u32,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(from, msg + 1);
        }
    }
}

fn clocksync_run(n: usize, lo: u64, hi: u64, seed: u64, crash_last: bool, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for slot in 0..n {
        if crash_last && slot == n - 1 {
            sim.add_faulty_process(CrashAt::new(TickGen::new(n, 1), 4));
        } else {
            sim.add_process(TickGen::new(n, 1));
        }
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn gossip_run(n: usize, lo: u64, hi: u64, seed: u64, budget: u32, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(Gossip { budget });
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

/// The difference-constraint relaxation of "no relevant cycle has ratio
/// `≥ x`" (`x > 1`), over the same arcs the batch checker traverses:
/// effective messages forward (`< x`) and backward (`< −1`), local edges
/// backward only (`< 0`). A potential assignment exists exactly while
/// every such cycle keeps positive slack, i.e. while the margin is below
/// `x` — immediate forward/backward re-traversals cost `x − 1 > 0` and
/// never flip feasibility.
fn margin_constraints(g: &ExecutionGraph, x: &Ratio) -> Vec<DiffConstraint> {
    let mut cs = Vec::new();
    for m in g.effective_messages() {
        cs.push(DiffConstraint::lt(m.to.0, m.from.0, x.clone()));
        cs.push(DiffConstraint::lt(m.from.0, m.to.0, -Ratio::one()));
    }
    for l in g.local_edges() {
        cs.push(DiffConstraint::lt(l.from.0, l.to.0, Ratio::zero()));
    }
    cs
}

/// Cross-checks an exact margin against the LP layer: infeasible (with a
/// verified negative-cycle certificate) at `x = margin`, feasible (with a
/// verified rational solution) just above it.
fn assert_lp_consistent(g: &ExecutionGraph, margin: Option<&Ratio>) {
    let nudge = Ratio::new(1, 7);
    let one = Ratio::one();
    if let Some(r) = margin {
        assert!(*r >= one, "relevant cycles have ratio at least 1");
        if *r > one {
            let cs = margin_constraints(g, r);
            match diffcon::solve(g.num_events(), &cs) {
                Ok(_) => panic!("feasible at the margin {r}: some cycle attains it"),
                Err(cycle) => assert!(cycle.verify(&cs), "negative-cycle certificate invalid"),
            }
        }
    }
    let above = margin.map_or_else(|| &one + &nudge, |r| r + &nudge);
    let cs = margin_constraints(g, &above);
    match diffcon::solve(g.num_events(), &cs) {
        Ok(x) => assert!(
            cs.iter().all(|c| c.satisfied_by(&x)),
            "solution above the margin violates a constraint"
        ),
        Err(_) => panic!("infeasible above the margin {margin:?}"),
    }
}

/// Replays `trace` into an unpruned monitor and a pruning,
/// margin-tracking monitor (prune every `prune_every` appends at the
/// exact lookahead watermark). Every `sample_every` events both margins
/// are compared against each other and against the batch probe over the
/// same prefix; the final margin is LP-cross-checked.
fn assert_margin_equivalence(trace: &Trace, xi: &Xi, prune_every: usize, sample_every: usize) {
    let mut plain = IncrementalChecker::new(trace.num_processes(), xi).unwrap();
    let mut pruned = IncrementalChecker::new(trace.num_processes(), xi).unwrap();
    pruned.enable_pruning();
    pruned.enable_margin_tracking();
    for p in 0..trace.num_processes() {
        if trace.is_faulty(ProcessId(p)) {
            plain.mark_faulty(ProcessId(p));
            pruned.mark_faulty(ProcessId(p));
        }
    }
    let events = trace.events();
    let messages = trace.messages();
    let mut suffix_min: Vec<usize> = vec![usize::MAX; events.len() + 1];
    for (idx, ev) in events.iter().enumerate().rev() {
        let named = ev.trigger.map_or(usize::MAX, |mi| messages[mi].send_event);
        suffix_min[idx] = named.min(suffix_min[idx + 1]);
    }
    for (idx, ev) in events.iter().enumerate() {
        match ev.trigger {
            None => {
                plain.append_init(ev.process);
                pruned.append_init(ev.process);
            }
            Some(mi) => {
                let send = EventId(messages[mi].send_event);
                plain.append_send(send, ev.process);
                pruned.append_send(send, ev.process);
            }
        }
        if (idx + 1) % sample_every == 0 || idx + 1 == events.len() {
            let pm = plain.current_margin().unwrap();
            let qm = pruned.current_margin().unwrap();
            assert_eq!(
                pm.as_ref().map(|m| m.ratio.clone()),
                qm.as_ref().map(|m| m.ratio.clone()),
                "margins diverged at event {idx}"
            );
            if plain.is_admissible() {
                let batch = check::max_relevant_cycle_ratio(plain.graph()).unwrap();
                assert_eq!(
                    pm.as_ref().map(|m| m.ratio.clone()),
                    batch,
                    "margin disagrees with the batch probe at event {idx}"
                );
            } else {
                let latched = plain.violation_summary().unwrap().classification.ratio();
                assert_eq!(pm.as_ref().map(|m| m.ratio.clone()), latched);
            }
            for report in [&pm, &qm].into_iter().flatten() {
                if let Some(w) = &report.witness {
                    assert!(w.classification.relevant, "margin witness must be relevant");
                    assert_eq!(w.classification.ratio(), Some(report.ratio.clone()));
                }
            }
        }
        if (idx + 1) % prune_every == 0 {
            let watermark = suffix_min[idx + 1].min(idx + 1);
            pruned.prune_settled(Some(EventId(watermark)));
        }
    }
    if plain.is_admissible() && plain.graph().num_events() <= 140 {
        let margin = plain.current_margin().unwrap().map(|m| m.ratio);
        assert_lp_consistent(plain.graph(), margin.as_ref());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random clocksync runs across comfortable and reordering-heavy
    /// delay bands: the margin is prune- and cadence-invariant, equals
    /// the batch probe at every sample, and survives the LP cross-check.
    #[test]
    fn clocksync_margins_match_batch_and_lp(
        n in 4usize..7,
        lo in 1u64..12,
        spread in 0u64..9,
        seed in any::<u64>(),
        crash_last in any::<bool>(),
        prune_every in 1usize..40,
        sample_every in 5usize..23,
        xi_num in 3i64..6,
    ) {
        let trace = clocksync_run(n, lo, lo + spread, seed, crash_last, 130);
        let xi = Xi::from_fraction(xi_num, 2);
        assert_margin_equivalence(&trace, &xi, prune_every, sample_every);
    }

    /// Random gossip runs (echo budgets drain to quiescence): same
    /// margin equivalences.
    #[test]
    fn gossip_margins_match_batch_and_lp(
        n in 3usize..6,
        lo in 1u64..10,
        spread in 0u64..8,
        seed in any::<u64>(),
        budget in 5u32..30,
        prune_every in 1usize..25,
        sample_every in 5usize..23,
        xi_num in 3i64..6,
    ) {
        let trace = gossip_run(n, lo, lo + spread, seed, budget, 130);
        let xi = Xi::from_fraction(xi_num, 2);
        assert_margin_equivalence(&trace, &xi, prune_every, sample_every);
    }

    /// Tiny runs, full LP treatment: the simplex agrees with the
    /// difference-constraint solver on the margin system, and an
    /// infeasibility at the margin carries a verified Farkas certificate.
    #[test]
    fn small_run_margins_carry_farkas_certificates(
        lo in 1u64..6,
        spread in 0u64..5,
        seed in any::<u64>(),
        budget in 2u32..8,
    ) {
        let trace = gossip_run(3, lo, lo + spread, seed, budget, 24);
        let g = trace.to_execution_graph();
        let margin = check::max_relevant_cycle_ratio(&g).unwrap();
        let one = Ratio::one();
        let probes: Vec<Ratio> = match &margin {
            Some(r) if *r > one => vec![r.clone(), r + &Ratio::new(1, 7)],
            Some(r) => vec![r + &Ratio::new(1, 7)],
            None => vec![&one + &Ratio::new(1, 7), Ratio::from_integer(3)],
        };
        for x in probes {
            let cs = margin_constraints(&g, &x);
            let mut sys = LinearSystem::new(g.num_events());
            for c in &cs {
                let mut coeffs = vec![Ratio::zero(); g.num_events()];
                coeffs[c.u] = Ratio::one();
                coeffs[c.v] += -Ratio::one();
                sys.push(coeffs, Rel::Lt, c.bound.clone());
            }
            let lp = simplex::solve(&sys).unwrap();
            match diffcon::solve(g.num_events(), &cs) {
                Ok(sol) => {
                    prop_assert!(lp.is_feasible(), "simplex disagrees at {x}");
                    prop_assert!(cs.iter().all(|c| c.satisfied_by(&sol)));
                }
                Err(cycle) => {
                    prop_assert!(!lp.is_feasible(), "diffcon disagrees at {x}");
                    prop_assert!(cycle.verify(&cs));
                    let cert = lp.certificate().expect("infeasible LPs carry certificates");
                    prop_assert!(cert.verify(&sys), "Farkas certificate invalid at {x}");
                }
            }
            // Feasibility flips exactly at the margin.
            let expect_feasible = margin.as_ref().is_none_or(|r| x > *r);
            prop_assert_eq!(lp.is_feasible(), expect_feasible, "margin {:?} probe {}", &margin, &x);
        }
    }
}
