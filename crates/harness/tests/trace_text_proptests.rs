//! Property tests for the trace text format over *random clocksync runs*:
//! serialize → parse → serialize round-trips exactly (events, messages,
//! faulty set), and the reparsed trace is analysis-equivalent to the
//! original (same execution graph, same batch verdict, same monitor
//! verdict).

use abc_clocksync::TickGen;
use abc_core::{check, ProcessId, Xi};
use abc_sim::delay::BandDelay;
use abc_sim::{CrashAt, RunLimits, Simulation, Trace};
use proptest::prelude::*;

fn clocksync_run(n: usize, lo: u64, hi: u64, seed: u64, crash_last: bool, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for slot in 0..n {
        if crash_last && slot == n - 1 {
            sim.add_faulty_process(CrashAt::new(TickGen::new(n, 1), 4));
        } else {
            sim.add_process(TickGen::new(n, 1));
        }
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact round trip: every event, message, and faulty flag survives,
    /// and serialization is canonical (serialize ∘ parse = identity on
    /// bytes).
    #[test]
    fn serialize_parse_round_trips_exactly(
        n in 4usize..7,
        lo in 1u64..10,
        spread in 0u64..10,
        seed in any::<u64>(),
        crash_last in any::<bool>(),
    ) {
        let trace = clocksync_run(n, lo, lo + spread, seed, crash_last, 250);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        prop_assert_eq!(parsed.num_processes(), trace.num_processes());
        prop_assert_eq!(parsed.events(), trace.events());
        prop_assert_eq!(parsed.messages(), trace.messages());
        for p in 0..n {
            prop_assert_eq!(parsed.is_faulty(ProcessId(p)), trace.is_faulty(ProcessId(p)));
        }
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// Analysis equivalence: the reparsed trace's execution graph and
    /// batch ABC verdict agree with the original's, as does the online
    /// monitor replay.
    #[test]
    fn reparsed_traces_are_analysis_equivalent(
        n in 4usize..6,
        lo in 1u64..5,
        spread in 0u64..8,
        seed in any::<u64>(),
        num in 5i64..15,
        den in 4i64..8,
    ) {
        prop_assume!(num > den);
        let xi = Xi::from_fraction(num, den);
        let trace = clocksync_run(n, lo, lo + spread, seed, false, 200);
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        let g0 = trace.to_execution_graph();
        let g1 = parsed.to_execution_graph();
        prop_assert_eq!(&g0, &g1);
        let batch = check::is_admissible(&g0, &xi).unwrap();
        prop_assert_eq!(check::is_admissible(&g1, &xi).unwrap(), batch);
        let mon = parsed.replay_into_monitor(&xi).unwrap();
        prop_assert_eq!(mon.is_admissible(), batch);
        prop_assert_eq!(mon.graph(), &g0);
    }
}
