//! Property tests for the parallel simulation engine: over *random
//! clocksync and gossip runs with online monitors attached*, the
//! two-phase worker-pool stepper (`Simulation::set_sim_workers`) must
//! produce **byte-identical** traces, identical engine stats, and
//! identical monitor verdict/margin/witness streams at 1, 2, and 8
//! workers. This is the ISSUE's acceptance bar: parallelism is a pure
//! wall-clock knob, never an observable one.

use abc_clocksync::TickGen;
use abc_core::{ProcessId, Xi};
use abc_sim::delay::BandDelay;
use abc_sim::{Context, CrashAt, Process, RunLimits, RunStats, Simulation};
use proptest::prelude::*;

/// Broadcast at wake-up, echo `m + 1` to each sender until the reply
/// budget is spent (the harness CLI's gossip protocol).
struct Gossip {
    budget: u32,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(from, msg + 1);
        }
    }
}

/// Everything observable about one run: trace bytes, the stats line with
/// the worker-shape fields blanked (those legitimately differ), and the
/// monitor's verdict, live margin, and witness wire summary.
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    trace_text: String,
    core_stats: RunStats,
    admissible: bool,
    margin: String,
    witness: String,
}

struct RunConfig {
    protocol: Proto,
    n: usize,
    lo: u64,
    hi: u64,
    seed: u64,
    xi: Xi,
    prune_every: Option<usize>,
    max_events: usize,
}

enum Proto {
    ClockSync { crash_last: bool },
    Gossip { budget: u32 },
}

fn run_with_workers(cfg: &RunConfig, workers: usize) -> Artifacts {
    let mut sim = Simulation::new(BandDelay::new(cfg.lo, cfg.hi, cfg.seed));
    sim.set_sim_workers(workers);
    for slot in 0..cfg.n {
        match cfg.protocol {
            Proto::ClockSync { crash_last } => {
                if crash_last && slot == cfg.n - 1 {
                    sim.add_faulty_process(CrashAt::new(TickGen::new(cfg.n, 1), 4));
                } else {
                    sim.add_process(TickGen::new(cfg.n, 1));
                }
            }
            Proto::Gossip { budget } => {
                sim.add_process(Gossip { budget });
            }
        }
    }
    match cfg.prune_every {
        Some(every) => sim.attach_monitor_bounded(&cfg.xi, every).unwrap(),
        None => sim.attach_monitor(&cfg.xi).unwrap(),
    }
    let mut stats = sim.run(RunLimits {
        max_events: cfg.max_events,
        max_time: u64::MAX,
    });
    assert_eq!(stats.sim_workers, workers);
    stats.sim_workers = 0;
    stats.parallel_steps = 0;
    stats.max_step_width = 0;
    let mon = sim.monitor().expect("monitor attached");
    // A pruning monitor that stayed admissible has no margin probe (that
    // requires opt-in tracking before the first prune); everywhere else
    // the live margin is defined and must agree across worker counts.
    let margin = if cfg.prune_every.is_none() || !mon.is_admissible() {
        mon.current_margin()
            .unwrap()
            .map(|m| m.ratio.to_string())
            .unwrap_or_default()
    } else {
        "untracked".into()
    };
    Artifacts {
        trace_text: sim.trace().to_text(),
        core_stats: stats,
        admissible: mon.is_admissible(),
        margin,
        witness: sim
            .violation_summary()
            .map(|s| s.wire().to_string())
            .unwrap_or_default(),
    }
}

fn assert_workers_invisible(cfg: &RunConfig) {
    let seq = run_with_workers(cfg, 1);
    for workers in [2, 8] {
        let par = run_with_workers(cfg, workers);
        assert_eq!(seq, par, "artifacts diverged at {workers} workers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random monitored clocksync runs across comfortable and
    /// reordering-heavy delay bands, with and without a crash-faulty
    /// straggler and bounded-memory monitoring.
    #[test]
    fn clocksync_runs_are_worker_count_invariant(
        n in 4usize..7,
        lo in 1u64..12,
        spread in 0u64..9,
        seed in any::<u64>(),
        crash_last in any::<bool>(),
        prune_every in 0usize..40,
        xi_num in 3i64..6,
    ) {
        assert_workers_invisible(&RunConfig {
            protocol: Proto::ClockSync { crash_last },
            n,
            lo,
            hi: lo + spread,
            seed,
            xi: Xi::from_fraction(xi_num, 2),
            // 0 = unbounded monitor, otherwise a bounded prune cadence.
            prune_every: (prune_every > 0).then_some(prune_every),
            max_events: 300,
        });
    }

    /// Random monitored gossip runs (echo budgets drain to quiescence):
    /// same worker-count invariance.
    #[test]
    fn gossip_runs_are_worker_count_invariant(
        n in 3usize..6,
        lo in 1u64..10,
        spread in 0u64..8,
        seed in any::<u64>(),
        budget in 5u32..40,
        prune_every in 0usize..25,
        xi_num in 3i64..6,
    ) {
        assert_workers_invisible(&RunConfig {
            protocol: Proto::Gossip { budget },
            n,
            lo,
            hi: lo + spread,
            seed,
            xi: Xi::from_fraction(xi_num, 2),
            prune_every: (prune_every > 0).then_some(prune_every),
            max_events: 400,
        });
    }
}

/// The sweep-level view of the same property: a `ScenarioSpec` with
/// `sim_workers: 8` reports byte-identical aggregates to the sequential
/// spec (the engine knob composes with the sweep's own run-level
/// fan-out).
#[test]
fn sweep_reports_are_identical_at_any_sim_worker_count() {
    use abc_harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
    use abc_harness::sweep::{run_sweep, SweepOptions};

    let spec = |sim_workers: usize| ScenarioSpec {
        name: "simworkers".into(),
        protocol: Protocol::ClockSync { n: 4, f: 1 },
        delay: DelaySweep::Band {
            lo: Grid::fixed(1),
            hi: Grid::range(2, 6, 2),
        },
        faults: FaultPlan::none(),
        limits: RunLimits {
            max_events: 150,
            max_time: u64::MAX,
        },
        xi: Xi::from_integer(2),
        runs_per_point: 8,
        base_seed: 2026,
        sim_workers,
    };
    let seq = run_sweep(&spec(1), SweepOptions::default()).unwrap();
    let par = run_sweep(&spec(8), SweepOptions::default()).unwrap();
    assert_eq!(seq.aggregate_text(), par.aggregate_text());
    for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.final_margin, b.final_margin);
        assert_eq!(
            a.violation.as_ref().map(|v| (v.at_event, v.ratio())),
            b.violation.as_ref().map(|v| (v.at_event, v.ratio()))
        );
    }
}
