//! The acceptance bar for the sweep engine: a 512-run seeded clocksync
//! sweep produces **byte-identical** `SweepReport` aggregates at 1, 2, and
//! 8 worker threads. Determinism is structural (per-run splitmix64 streams
//! + index-ordered aggregation), so this holds on any machine regardless
//! of core count or scheduling.

use abc_core::Xi;
use abc_harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
use abc_harness::sweep::{run_sweep, SweepOptions};
use abc_sim::RunLimits;

fn spec_512() -> ScenarioSpec {
    ScenarioSpec {
        name: "determinism-512".into(),
        protocol: Protocol::ClockSync { n: 4, f: 1 },
        // 4 grid points (hi = 2, 4, 6, 8) x 128 seeded runs = 512 runs; at
        // Xi = 2 the narrow [1,2] point stays admissible while the wide
        // points violate, so the census, histogram, and witness lines are
        // all exercised.
        delay: DelaySweep::Band {
            lo: Grid::fixed(1),
            hi: Grid::range(2, 8, 2),
        },
        faults: FaultPlan::none(),
        limits: RunLimits {
            max_events: 150,
            max_time: u64::MAX,
        },
        xi: Xi::from_integer(2),
        runs_per_point: 128,
        base_seed: 2024,
        sim_workers: 1,
    }
}

#[test]
fn sweep_aggregates_are_byte_identical_at_1_2_and_8_threads() {
    let spec = spec_512();
    assert_eq!(spec.total_runs(), 512);
    let run = |threads: usize| {
        run_sweep(
            &spec,
            SweepOptions {
                threads,
                keep_violating_traces: false,
            },
        )
        .unwrap()
    };
    let r1 = run(1);
    let r2 = run(2);
    let r8 = run(8);
    let t1 = r1.aggregate_text();
    assert_eq!(t1, r2.aggregate_text(), "1 vs 2 workers");
    assert_eq!(t1, r8.aggregate_text(), "1 vs 8 workers");
    // The full per-run record agrees too, not just the aggregate view.
    for (a, b) in r1.outcomes.iter().zip(&r8.outcomes) {
        assert_eq!(a.run_index, b.run_index);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.violation.as_ref().map(|v| (v.at_event, v.ratio())),
            b.violation.as_ref().map(|v| (v.at_event, v.ratio()))
        );
    }
    // And the sweep actually explored both admissible and violating
    // territory — the determinism claim is about interesting reports.
    assert!(r1.violations > 0, "expected violations:\n{t1}");
    assert!(r1.violations < 512, "expected admissible runs too:\n{t1}");
    assert!(r1.points.iter().any(|p| p.violations == 0), "{t1}");
}
