//! End-to-end recorder behaviour: enable/disable gating, counters,
//! spans, samples, snapshots, and the Chrome exporter validated by the
//! crate's own hand-rolled JSON reader.
//!
//! The recorder is process-global, so this file is a single #[test]
//! with ordered phases rather than independent tests that would race
//! on enable/reset.

use abc_obs::{validate_chrome_trace, CounterDef, EntryKind};

static TEST_COUNTER: CounterDef = CounterDef::new("test.counter");
static OTHER_COUNTER: CounterDef = CounterDef::new("test.other");

#[test]
fn recorder_end_to_end() {
    // Phase 1: everything is a no-op while disabled.
    assert!(!abc_obs::is_enabled());
    TEST_COUNTER.add(5);
    abc_obs::sample("pre.sample", 1);
    {
        let _span = abc_obs::span("pre.span");
    }
    let snap = abc_obs::snapshot();
    assert!(snap.counter_names.is_empty(), "disabled adds registered");
    assert!(
        snap.threads.iter().all(|t| t.entries.is_empty()),
        "disabled spans recorded"
    );

    // Phase 2: record counters, spans, and samples on two threads.
    abc_obs::enable(64);
    TEST_COUNTER.add(3);
    TEST_COUNTER.add(4);
    OTHER_COUNTER.add(10);
    {
        let _span = abc_obs::span("work.outer");
        let _inner = abc_obs::span("work.inner");
    }
    abc_obs::sample("queue.depth", 17);
    std::thread::Builder::new()
        .name("obs-worker".to_string())
        .spawn(|| {
            TEST_COUNTER.add(100);
            let _span = abc_obs::span("worker.task");
        })
        .expect("spawn")
        .join()
        .expect("join");

    let snap = abc_obs::snapshot();
    let totals = snap.counter_totals();
    assert_eq!(
        totals,
        vec![("test.counter", 107), ("test.other", 10)],
        "totals sorted by name, summed across threads"
    );
    let all_entries: Vec<_> = snap.threads.iter().flat_map(|t| &t.entries).collect();
    let span_names: Vec<&str> = all_entries
        .iter()
        .filter(|e| e.kind == EntryKind::Span)
        .map(|e| e.name)
        .collect();
    assert!(span_names.contains(&"work.outer"));
    assert!(span_names.contains(&"work.inner"));
    assert!(span_names.contains(&"worker.task"));
    assert!(all_entries
        .iter()
        .any(|e| e.kind == EntryKind::Sample && e.name == "queue.depth" && e.value == 17));
    assert!(snap
        .threads
        .iter()
        .any(|t| t.label == "obs-worker" && t.counters.iter().sum::<u64>() == 100));

    // Inner span closes before outer, so it must appear first in the
    // (chronological, completion-ordered) ring.
    let main_thread = snap
        .threads
        .iter()
        .find(|t| t.entries.iter().any(|e| e.name == "work.outer"))
        .expect("main thread snapshot");
    let inner_pos = main_thread
        .entries
        .iter()
        .position(|e| e.name == "work.inner")
        .expect("inner");
    let outer_pos = main_thread
        .entries
        .iter()
        .position(|e| e.name == "work.outer")
        .expect("outer");
    assert!(inner_pos < outer_pos);

    // Phase 3: the Chrome export passes the crate's own validator and
    // carries the expected event mix.
    let trace = snap.chrome_trace_json();
    let stats = validate_chrome_trace(&trace).expect("exporter output validates");
    assert!(stats.spans >= 3);
    assert!(stats.counters >= 1, "samples exported as ph:C");
    assert!(stats.metadata >= 2, "process + thread names present");
    assert!(
        trace.contains("\"test.counter\":\"107\""),
        "otherData totals"
    );

    // Phase 4: the text summary is stable across repeated rendering of
    // the same snapshot and mentions every recorded name.
    let summary_a = snap.text_summary();
    let summary_b = snap.text_summary();
    assert_eq!(summary_a, summary_b);
    for needle in [
        "test.counter = 107",
        "test.other = 10",
        "span work.outer:",
        "sample queue.depth: count=1 last=17",
    ] {
        assert!(
            summary_a.contains(needle),
            "summary missing {needle:?}:\n{summary_a}"
        );
    }

    // Phase 5: ring overflow keeps the most recent entries and counts
    // every eviction exactly; reset clears both.
    abc_obs::reset();
    for i in 0..100 {
        abc_obs::sample("overflow.sample", i);
    }
    let snap = abc_obs::snapshot();
    let main = snap
        .threads
        .iter()
        .find(|t| t.entries.iter().any(|e| e.name == "overflow.sample"))
        .expect("overflowing thread");
    assert_eq!(main.entries.len(), 64);
    assert_eq!(main.dropped, 36);
    let last = main.entries.last().expect("non-empty ring");
    assert_eq!(last.value, 99, "ring keeps the most recent entries");

    // Phase 6: disable really turns recording back off.
    abc_obs::disable();
    abc_obs::reset();
    TEST_COUNTER.add(1);
    abc_obs::sample("post.sample", 1);
    let snap = abc_obs::snapshot();
    assert_eq!(
        snap.counter_totals(),
        vec![("test.counter", 0), ("test.other", 0)]
    );
    assert!(snap.threads.iter().all(|t| t.entries.is_empty()));
}
