//! `abc-obs` — the workspace flight recorder.
//!
//! A std-only, per-thread, ring-buffered span/counter recorder for
//! profiling the monitor, the simulation engine, the TCP service's
//! ingest pipeline, and the sweep harness — plus a Chrome trace-event
//! JSON exporter (loadable in Perfetto / `chrome://tracing`), a
//! stable-order text summary, and the hand-rolled JSON validator the
//! CI gate uses to check the exporter's output.
//!
//! # Design
//!
//! * **Branch-on-disabled.** Every recording entry point loads one
//!   relaxed [`AtomicBool`] and returns immediately when the recorder
//!   is off; nothing else (no TLS access, no clock read) happens on
//!   the disabled path.
//! * **Per-thread state.** Each instrumented thread lazily registers a
//!   [`ThreadRecorder`]: a fixed array of relaxed [`AtomicU64`]
//!   counters (indexed by a process-wide counter id) and a
//!   fixed-capacity ring of span/sample entries guarded by a mutex
//!   that only *this* thread takes on the hot path (snapshots contend
//!   only while copying out).
//! * **Never allocates on the hot path.** The ring is fully allocated
//!   at thread registration; entries hold `&'static str` names and
//!   plain integers. When the ring is full the oldest entry is
//!   overwritten and an exact drop counter is incremented, so a
//!   snapshot always reports the most-recent-N entries plus exactly
//!   how many were evicted.
//! * **Stable output.** [`Snapshot::text_summary`] orders counters by
//!   name and threads by registration index, so two snapshots of the
//!   same state render byte-identically.
//!
//! # Lock hierarchy
//!
//! Two lock levels, registered in the workspace `lint.conf` R3
//! hierarchy *below* every abc-service lock: the global `REGISTRY`
//! (level 4) and each recorder's `ring` (level 5). Snapshots take
//! `REGISTRY` then each `ring`; the hot path takes only `ring`.
//! Recording may therefore be called while holding any service-level
//! lock, but recorder internals must never call back out.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

pub mod json;

/// Process-wide cap on distinct counter ids. Registrations past the
/// cap are silently ignored (the `CounterDef` becomes a no-op).
pub const MAX_COUNTERS: usize = 64;

/// Ring capacity used for threads registered before [`enable`]
/// configures one.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counter_names: Vec::new(),
    threads: Vec::new(),
});

struct Registry {
    counter_names: Vec<&'static str>,
    threads: Vec<Arc<ThreadRecorder>>,
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // Recorder state stays meaningful after a panic elsewhere; recover.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns recording on. `ring_capacity` (clamped to at least 1) applies
/// to threads whose recorder is created *after* this call; threads
/// already instrumented keep their ring. The first `enable` also pins
/// the trace epoch all timestamps are relative to.
pub fn enable(ring_capacity: usize) {
    RING_CAP.store(ring_capacity.max(1), Ordering::Relaxed);
    let _ = EPOCH.set(Instant::now());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded state stays snapshottable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter and clears every ring (drop counters included)
/// without unregistering anything. Used to scope a measurement window.
pub fn reset() {
    let reg = lock_registry();
    for rec in &reg.threads {
        for c in &rec.counters {
            c.store(0, Ordering::Relaxed);
        }
        let mut ring = rec.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.clear();
    }
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// --------------------------------------------------------------------
// Per-thread state

/// What one ring entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A completed [`SpanGuard`] interval (`start_ns` + `dur_ns`).
    Span,
    /// A point-in-time value sample (`start_ns` + `value`).
    Sample,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    name: &'static str,
    kind: EntryKind,
    start_ns: u64,
    dur_ns: u64,
    value: u64,
}

const EMPTY_ENTRY: Entry = Entry {
    name: "",
    kind: EntryKind::Span,
    start_ns: 0,
    dur_ns: 0,
    value: 0,
};

struct RingInner {
    entries: Vec<Entry>,
    next: usize,
    filled: bool,
    dropped: u64,
}

impl RingInner {
    fn push(&mut self, entry: Entry) {
        if self.entries.is_empty() {
            self.dropped += 1;
            return;
        }
        if self.filled {
            self.dropped += 1;
        }
        self.entries[self.next] = entry;
        self.next += 1;
        if self.next == self.entries.len() {
            self.next = 0;
            self.filled = true;
        }
    }

    fn clear(&mut self) {
        self.next = 0;
        self.filled = false;
        self.dropped = 0;
    }

    /// Entries oldest-first.
    fn chronological(&self) -> Vec<Entry> {
        if self.filled {
            let mut out = Vec::with_capacity(self.entries.len());
            out.extend_from_slice(&self.entries[self.next..]);
            out.extend_from_slice(&self.entries[..self.next]);
            out
        } else {
            self.entries[..self.next].to_vec()
        }
    }
}

/// One thread's recorder: a fixed counter array plus a span/sample ring.
pub struct ThreadRecorder {
    index: usize,
    label: String,
    counters: [AtomicU64; MAX_COUNTERS],
    ring: Mutex<RingInner>,
}

impl ThreadRecorder {
    fn new(index: usize, label: String, ring_capacity: usize) -> ThreadRecorder {
        ThreadRecorder {
            index,
            label,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: Mutex::new(RingInner {
                entries: vec![EMPTY_ENTRY; ring_capacity],
                next: 0,
                filled: false,
                dropped: 0,
            }),
        }
    }

    fn record(&self, entry: Entry) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.push(entry);
    }
}

thread_local! {
    static LOCAL: Arc<ThreadRecorder> = register_thread();
}

fn register_thread() -> Arc<ThreadRecorder> {
    let index = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
    let label = match std::thread::current().name() {
        Some(name) => name.to_string(),
        None => format!("thread-{index}"),
    };
    let rec = Arc::new(ThreadRecorder::new(
        index,
        label,
        RING_CAP.load(Ordering::Relaxed),
    ));
    lock_registry().threads.push(Arc::clone(&rec));
    rec
}

fn with_local(f: impl FnOnce(&ThreadRecorder)) {
    // try_with: recording during TLS teardown silently drops instead
    // of panicking.
    let _ = LOCAL.try_with(|rec| f(rec));
}

// --------------------------------------------------------------------
// Recording API

/// A named counter with a lazily-bound process-wide id. Declare as a
/// `static`; `add` is a relaxed atomic add into the calling thread's
/// slot (a few nanoseconds) once the id is cached.
pub struct CounterDef {
    name: &'static str,
    /// 0 = unbound, `usize::MAX` = over the id cap (no-op), else id+1.
    slot: AtomicUsize,
}

impl CounterDef {
    /// Declares a counter. `const`, so usable in `static` items.
    #[must_use]
    pub const fn new(name: &'static str) -> CounterDef {
        CounterDef {
            name,
            slot: AtomicUsize::new(0),
        }
    }

    /// The counter's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to this thread's slot for the counter. No-op when the
    /// recorder is disabled or the counter-id space is exhausted.
    pub fn add(&self, n: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let slot = self.slot.load(Ordering::Relaxed);
        let id = match slot {
            0 => {
                let id = register_counter(self.name);
                let encoded = if id == usize::MAX { usize::MAX } else { id + 1 };
                self.slot.store(encoded, Ordering::Relaxed);
                id
            }
            usize::MAX => usize::MAX,
            bound => bound - 1,
        };
        if id == usize::MAX {
            return;
        }
        with_local(|rec| {
            rec.counters[id].fetch_add(n, Ordering::Relaxed);
        });
    }
}

fn register_counter(name: &'static str) -> usize {
    let mut reg = lock_registry();
    if let Some(i) = reg.counter_names.iter().position(|n| *n == name) {
        return i;
    }
    if reg.counter_names.len() >= MAX_COUNTERS {
        return usize::MAX;
    }
    reg.counter_names.push(name);
    reg.counter_names.len() - 1
}

/// RAII span: records a [`EntryKind::Span`] entry covering its
/// lifetime when dropped. Disarmed (free) while the recorder is off.
#[must_use = "a span records on drop; binding it to _ discards the interval"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    armed: bool,
}

/// Opens a span. The interval is recorded into the calling thread's
/// ring when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            name,
            start_ns: 0,
            armed: false,
        };
    }
    SpanGuard {
        name,
        start_ns: now_ns(),
        armed: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        let entry = Entry {
            name: self.name,
            kind: EntryKind::Span,
            start_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            value: 0,
        };
        with_local(|rec| rec.record(entry));
    }
}

/// Records a point-in-time value sample (rendered as a Chrome counter
/// track). No-op while the recorder is off.
pub fn sample(name: &'static str, value: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let entry = Entry {
        name,
        kind: EntryKind::Sample,
        start_ns: now_ns(),
        dur_ns: 0,
        value,
    };
    with_local(|rec| rec.record(entry));
}

// --------------------------------------------------------------------
// Snapshots

/// One recorded ring entry, copied out of a thread's ring.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Static name the entry was recorded under.
    pub name: &'static str,
    /// Span or sample.
    pub kind: EntryKind,
    /// Nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for samples).
    pub dur_ns: u64,
    /// Sampled value (0 for spans).
    pub value: u64,
}

/// One thread's state at snapshot time.
#[derive(Clone, Debug)]
pub struct ThreadSnapshot {
    /// Registration index (stable `tid` in the Chrome export).
    pub index: usize,
    /// Thread name, or `thread-<index>` for unnamed threads.
    pub label: String,
    /// Counter values, parallel to [`Snapshot::counter_names`].
    pub counters: Vec<u64>,
    /// Ring contents, oldest first.
    pub entries: Vec<SpanRecord>,
    /// Exact number of entries evicted from the ring.
    pub dropped: u64,
}

/// A point-in-time copy of the whole recorder.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Registered counter names, in id order.
    pub counter_names: Vec<&'static str>,
    /// Per-thread state, ordered by registration index.
    pub threads: Vec<ThreadSnapshot>,
}

/// Copies the recorder state out. Safe to call at any time, including
/// while other threads record (their in-flight entries land in the
/// next snapshot).
#[must_use]
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let counter_names = reg.counter_names.clone();
    let mut threads: Vec<ThreadSnapshot> = Vec::with_capacity(reg.threads.len());
    for rec in &reg.threads {
        let counters = rec.counters[..counter_names.len()]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let ring = rec.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let entries = ring
            .chronological()
            .into_iter()
            .filter(|e| !e.name.is_empty())
            .map(|e| SpanRecord {
                name: e.name,
                kind: e.kind,
                start_ns: e.start_ns,
                dur_ns: e.dur_ns,
                value: e.value,
            })
            .collect();
        let dropped = ring.dropped;
        drop(ring);
        threads.push(ThreadSnapshot {
            index: rec.index,
            label: rec.label.clone(),
            counters,
            entries,
            dropped,
        });
    }
    drop(reg);
    threads.sort_by_key(|t| t.index);
    Snapshot {
        counter_names,
        threads,
    }
}

impl Snapshot {
    /// Counter totals summed across threads, sorted by name.
    #[must_use]
    pub fn counter_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = self
            .counter_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let sum = self
                    .threads
                    .iter()
                    .map(|t| t.counters.get(i).copied().unwrap_or(0))
                    .sum();
                (*name, sum)
            })
            .collect();
        totals.sort_by_key(|(name, _)| *name);
        totals
    }

    /// Renders the snapshot as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto and
    /// `chrome://tracing`. Spans become `ph:"X"` complete events,
    /// samples become `ph:"C"` counter events; counter totals ride in
    /// the `otherData` side table.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut event = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(s);
        };
        event(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"abc\"}}",
            &mut out,
        );
        for t in &self.threads {
            let tid = t.index + 1;
            let mut meta = format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":"
            );
            push_json_str(&mut meta, &t.label);
            meta.push_str("}}");
            event(&meta, &mut out);
            for e in &t.entries {
                let mut ev = String::with_capacity(128);
                match e.kind {
                    EntryKind::Span => {
                        ev.push_str("{\"ph\":\"X\",\"name\":");
                        push_json_str(&mut ev, e.name);
                        ev.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"ts\":"));
                        push_us(&mut ev, e.start_ns);
                        ev.push_str(",\"dur\":");
                        push_us(&mut ev, e.dur_ns);
                        ev.push('}');
                    }
                    EntryKind::Sample => {
                        ev.push_str("{\"ph\":\"C\",\"name\":");
                        push_json_str(&mut ev, e.name);
                        ev.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"ts\":"));
                        push_us(&mut ev, e.start_ns);
                        ev.push_str(&format!(",\"args\":{{\"value\":{}}}}}", e.value));
                    }
                }
                event(&ev, &mut out);
            }
        }
        out.push_str("\n],\"otherData\":{");
        let mut first_kv = true;
        for (name, total) in self.counter_totals() {
            if !first_kv {
                out.push(',');
            }
            first_kv = false;
            push_json_str(&mut out, name);
            out.push_str(&format!(":\"{total}\""));
        }
        for t in &self.threads {
            if t.dropped > 0 {
                if !first_kv {
                    out.push(',');
                }
                first_kv = false;
                push_json_str(&mut out, &format!("dropped[{}]", t.label));
                out.push_str(&format!(":\"{}\"", t.dropped));
            }
        }
        out.push_str("}}\n");
        out
    }

    /// Renders a stable-order text summary: counter totals by name,
    /// then per-thread span statistics (count / total / min / max
    /// duration) and sample statistics (count / last value) by name.
    #[must_use]
    pub fn text_summary(&self) -> String {
        use std::collections::BTreeMap;
        let mut out = String::new();
        out.push_str("abc-obs summary\n");
        out.push_str("counters:\n");
        let totals = self.counter_totals();
        if totals.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, total) in totals {
            out.push_str(&format!("  {name} = {total}\n"));
        }
        for t in &self.threads {
            out.push_str(&format!(
                "thread [{}] {} (entries={}, dropped={}):\n",
                t.index,
                t.label,
                t.entries.len(),
                t.dropped
            ));
            // name -> (count, total_ns, min_ns, max_ns)
            let mut spans: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
            // name -> (count, last_value)
            let mut samples: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            for e in &t.entries {
                match e.kind {
                    EntryKind::Span => {
                        let stat = spans.entry(e.name).or_insert((0, 0, u64::MAX, 0));
                        stat.0 += 1;
                        stat.1 += e.dur_ns;
                        stat.2 = stat.2.min(e.dur_ns);
                        stat.3 = stat.3.max(e.dur_ns);
                    }
                    EntryKind::Sample => {
                        let stat = samples.entry(e.name).or_insert((0, 0));
                        stat.0 += 1;
                        stat.1 = e.value;
                    }
                }
            }
            for (name, (count, total, min, max)) in spans {
                out.push_str(&format!(
                    "  span {name}: count={count} total={total}ns min={min}ns max={max}ns\n"
                ));
            }
            for (name, (count, last)) in samples {
                out.push_str(&format!("  sample {name}: count={count} last={last}\n"));
            }
        }
        out
    }
}

/// Appends `ns` rendered as microseconds with fixed 3-digit fractional
/// precision (`1234ns` -> `1.234`). Deterministic: integer arithmetic
/// only.
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

/// Appends `s` as a JSON string literal with escaping.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------
// Chrome-trace structural validation

/// Event counts gathered by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `ph:"C"` counter events.
    pub counters: usize,
    /// `ph:"M"` metadata events.
    pub metadata: usize,
}

/// Structurally validates a Chrome trace-event JSON document (object
/// form): parses it with the hand-rolled [`json`] reader, then checks
/// `traceEvents` is an array of event objects whose `ph`/`name`/`ts`/
/// `dur`/`pid`/`tid` fields have the right shapes.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(input: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut stats = ChromeTraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
        if ev.get("name").and_then(json::JsonValue::as_str).is_none() {
            return Err(format!("event {i}: missing string \"name\""));
        }
        let num = |key: &str| ev.get(key).and_then(json::JsonValue::as_f64);
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    match num(key) {
                        Some(v) if v >= 0.0 => {}
                        _ => {
                            return Err(format!("event {i}: span event missing numeric \"{key}\""));
                        }
                    }
                }
                stats.spans += 1;
            }
            "C" => {
                for key in ["ts", "pid", "tid"] {
                    match num(key) {
                        Some(v) if v >= 0.0 => {}
                        _ => {
                            return Err(format!(
                                "event {i}: counter event missing numeric \"{key}\""
                            ));
                        }
                    }
                }
                match ev.get("args") {
                    Some(json::JsonValue::Object(_)) => {}
                    _ => {
                        return Err(format!("event {i}: counter event missing object \"args\""));
                    }
                }
                stats.counters += 1;
            }
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
        stats.events += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_with_exact_drop_counter() {
        let mut ring = RingInner {
            entries: vec![EMPTY_ENTRY; 4],
            next: 0,
            filled: false,
            dropped: 0,
        };
        for i in 0..10 {
            ring.push(Entry {
                name: "e",
                kind: EntryKind::Sample,
                start_ns: i,
                dur_ns: 0,
                value: i,
            });
        }
        assert_eq!(ring.dropped, 6);
        let chron = ring.chronological();
        assert_eq!(chron.len(), 4);
        let values: Vec<u64> = chron.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingInner {
            entries: Vec::new(),
            next: 0,
            filled: false,
            dropped: 0,
        };
        ring.push(EMPTY_ENTRY);
        assert_eq!(ring.dropped, 1);
        assert!(ring.chronological().is_empty());
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        let mut out = String::new();
        push_us(&mut out, 1_234_567);
        out.push(' ');
        push_us(&mut out, 7);
        assert_eq!(out, "1234.567 0.007");
    }

    #[test]
    fn validator_rejects_shape_errors() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\"}]}").is_err()
        );
        let ok = "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"ts\":0.1,\
                  \"dur\":2,\"pid\":1,\"tid\":1}]}";
        let stats = validate_chrome_trace(ok).expect("valid");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.events, 1);
    }
}
