//! A minimal hand-rolled JSON reader used to *validate* exporter output.
//!
//! The workspace is std-only, so the Chrome-trace CI gate and `abc
//! inspect` cannot lean on serde. This module implements the small
//! recursive-descent subset they need: parse a complete JSON document
//! into a [`JsonValue`] tree (or fail with a byte offset), with a depth
//! cap so hostile input cannot blow the stack. It is a *validator*, not
//! a general-purpose codec: numbers are kept as `f64` and no effort is
//! made to preserve key order or duplicate keys.

use std::collections::BTreeMap;

/// A parsed JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as a double; fine for validation).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Duplicate keys keep the last value.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key`, when `self` is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when `self` is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser will follow.
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on any syntax error,
/// over-deep nesting, or trailing non-whitespace input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => {
                self.expect("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.expect("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.expect("null")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.bump(); // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected ':' after key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: accept but replace lone
                        // surrogates — this is a validator, not a codec.
                        match char::from_u32(u32::from(code)) {
                            Some(c) => out.push(c),
                            None => out.push('\u{fffd}'),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input was &str, so the
                    // sequence is valid; just copy the raw bytes through).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..end]) {
                        out.push_str(chunk);
                        self.pos = end;
                    } else {
                        return Err(self.err("invalid utf-8 in string"));
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u16::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u16::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u16::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let int_start = self.pos;
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => Err(self.err("number out of range")),
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(JsonValue::Null));
        assert_eq!(parse(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(parse("-12.5e1"), Ok(JsonValue::Number(-125.0)));
        assert_eq!(
            parse("\"a\\nb\\u0041\""),
            Ok(JsonValue::String("a\nbA".to_string()))
        );
    }

    #[test]
    fn parses_containers() {
        let doc = parse("{\"k\":[1,2,{\"n\":null}],\"é\":\"ü\"}").expect("parses");
        let arr = doc.get("k").and_then(JsonValue::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(doc.get("é").and_then(JsonValue::as_str), Some("ü"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1.", "\"\\q\"", "tru", "[1] x", "1e",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
