//! Criterion benches for `abc-service`: loopback ingestion throughput,
//! single-session and 8-session (sharded).
//!
//! Each iteration streams pre-generated clocksync trace documents into a
//! running server and waits for the verdict — i.e. it measures the full
//! pipeline: line assembly, streaming parse, incremental checking, and
//! reply traffic. Divide events by the reported per-iteration time for
//! events/s; `cargo run --release -p abc-bench --bin service_snapshot`
//! writes the same measurement as `BENCH_service.json`.

use abc_bench::workloads;
use abc_core::Xi;
use abc_service::client::{run_loadgen, LoadgenDoc};
use abc_service::server::{start, ServerConfig};
use abc_service::{feed_stream_binary, feed_stream_text};
use criterion::{criterion_group, criterion_main, Criterion};

/// Comfortable band: admissible at Ξ = 5, so the checker does real work on
/// every event (no early latch-and-skip).
fn docs(count: u64, events: usize) -> Vec<LoadgenDoc> {
    (0..count)
        .map(|s| {
            let trace = workloads::clocksync_trace(4, 1, 1, 4, 100 + s, events);
            LoadgenDoc {
                label: format!("doc{s}"),
                events: trace.events().len(),
                expect: None,
                text: trace.to_stream_text(),
                binary: Some(trace.to_stream_binary()),
            }
        })
        .collect()
}

fn bench_service_ingest(c: &mut Criterion) {
    let xi = Xi::from_integer(5);
    let handle = start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();

    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);

    // One session, one 10k-event document per iteration — both wire forms.
    let single = docs(1, 10_000);
    group.bench_function("single_session_10k_events_v1_text", |b| {
        b.iter(|| {
            let out = feed_stream_text(&addr, &xi, &single[0].text).expect("feed");
            assert!(!out.verdict.is_violation());
            out.oks
        });
    });
    let single_bin = single[0].binary.as_deref().unwrap();
    group.bench_function("single_session_10k_events_v2_binary", |b| {
        b.iter(|| {
            let out = feed_stream_binary(&addr, &xi, single_bin).expect("feed");
            assert!(!out.verdict.is_violation());
            out.acked_events
        });
    });

    // Eight concurrent sessions, 8 × 10k events per iteration.
    let eight = docs(8, 10_000);
    group.bench_function("eight_sessions_80k_events_v1_text", |b| {
        b.iter(|| {
            let report = run_loadgen(&addr, &xi, &eight, 8, false).expect("loadgen");
            assert_eq!(report.violations, 0);
            report.total_events
        });
    });
    group.bench_function("eight_sessions_80k_events_v2_binary", |b| {
        b.iter(|| {
            let report = run_loadgen(&addr, &xi, &eight, 8, true).expect("loadgen");
            assert_eq!(report.violations, 0);
            report.total_events
        });
    });
    group.finish();
    handle.join();
}

criterion_group!(benches, bench_service_ingest);
criterion_main!(benches);
