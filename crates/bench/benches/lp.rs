//! Criterion benches: the Theorem 7 delay-assignment routes.
//!
//! Polynomial difference-constraint route vs. the paper-literal cycle-LP
//! (exact simplex over enumerated cycles) — DESIGN.md ablation 3.3a/3.3b.

use abc_bench::workloads;
use abc_core::assign::{assign_delays, assign_delays_via_cycle_lp};
use abc_core::enumerate::EnumerationLimits;
use abc_core::Xi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_polynomial_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_delays_diffcon");
    for msgs in [50usize, 200, 800] {
        let g = workloads::random_graph(8, msgs, 42);
        let xi = Xi::from_integer(50); // large enough to be feasible usually
        group.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, _| {
            b.iter(|| assign_delays(&g, &xi));
        });
    }
    group.finish();
}

fn bench_cycle_lp_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_delays_cycle_lp");
    group.sample_size(10);
    for hops in [3usize, 5] {
        let g = workloads::two_chain(hops);
        let xi = Xi::from_integer(hops as i64 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(hops), &hops, |b, _| {
            b.iter(|| assign_delays_via_cycle_lp(&g, &xi, EnumerationLimits::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polynomial_route, bench_cycle_lp_route);
criterion_main!(benches);
