//! Criterion benches: ABC-condition checking scalability.
//!
//! The polynomial checker (Bellman–Ford reduction) vs. brute-force cycle
//! enumeration, and the exact max-ratio query — the ablation DESIGN.md
//! calls out for the "model checking awkward" gap.

use abc_bench::workloads;
use abc_core::enumerate::{enumerate_cycles, EnumerationLimits};
use abc_core::{check, Xi};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_is_admissible(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_admissible");
    for msgs in [50usize, 200, 800] {
        let g = workloads::random_graph(8, msgs, 42);
        let xi = Xi::from_integer(3);
        group.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, _| {
            b.iter(|| check::is_admissible(&g, &xi).unwrap());
        });
    }
    group.finish();
}

fn bench_max_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_relevant_cycle_ratio");
    for msgs in [50usize, 200] {
        let g = workloads::random_graph(8, msgs, 42);
        group.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, _| {
            b.iter(|| check::max_relevant_cycle_ratio(&g));
        });
    }
    group.finish();
}

fn bench_enumeration_vs_checker(c: &mut Criterion) {
    // The brute-force baseline on a graph small enough to finish.
    let g = workloads::random_graph(5, 14, 7);
    let xi = Xi::from_integer(3);
    let mut group = c.benchmark_group("checker_vs_enumeration");
    group.bench_function("bellman_ford", |b| {
        b.iter(|| check::is_admissible(&g, &xi).unwrap());
    });
    group.bench_function("enumeration", |b| {
        b.iter(|| {
            let e = enumerate_cycles(&g, EnumerationLimits::default());
            e.cycles
                .iter()
                .filter(|c| c.classify().relevant)
                .all(|c| !c.classify().violates(&xi))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_is_admissible,
    bench_max_ratio,
    bench_enumeration_vs_checker
);
criterion_main!(benches);
