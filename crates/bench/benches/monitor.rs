//! Criterion benches: incremental ABC monitoring vs batch re-checking on
//! growing clocksync traces.
//!
//! The number that matters is the *per-appended-event* cost. A batch
//! monitor pays one full `O(V·E)` Bellman–Ford pass per event — shown here
//! as `batch_check_once_at_full_size`. The incremental monitor pays
//! `incremental_stream_all_events / events` per event; on the 10k-event
//! trace the whole stream is cheaper than a handful of batch passes, i.e.
//! appended-event checking is orders of magnitude (far beyond 10×) faster
//! than batch re-checking.

use abc_bench::workloads;
use abc_core::{check, Xi};
use criterion::{criterion_group, criterion_main, Criterion};

/// Band [1, 4] keeps the trace admissible for Ξ = 5, so neither side gets
/// to exit early via a latched violation.
const XI: (i64, i64) = (5, 1);

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let xi = Xi::from_fraction(XI.0, XI.1);
    for events in [1_000usize, 10_000] {
        let trace = workloads::clocksync_trace(4, 1, 1, 4, 42, events);
        let g = trace.to_execution_graph();
        assert_eq!(g.num_events(), events, "trace did not reach the budget");
        let mut group = c.benchmark_group(format!("monitor_{events}_events"));
        group.sample_size(10);
        // All `events` appends, each incrementally re-checked: divide by
        // `events` for the per-appended-event cost.
        group.bench_function("incremental_stream_all_events", |b| {
            b.iter(|| {
                let mon = trace.replay_into_monitor(&xi).unwrap();
                assert!(mon.is_admissible());
                mon.stats().relaxations
            });
        });
        // One batch re-check of the full graph: what a batch-based monitor
        // would pay for EVERY appended event.
        group.bench_function("batch_check_once_at_full_size", |b| {
            b.iter(|| {
                let admissible = check::is_admissible(&g, &xi).unwrap();
                assert!(admissible);
                admissible
            });
        });
        group.finish();
    }
}

fn bench_monitored_run_overhead(c: &mut Criterion) {
    use abc_sim::delay::BandDelay;
    use abc_sim::{RunLimits, Simulation};
    let xi = Xi::from_fraction(XI.0, XI.1);
    let limits = RunLimits {
        max_events: 5_000,
        max_time: u64::MAX,
    };
    let mut group = c.benchmark_group("simulation_5000_events");
    group.sample_size(10);
    group.bench_function("without_monitor", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(BandDelay::new(1, 4, 7));
            for _ in 0..4 {
                sim.add_process(abc_clocksync::TickGen::new(4, 1));
            }
            sim.run(limits).events_executed
        });
    });
    group.bench_function("with_attached_monitor", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(BandDelay::new(1, 4, 7));
            for _ in 0..4 {
                sim.add_process(abc_clocksync::TickGen::new(4, 1));
            }
            sim.attach_monitor(&xi).unwrap();
            let stats = sim.run(limits);
            assert!(sim.monitor().unwrap().is_admissible());
            stats.events_executed
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_batch,
    bench_monitored_run_overhead
);
criterion_main!(benches);
