//! Criterion bench: sweep-engine scaling across worker-thread counts.
//!
//! The same 128-run clocksync sweep is timed at 1, 2, 4, and 8 workers;
//! results are identical at every point (see `tests/sweep_scaling.rs` for
//! the asserted version), so the only thing varying is wall-clock.

use abc_bench::workloads;
use abc_core::Xi;
use abc_harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
use abc_harness::sweep::{run_sweep, SweepOptions};
use abc_sim::RunLimits;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sweep_spec(runs: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: "bench".into(),
        protocol: Protocol::ClockSync { n: 4, f: 1 },
        delay: DelaySweep::Band {
            lo: Grid::fixed(1),
            hi: Grid::fixed(6),
        },
        faults: FaultPlan::none(),
        limits: RunLimits {
            max_events: 400,
            max_time: u64::MAX,
        },
        xi: Xi::from_integer(2),
        runs_per_point: runs,
        base_seed: 99,
        sim_workers: 1,
    }
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let spec = sweep_spec(128);
    let mut group = c.benchmark_group("sweep_scaling_128_runs");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_sweep(
                        &spec,
                        SweepOptions {
                            threads,
                            keep_violating_traces: false,
                        },
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_trace_text(c: &mut Criterion) {
    let trace = workloads::clocksync_trace(4, 1, 1, 6, 7, 2_000);
    let text = trace.to_text();
    let mut group = c.benchmark_group("trace_text");
    group.bench_function("serialize_2k_events", |b| {
        b.iter(|| trace.to_text());
    });
    group.bench_function("parse_2k_events", |b| {
        b.iter(|| abc_sim::Trace::from_text(&text).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_scaling, bench_trace_text);
criterion_main!(benches);
