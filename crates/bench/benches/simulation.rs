//! Criterion benches: simulator and clock-synchronization throughput.

use abc_bench::workloads;
use abc_clocksync::instrument;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_clocksync_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("clocksync_trace");
    group.sample_size(10);
    for n in [4usize, 7, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| workloads::clocksync_trace(n, (n - 1) / 3, 10, 19, 3, 2_000));
        });
    }
    group.finish();
}

fn bench_instrumentation(c: &mut Criterion) {
    let trace = workloads::clocksync_trace(7, 2, 10, 19, 3, 3_000);
    let mut group = c.benchmark_group("instrumentation");
    group.bench_function("max_clock_spread", |b| {
        b.iter(|| instrument::max_clock_spread(&trace));
    });
    group.bench_function("bounded_progress_worst_gap", |b| {
        b.iter(|| instrument::bounded_progress_worst_gap(&trace));
    });
    group.bench_function("consistent_cut_spread", |b| {
        b.iter(|| instrument::max_consistent_cut_spread(&trace));
    });
    group.bench_function("trace_to_graph", |b| {
        b.iter(|| trace.to_execution_graph());
    });
    group.finish();
}

criterion_group!(benches, bench_clocksync_steps, bench_instrumentation);
criterion_main!(benches);
