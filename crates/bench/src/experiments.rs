//! The experiment implementations (one per DESIGN.md index entry).
//!
//! Each prints a table in the spirit of the paper's figures and returns
//! `true` iff all checked properties held. EXPERIMENTS.md records the
//! output of `experiments all`.

use abc_clocksync::{byzantine::TickRusher, instrument, LockStep, RoundApp, TickGen};
use abc_core::assign::{
    assign_delays, assign_delays_via_cycle_lp, cycle_lp_system, CycleLpOutcome,
};
use abc_core::cyclespace::CycleVector;
use abc_core::enumerate::{enumerate_relevant_cycles, EnumerationLimits};
use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_core::{check, Xi};
use abc_fd::{FdResponder, PingPongDetector};
use abc_models::{parsync, scenarios, theta};
use abc_rational::Ratio;
use abc_sim::delay::{AdversarialSpan, BandDelay, DelayModel, Delivery};
use abc_sim::{CrashAt, RunLimits, Simulation};
use abc_variants::{AdResponder, DoublingLockStep, EventuallyBanded, XiEstimator};
use abc_vlsi::{SoC, ASIC, FPGA};
use std::collections::BTreeMap;

use crate::workloads;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn row(cols: &[&str]) {
    println!("  {}", cols.join(" | "));
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Fig. 1: a 4-message slow chain spans a 5-message fast chain: relevant
/// cycle, ratio 5/4; admissibility flips exactly at Ξ = 5/4.
pub fn fig1() -> bool {
    banner("Fig 1: relevant cycle with spanning chains");
    let mut b = ExecutionGraph::builder(9);
    let q = b.init(ProcessId(0));
    for i in 1..9 {
        b.init(ProcessId(i));
    }
    let mut cur = q;
    for i in 2..=5 {
        let (_, r) = b.send(cur, ProcessId(i));
        cur = r;
    }
    b.send(cur, ProcessId(1)); // C2: 5 messages, arrives first
    let mut cur = q;
    for i in 6..=8 {
        let (_, r) = b.send(cur, ProcessId(i));
        cur = r;
    }
    b.send(cur, ProcessId(1)); // C1: 4 messages, arrives later (spans C2)
    let g = b.finish();
    let ratio = check::max_relevant_cycle_ratio(&g).unwrap();
    let at = check::is_admissible(&g, &Xi::from_fraction(5, 4)).unwrap();
    let above = check::is_admissible(&g, &Xi::from_fraction(3, 2)).unwrap();
    let witness = check::find_violation(&g, &Xi::from_fraction(5, 4)).unwrap();
    row(&["quantity", "paper", "measured"]);
    row(&["|Z-|/|Z+|", "5/4", &format!("{ratio:?}")]);
    row(&["admissible at Xi=5/4", "no (strict <)", verdict(!at)]);
    row(&["admissible at Xi=3/2", "yes", verdict(above)]);
    if let Some(w) = &witness {
        row(&["witness cycle", "C1 spans C2", &w.to_string()]);
    }
    ratio == Some(Ratio::new(5, 4)) && !at && above && witness.is_some()
}

/// The shared Fig. 2 construction (two relevant cycles sharing message e).
fn fig2_graph() -> (ExecutionGraph, Vec<abc_core::cycle::Cycle>) {
    let mut b = ExecutionGraph::builder(4);
    let q0 = b.init(ProcessId(0));
    for i in 1..4 {
        b.init(ProcessId(i));
    }
    b.send(q0, ProcessId(2)); // m1
    let (_, r1) = {
        let g = b.graph();
        let last = g.messages().last().unwrap();
        (last.id, last.to)
    };
    let (_, p1) = b.send(r1, ProcessId(1)); // m2
    let (_, p2) = b.send(q0, ProcessId(1)); // e
    let (_, s1) = b.send(p2, ProcessId(3)); // m3
    b.send(q0, ProcessId(3)); // m5
    let _ = (p1, s1);
    let g = b.finish();
    let cycles = enumerate_relevant_cycles(&g, EnumerationLimits::default()).cycles;
    (g, cycles)
}

/// Fig. 2: the combined cycle X ⊕ Y; the mixed edge e cancels.
pub fn fig2() -> bool {
    banner("Fig 2: cycle space and the combined cycle X + Y");
    let (_g, cycles) = fig2_graph();
    row(&["relevant cycles found", &cycles.len().to_string()]);
    let mut ok = cycles.len() >= 3;
    // Find two cycles sharing a message with opposite orientation and show
    // the cancellation.
    let vectors: Vec<CycleVector> = cycles.iter().map(CycleVector::from_cycle).collect();
    let mut cancelled = false;
    'outer: for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            if vectors[i].consistency(&vectors[j]) == abc_core::cyclespace::Consistency::OConsistent
            {
                let sum = vectors[i].add(&vectors[j]);
                row(&[
                    "o-consistent pair",
                    &format!("X={} Y={}", cycles[i], cycles[j]),
                ]);
                row(&[
                    "X + Y support",
                    &format!("{} messages (mixed edge cancelled)", sum.support_len()),
                ]);
                cancelled = sum.support_len() < vectors[i].support_len() + vectors[j].support_len();
                break 'outer;
            }
        }
    }
    ok &= cancelled;
    row(&["mixed edge cancels", verdict(cancelled)]);
    ok
}

/// Fig. 3: the ping-pong detector times out a crashed process; accuracy
/// and completeness on real runs.
pub fn fig3() -> bool {
    banner("Fig 3: timing out p_slow via ping-pong with p_fast");
    let mut ok = true;
    row(&["scenario", "crashed detected", "false suspicions", "probes"]);
    for (crashed, label) in [(vec![2usize], "p2 crashed"), (vec![], "all correct")] {
        let mut sim = Simulation::new(BandDelay::new(10, 19, 5));
        sim.add_process(PingPongDetector::with_threshold(4, 4)); // 2Xi, Xi=2
        for p in 1..4 {
            if crashed.contains(&p) {
                sim.add_faulty_process(CrashAt::new(FdResponder, 0));
            } else {
                sim.add_process(FdResponder);
            }
        }
        sim.run(RunLimits {
            max_events: 20_000,
            max_time: u64::MAX,
        });
        let d = sim.process_as::<PingPongDetector>(ProcessId(0)).unwrap();
        let det = crashed.iter().all(|p| d.is_suspected(ProcessId(*p)));
        let false_susp = d.suspected().filter(|p| !crashed.contains(&p.0)).count();
        row(&[
            label,
            verdict(det),
            &false_susp.to_string(),
            &d.probes_completed().to_string(),
        ]);
        ok &= det && false_susp == 0;
    }
    ok
}

/// Fig. 4: if the slow reply arrives early, the closed cycle is
/// non-relevant and carries no information.
pub fn fig4() -> bool {
    banner("Fig 4: early reply => non-relevant cycle");
    let build = |reply_last: bool| -> ExecutionGraph {
        let mut b = ExecutionGraph::builder(3);
        let p0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        let (_, s1) = b.send(p0, ProcessId(1));
        let (_, f1) = b.send(p0, ProcessId(2));
        let (_, e1) = b.send(f1, ProcessId(0));
        let (_, f2) = b.send(e1, ProcessId(2));
        if reply_last {
            b.send(f2, ProcessId(0));
            b.send(s1, ProcessId(0));
        } else {
            b.send(s1, ProcessId(0));
            b.send(f2, ProcessId(0));
        }
        b.finish()
    };
    let late = build(true); // Fig 3 situation
    let early = build(false); // Fig 4 situation
    let xi = Xi::from_integer(2);
    let late_ok = !check::is_admissible(&late, &xi).unwrap();
    let early_ok = check::is_admissible(&early, &xi).unwrap();
    row(&["order", "paper", "measured"]);
    row(&[
        "reply after psi (Fig 3)",
        "violates Xi=2 (4/2)",
        verdict(late_ok),
    ]);
    row(&[
        "reply before psi (Fig 4)",
        "non-relevant, admissible",
        verdict(early_ok),
    ]);
    row(&[
        "max ratio (late)",
        "2",
        &format!("{:?}", check::max_relevant_cycle_ratio(&late).unwrap()),
    ]);
    late_ok && early_ok
}

/// Fig. 5 / Lemma 4: the causal-cone property on adversarial runs —
/// frontier clocks of causal-past cuts differ by at most 2Ξ.
pub fn fig5() -> bool {
    banner("Fig 5 / Lemma 4: causal cone (consistent-cut synchrony <= 2Xi)");
    let mut ok = true;
    row(&["n", "f", "adversary", "cut spread", "2Xi", "verdict"]);
    for (n, f, seed) in [(4usize, 1usize, 1u64), (7, 2, 2), (7, 2, 3)] {
        let xi = Xi::from_integer(2);
        let mut sim = Simulation::new(BandDelay::new(10, 19, seed));
        for _ in 0..(n - f) {
            sim.add_process(TickGen::new(n, f));
        }
        for _ in 0..f {
            sim.add_faulty_process(TickRusher::new(7));
        }
        sim.run(RunLimits {
            max_events: 6_000,
            max_time: u64::MAX,
        });
        let spread = instrument::max_consistent_cut_spread(sim.trace()).unwrap_or(0);
        let bound = instrument::two_xi(&xi);
        let pass = Ratio::from_integer(spread as i64) <= bound;
        row(&[
            &n.to_string(),
            &f.to_string(),
            "tick rusher",
            &spread.to_string(),
            &bound.to_string(),
            verdict(pass),
        ]);
        ok &= pass;
    }
    ok
}

/// Fig. 6: the `Ax < b` system built from enumerated cycles, solved with
/// the exact simplex; Farkas certificates below the threshold.
pub fn fig6() -> bool {
    banner("Fig 6: the cycle inequality system Ax < b");
    let g = workloads::two_chain(3); // ratio 3
    let mut ok = true;
    for (xi, feasible_expected) in [
        (Xi::from_fraction(7, 2), true),
        (Xi::from_integer(3), false),
    ] {
        let lp = cycle_lp_system(&g, &xi, EnumerationLimits::default()).unwrap();
        let k = lp.variables.len();
        let (l, m) = lp.cycles.iter().fold(
            (0, 0),
            |(l, m), (_, rel)| if *rel { (l + 1, m) } else { (l, m + 1) },
        );
        row(&[
            &format!("Xi={xi}"),
            &format!("k={k} messages"),
            &format!("{l} relevant + {m} non-relevant cycles"),
            &format!("{} rows", lp.system.num_rows()),
        ]);
        match assign_delays_via_cycle_lp(&g, &xi, EnumerationLimits::default()).unwrap() {
            CycleLpOutcome::Assignment { delays, timed } => {
                let shown: Vec<String> = delays.iter().map(|d| format!("{d}")).collect();
                row(&["  solution tau", &shown.join(", ")]);
                let normalized = timed.is_normalized(&g, &xi);
                row(&["  normalized (1,Xi) + causal", verdict(normalized)]);
                ok &= feasible_expected && normalized;
            }
            CycleLpOutcome::Infeasible(cert) => {
                let nonzero = cert.multipliers.iter().filter(|y| !y.is_zero()).count();
                row(&[
                    "  infeasible; Farkas certificate",
                    &format!("{nonzero} nonzero multipliers, verified"),
                ]);
                ok &= !feasible_expected && cert.verify(&lp.system);
            }
        }
    }
    ok
}

/// Fig. 7: the literal cycle vectors of the Fig. 2 graph.
pub fn fig7() -> bool {
    banner("Fig 7: cycle vectors");
    let (_g, cycles) = fig2_graph();
    let mut ok = !cycles.is_empty();
    for c in cycles.iter().take(4) {
        let z = CycleVector::from_cycle(c);
        let entries: Vec<String> = z.iter().map(|(m, v)| format!("{m}:{v:+}")).collect();
        row(&[&c.to_string(), &entries.join(" ")]);
        ok &= z.backward_mass() >= z.forward_mass(); // |Z-| >= |Z+| for relevant
    }
    ok
}

/// Fig. 8: the Prover defeats every ParSync parameter choice.
pub fn fig8() -> bool {
    banner("Fig 8: Prover vs Adversary (ABC-admissible, ParSync-violating)");
    let mut ok = true;
    row(&["Phi", "Delta", "Xi", "ABC admissible", "ParSync admissible"]);
    for (phi, delta) in [(2u64, 2u64), (3, 10), (10, 3), (20, 20)] {
        for xi in [Xi::from_fraction(11, 10), Xi::from_integer(2)] {
            let params = parsync::ParSyncParams { phi, delta };
            let (abc_ok, v) = parsync::fig8_game(&params, &xi);
            row(&[
                &phi.to_string(),
                &delta.to_string(),
                &xi.to_string(),
                verdict(abc_ok),
                if v.admissible {
                    "yes (BAD)"
                } else {
                    "no (prover wins)"
                },
            ]);
            ok &= abc_ok && !v.admissible;
        }
    }
    ok
}

/// Fig. 9: 2-hop delay compensation.
pub fn fig9() -> bool {
    banner("Fig 9: compensated 2-hop paths");
    let (g, timed) = scenarios::fig9_compensated_paths();
    let ratio = check::max_relevant_cycle_ratio(&g).unwrap();
    let theta_obs = timed.max_theta_ratio(&g);
    let ok = ratio == Some(Ratio::from_integer(1))
        && check::is_admissible(&g, &Xi::from_fraction(11, 10)).unwrap();
    row(&["quantity", "value"]);
    row(&["link delays", "q->r = 38, r->s = 2, q->p = 10"]);
    row(&["max relevant cycle ratio", &format!("{ratio:?}")]);
    row(&["observed Theta (per message)", &format!("{theta_obs:?}")]);
    row(&["ABC admissible for Xi=11/10", verdict(ok)]);
    ok
}

/// Fig. 10: FIFO from the ABC condition.
pub fn fig10() -> bool {
    banner("Fig 10: ABC-enforced FIFO");
    let (in_order, reordered) = scenarios::fig10_fifo();
    let a = check::is_admissible(&in_order, &Xi::from_integer(4)).unwrap();
    let b = !check::is_admissible(&reordered, &Xi::from_integer(4)).unwrap();
    let c = check::max_relevant_cycle_ratio(&reordered) == Ok(Some(Ratio::from_integer(5)));
    let d = check::is_admissible(&reordered, &Xi::from_integer(6)).unwrap();
    row(&["case", "paper", "measured"]);
    row(&["in order, Xi=4", "admissible", verdict(a)]);
    row(&["reordered, Xi=4", "forbidden (cycle 5/1)", verdict(b)]);
    row(&["reordered max ratio", "5", verdict(c)]);
    row(&["reordered, Xi=6", "admissible (no FIFO)", verdict(d)]);
    a && b && c && d
}

/// Theorems 1–3: progress and precision sweep.
pub fn precision() -> bool {
    banner("Thm 1-3: progress and precision <= 2Xi");
    let mut ok = true;
    row(&[
        "n",
        "f",
        "delays",
        "Xi",
        "min clock",
        "spread",
        "2Xi",
        "verdict",
    ]);
    let cases: Vec<(usize, usize, u64, u64, i64)> = vec![
        (4, 1, 10, 19, 2),
        (7, 2, 10, 19, 2),
        (10, 3, 10, 29, 3),
        (13, 4, 10, 19, 2),
    ];
    for (n, f, lo, hi, xi_int) in cases {
        for seed in [1u64, 2, 3] {
            let xi = Xi::from_integer(xi_int);
            let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
            for _ in 0..(n - f) {
                sim.add_process(TickGen::new(n, f));
            }
            for _ in 0..f {
                sim.add_faulty_process(TickRusher::new(3));
            }
            // Budget by simulated time: Byzantine rushers generate message
            // storms that would eat any event budget, but they cannot slow
            // the correct processes' real-time progress.
            let _ = n;
            sim.run(RunLimits {
                max_events: 2_000_000,
                max_time: 3_000,
            });
            let spread = instrument::max_clock_spread(sim.trace()).unwrap();
            let minc = instrument::min_final_clock(sim.trace()).unwrap();
            let bound = instrument::two_xi(&xi);
            let pass = Ratio::from_integer(spread as i64) <= bound && minc > 10;
            if seed == 1 {
                row(&[
                    &n.to_string(),
                    &f.to_string(),
                    &format!("[{lo},{hi}]"),
                    &xi.to_string(),
                    &minc.to_string(),
                    &spread.to_string(),
                    &bound.to_string(),
                    verdict(pass),
                ]);
            }
            ok &= pass;
        }
    }
    // Adversarial victim link: approaches the bound.
    let xi = Xi::from_integer(4);
    let mut sim = Simulation::new(AdversarialSpan::new(10, 39, ProcessId(0)));
    for _ in 0..4 {
        sim.add_process(TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: 6_000,
        max_time: u64::MAX,
    });
    let spread = instrument::max_clock_spread(sim.trace()).unwrap();
    let pass = Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi) && spread >= 1;
    row(&[
        "4",
        "1",
        "victim p0 [10,39]",
        "4",
        "-",
        &spread.to_string(),
        "8",
        verdict(pass),
    ]);
    ok && pass
}

/// Theorem 4: bounded progress.
pub fn bounded_progress() -> bool {
    banner("Thm 4: bounded progress rho = 4Xi + 1");
    let mut ok = true;
    row(&["n", "f", "Xi", "worst gap", "rho bound", "verdict"]);
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        let xi = Xi::from_integer(2);
        let trace = workloads::clocksync_trace(n, f, 10, 19, 7, 4_000);
        let gap = instrument::bounded_progress_worst_gap(&trace);
        let pass = instrument::bounded_progress_holds(&trace, &xi);
        row(&[
            &n.to_string(),
            &f.to_string(),
            &xi.to_string(),
            &gap.to_string(),
            &instrument::rho_bound(&xi).to_string(),
            verdict(pass),
        ]);
        ok &= pass;
    }
    ok
}

/// A trivial round application used by the lock-step experiment.
#[derive(Clone, Debug, Default)]
struct EchoRounds {
    seen: Vec<u64>,
}

impl RoundApp for EchoRounds {
    type Payload = u64;

    fn first_message(&mut self, me: ProcessId, _n: usize) -> u64 {
        me.0 as u64
    }

    fn on_round(&mut self, me: ProcessId, round: u64, rcv: &BTreeMap<ProcessId, u64>) -> u64 {
        self.seen.push(rcv.len() as u64);
        me.0 as u64 + round
    }
}

/// Theorem 5: lock-step rounds, including under a Byzantine tick rusher.
pub fn lockstep() -> bool {
    banner("Thm 5: lock-step round simulation");
    let mut ok = true;
    row(&[
        "n",
        "f",
        "byz",
        "rounds",
        "all correct msgs seen",
        "verdict",
    ]);
    for byz in [0usize, 1] {
        let n = 4;
        let xi = Xi::from_integer(2);
        let mut sim = Simulation::new(BandDelay::new(50, 99, 11));
        for _ in 0..(n - byz) {
            sim.add_process(LockStep::new(n, 1, &xi, EchoRounds::default()));
        }
        for _ in 0..byz {
            sim.add_faulty_process(TickRusher::new(5));
        }
        sim.run(RunLimits {
            max_events: 30_000,
            max_time: u64::MAX,
        });
        let correct_mask: u128 = (1 << (n - byz)) - 1;
        let mut pass = true;
        let mut min_rounds = u64::MAX;
        for p in 0..(n - byz) {
            let ls = sim
                .process_as::<LockStep<EchoRounds>>(ProcessId(p))
                .unwrap();
            pass &= ls.report().lockstep_holds(correct_mask);
            min_rounds = min_rounds.min(ls.report().rounds_started());
        }
        pass &= min_rounds >= 5;
        row(&[
            &n.to_string(),
            "1",
            &byz.to_string(),
            &min_rounds.to_string(),
            verdict(pass),
            verdict(pass),
        ]);
        ok &= pass;
    }
    ok
}

/// Theorem 6: Θ-admissible executions satisfy the ABC condition.
pub fn theta_subset() -> bool {
    banner("Thm 6: M_Theta is a subset of M_ABC (cycle ratio <= Theta)");
    let mut ok = true;
    row(&[
        "band",
        "observed Theta",
        "max cycle ratio",
        "ratio <= Theta",
    ]);
    for (lo, hi, seed) in [(10u64, 19u64, 1u64), (10, 25, 2), (50, 99, 3), (7, 7, 4)] {
        let trace = workloads::clocksync_trace(4, 1, lo, hi, seed, 700);
        let g = trace.to_execution_graph();
        let timed = trace.to_timed_graph();
        let (ratio, obs) = theta::cycle_ratio_vs_theta(&g, &timed);
        let pass = match (&ratio, &obs) {
            (Some(r), Some(Some(t))) => r <= t,
            (None, _) => true,
            (_, None | Some(None)) => false,
        };
        row(&[
            &format!("[{lo},{hi}]"),
            &format!("{obs:?}"),
            &format!("{ratio:?}"),
            verdict(pass),
        ]);
        ok &= pass;
    }
    ok
}

/// Theorem 7/12: delay assignments, polynomial and cycle-LP routes.
pub fn delay_assignment() -> bool {
    banner("Thm 7/12: normalized delay assignments");
    let mut ok = true;
    row(&[
        "graph",
        "Xi",
        "assignment",
        "normalized",
        "theta-adm for Xi",
    ]);
    for hops in 2..=5usize {
        let g = workloads::two_chain(hops);
        for xi_num in [2i64, 4, 7] {
            let xi = Xi::new(Ratio::new(xi_num, 1)).unwrap();
            let admissible = check::is_admissible(&g, &xi).unwrap();
            match assign_delays(&g, &xi) {
                Ok(timed) => {
                    let norm = timed.is_normalized(&g, &xi);
                    let theta_ok = timed.is_theta_admissible(&g, xi.as_ratio());
                    if hops == 3 {
                        row(&[
                            &format!("two_chain({hops})"),
                            &xi.to_string(),
                            "exists",
                            verdict(norm),
                            verdict(theta_ok),
                        ]);
                    }
                    ok &= admissible && norm && theta_ok;
                }
                Err(_) => {
                    if hops == 3 {
                        row(&[
                            &format!("two_chain({hops})"),
                            &xi.to_string(),
                            "refused (violating cycle)",
                            "-",
                            "-",
                        ]);
                    }
                    ok &= !admissible;
                }
            }
        }
    }
    // On a real simulated trace.
    let trace = workloads::clocksync_trace(4, 1, 10, 19, 9, 400);
    let g = trace.to_execution_graph();
    let xi = Xi::from_fraction(21, 10);
    let timed = assign_delays(&g, &xi);
    let pass = timed
        .as_ref()
        .map(|t| t.is_normalized(&g, &xi))
        .unwrap_or(false);
    row(&[
        "clocksync trace (400 ev)",
        "21/10",
        "exists",
        verdict(pass),
        "-",
    ]);
    ok && pass
}

/// Theorem 11 / Corollary 1 on random sums of enumerated relevant cycles.
pub fn decomposition() -> bool {
    banner("Thm 11 / Cor 1: sums of relevant cycles stay below Xi");
    let g = workloads::two_chain(4);
    let cycles = enumerate_relevant_cycles(&g, EnumerationLimits::default()).cycles;
    let max = check::max_relevant_cycle_ratio(&g).unwrap().unwrap();
    let xi = Xi::new(&max + &Ratio::new(1, 2)).unwrap();
    let mut ok = true;
    row(&["combination", "|C-|/|C+|", "< Xi"]);
    let mut sum = CycleVector::zero();
    for (i, c) in cycles.iter().enumerate() {
        sum = sum.add(&CycleVector::from_cycle(c).scale((i as i64 % 3) + 1));
        let pass = sum.satisfies_corollary1(&xi);
        row(&[
            &format!("first {} cycles", i + 1),
            &format!("{:?}", sum.ratio()),
            verdict(pass),
        ]);
        ok &= pass;
    }
    ok
}

/// Replays Theorem 7 delays through a second simulation run and compares
/// per-process observable histories (Lemma 5 / Theorem 9 in action).
pub fn indistinguishability() -> bool {
    banner("Lemma 5 / Thm 9: ABC execution replayed under assigned delays");
    // 1. Run clock sync under band delays; extract the graph.
    let n = 4;
    let trace = workloads::clocksync_trace(n, 1, 10, 19, 13, 600);
    let (g, event_map) = trace.to_execution_graph_with_map();
    let xi = Xi::from_fraction(21, 10);
    let Ok(timed) = assign_delays(&g, &xi) else {
        println!("  assignment refused — trace not admissible?");
        return false;
    };
    // 2. Scale all assigned event times to exact integers (LCM of all
    // denominators), so the replayed schedule reproduces the assigned
    // per-process receive orders exactly.
    let mut denom_lcm = abc_rational::BigInt::from(1u32);
    for t in timed.times() {
        let q = t.denom().clone();
        let gcd = denom_lcm.gcd(&q);
        denom_lcm = &denom_lcm * &(&q / &gcd);
    }
    let Some(scale) = denom_lcm.to_i64().filter(|s| *s > 0 && *s < 1_000_000_000) else {
        println!("  denominator LCM too large to replay exactly");
        return false;
    };
    let scale_r = Ratio::from_integer(scale);
    // Init offsets, shifted so the earliest init lands at 0.
    let init_times: Vec<Ratio> = (0..n)
        .map(|p| {
            let first = g.events_of(ProcessId(p))[0];
            timed.time(first) * &scale_r
        })
        .collect();
    let min_init = init_times.iter().min().unwrap().clone();
    let start_of = |p: usize| -> u64 {
        let shifted = &init_times[p] - &min_init;
        debug_assert!(shifted.is_integer());
        u64::try_from(shifted.numer().to_i128().unwrap()).unwrap()
    };
    // 3. Per-sender delay sequences over ALL trace messages in send order:
    // assigned (scaled) delays for delivered messages; far-future delays
    // for messages still in flight at the end of the recorded prefix.
    const HORIZON: u64 = u64::MAX / 4;
    let mut per_sender: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (mi, tm) in trace.messages().iter().enumerate() {
        let delay = match tm.recv_event {
            Some(recv_idx) => {
                let recv_graph = event_map[recv_idx].expect("delivered");
                let abc_core::graph::Trigger::Message(mid) = g.event(recv_graph).trigger else {
                    unreachable!("receive events are message-triggered")
                };
                let d = timed.message_delay(&g, mid) * &scale_r;
                debug_assert!(d.is_integer());
                u64::try_from(d.numer().to_i128().unwrap()).unwrap()
            }
            None => HORIZON,
        };
        per_sender[tm.from.0].push(delay);
        let _ = mi;
    }
    struct Replay {
        per_sender: Vec<Vec<u64>>,
        next: Vec<usize>,
    }
    impl DelayModel for Replay {
        fn delivery(&mut self, f: ProcessId, _t: ProcessId, _s: u64, _q: u64) -> Delivery {
            let i = self.next[f.0];
            self.next[f.0] += 1;
            match self.per_sender[f.0].get(i) {
                Some(d) => Delivery::After(*d),
                // Messages beyond the recorded prefix never arrive within
                // the compared window.
                None => Delivery::After(HORIZON),
            }
        }
    }
    // 4. Re-run the same deterministic algorithm under the replayed
    // schedule (assigned init offsets + assigned delays).
    let mut sim = Simulation::new(Replay {
        per_sender,
        next: vec![0; n],
    });
    for p in 0..n {
        sim.add_process_starting_at(TickGen::new(n, 1), start_of(p));
    }
    sim.run(RunLimits {
        max_events: 600,
        max_time: HORIZON - 1,
    });
    // 5. Compare per-process observable histories (trigger sender + clock
    // label sequences) on the common prefix.
    let history = |t: &abc_sim::Trace| -> Vec<Vec<(Option<usize>, Option<u64>)>> {
        let mut h: Vec<Vec<(Option<usize>, Option<u64>)>> = vec![Vec::new(); n];
        for ev in t.events() {
            let sender = ev.trigger.map(|mi| t.messages()[mi].from.0);
            h[ev.process.0].push((sender, ev.label));
        }
        h
    };
    let h1 = history(&trace);
    let h2 = history(sim.trace());
    let mut ok = true;
    row(&[
        "process",
        "events (orig)",
        "events (replay)",
        "common prefix equal",
    ]);
    for p in 0..n {
        let common = h1[p].len().min(h2[p].len());
        let equal = h1[p][..common] == h2[p][..common];
        row(&[
            &format!("p{p}"),
            &h1[p].len().to_string(),
            &h2[p].len().to_string(),
            verdict(equal),
        ]);
        ok &= equal && common > 10;
    }
    ok
}

/// Consensus atop lock-step rounds.
pub fn consensus() -> bool {
    banner("Consensus atop lock-step rounds");
    use abc_consensus::harness;
    let xi = Xi::from_integer(2);
    let mut ok = true;
    row(&[
        "algorithm",
        "n",
        "f",
        "faults",
        "agreement",
        "validity",
        "terminated",
    ]);
    let eig = harness::run_eig(4, 1, 1, &[1, 1, 1], &xi, 3, 60_000);
    row(&[
        "EIG",
        "4",
        "1",
        "1 equivocator",
        verdict(eig.agreement()),
        verdict(eig.validity()),
        verdict(eig.terminated()),
    ]);
    ok &= eig.agreement() && eig.validity() && eig.terminated();
    let eig7 = harness::run_eig(7, 2, 2, &[4, 4, 4, 4, 4], &xi, 5, 400_000);
    row(&[
        "EIG",
        "7",
        "2",
        "2 equivocators",
        verdict(eig7.agreement()),
        verdict(eig7.validity()),
        verdict(eig7.terminated()),
    ]);
    ok &= eig7.agreement() && eig7.validity() && eig7.terminated();
    let fs = harness::run_floodset(4, 1, &[(3, 5)], &[7, 3, 9, 1], &xi, 2, 60_000);
    row(&[
        "FloodSet",
        "4",
        "1",
        "1 crash",
        verdict(fs.agreement()),
        verdict(fs.validity()),
        verdict(fs.terminated()),
    ]);
    ok &= fs.agreement() && fs.validity() && fs.terminated();
    ok
}

/// Section 6 variants.
pub fn variants() -> bool {
    banner("Sec 6: ?ABC estimation and eventual lock-step");
    let mut ok = true;
    // ?ABC estimation.
    let mut sim = Simulation::new(BandDelay::new(10, 39, 11));
    sim.add_process(XiEstimator::new(4, &Xi::from_fraction(11, 10)));
    for _ in 1..4 {
        sim.add_process(AdResponder);
    }
    sim.run(RunLimits {
        max_events: 60_000,
        max_time: u64::MAX,
    });
    let est = sim.process_as::<XiEstimator>(ProcessId(0)).unwrap();
    let est_ok = est.revisions >= 1 && est.suspected_count() == 0;
    row(&[
        "?ABC estimator (true ratio < 4)",
        &format!(
            "revisions={}, final threshold={}",
            est.revisions,
            est.threshold()
        ),
        verdict(est_ok),
    ]);
    ok &= est_ok;
    // Eventual ABC via doubling rounds.
    let n = 4;
    let mut sim = Simulation::new(EventuallyBanded::new(2_000, 400, 50, 99, 3));
    for _ in 0..n {
        sim.add_process(DoublingLockStep::new(n, 1, 2));
    }
    sim.run(RunLimits {
        max_events: 120_000,
        max_time: u64::MAX,
    });
    let correct_mask: u128 = (1 << n) - 1;
    let mut dls_ok = true;
    for p in 0..n {
        let d = sim.process_as::<DoublingLockStep>(ProcessId(p)).unwrap();
        dls_ok &= d.rounds_completed() >= 6
            && d.lockstep_suffix_holds(d.rounds_completed().saturating_sub(1), correct_mask);
    }
    row(&[
        "?eventual-ABC doubling rounds",
        "suffix lock-step",
        verdict(dls_ok),
    ]);
    ok && dls_ok
}

/// Section 5.3 VLSI experiment.
pub fn vlsi() -> bool {
    banner("Sec 5.3: SoC clock generation and technology migration");
    let mut ok = true;
    row(&[
        "grid",
        "profile",
        "min clock",
        "spread",
        "cycle ratio",
        "Xi margin",
    ]);
    for (w, h) in [(2usize, 2usize), (3, 2)] {
        let xi = Xi::from_integer(if (w, h) == (2, 2) { 5 } else { 7 });
        for profile in [FPGA, ASIC] {
            let soc = SoC::new(w, h, profile);
            let run = soc.run_clock_generation(&xi, 21, 1_200);
            let margin_ok = run
                .xi_margin
                .as_ref()
                .map(|m| m > &Ratio::one())
                .unwrap_or(true);
            row(&[
                &format!("{w}x{h}"),
                profile.name,
                &run.min_clock.to_string(),
                &run.spread.to_string(),
                &format!("{:?}", run.max_cycle_ratio.as_ref().map(Ratio::to_f64)),
                &format!("{:?}", run.xi_margin.as_ref().map(Ratio::to_f64)),
            ]);
            ok &= margin_ok && run.min_clock > 5;
        }
    }
    ok
}

/// Detector threshold ablation: false suspicions appear exactly below 2Ξ.
pub fn fd_sweep() -> bool {
    banner("Fig 3 ablation: detector threshold vs false suspicions");
    let mut ok = true;
    row(&["threshold", "2Xi?", "false suspicion rate over 12 seeds"]);
    let mut below_saw_false = false;
    for threshold in [2u64, 3, 4, 6] {
        let mut false_count = 0;
        for seed in 0..12u64 {
            let mut sim = Simulation::new(BandDelay::new(10, 19, seed));
            sim.add_process(PingPongDetector::with_threshold(4, threshold));
            for _ in 1..4 {
                sim.add_process(FdResponder);
            }
            sim.run(RunLimits {
                max_events: 20_000,
                max_time: u64::MAX,
            });
            let d = sim.process_as::<PingPongDetector>(ProcessId(0)).unwrap();
            if d.suspected().count() > 0 {
                false_count += 1;
            }
        }
        let sound = threshold >= 4; // 2Xi with Xi=2
        row(&[
            &threshold.to_string(),
            if sound { "at/above" } else { "below" },
            &format!("{false_count}/12"),
        ]);
        if sound {
            ok &= false_count == 0;
        } else if false_count > 0 {
            below_saw_false = true;
        }
    }
    row(&[
        "below-threshold false suspicions observed",
        verdict(below_saw_false),
        "",
    ]);
    ok && below_saw_false
}
