//! Regenerates the paper's figures and theorem validations.
//!
//! ```text
//! cargo run --release -p abc-bench --bin experiments -- all
//! cargo run --release -p abc-bench --bin experiments -- fig1 precision
//! cargo run --release -p abc-bench --bin experiments -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = abc_bench::registry();
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--list" || a == "-l" || a == "help")
    {
        println!("Experiments (run with: experiments <id>... | all):");
        for (id, desc, _) in &registry {
            println!("  {id:<20} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let run_all = args.iter().any(|a| a == "all");
    let mut failures = Vec::new();
    let mut ran = 0;
    for (id, _, runner) in &registry {
        if run_all || args.iter().any(|a| a == id) {
            ran += 1;
            let ok = runner();
            println!("  => {}", if ok { "PASS" } else { "FAIL" });
            if !ok {
                failures.push(*id);
            }
        }
    }
    if ran == 0 {
        eprintln!("no matching experiment; use --list");
        return ExitCode::FAILURE;
    }
    println!("\n==================================================");
    if failures.is_empty() {
        println!("All {ran} experiments PASSED.");
        ExitCode::SUCCESS
    } else {
        println!(
            "{} of {ran} experiments FAILED: {failures:?}",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
