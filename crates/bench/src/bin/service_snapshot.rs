//! Measures `abc-service` loopback ingestion throughput over both wire
//! protocols (v1 text, v2 binary) and writes a `BENCH_service.json`
//! snapshot (no serde — the JSON is assembled by hand), so the bench
//! trajectory of the service is tracked in-repo.
//!
//! ```text
//! cargo run --release -p abc-bench --bin service_snapshot [-- OUTPUT.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use abc_core::Xi;
use abc_rational::Ratio;
use abc_service::client::{feed_stream_binary, run_loadgen, LoadgenDoc};
use abc_service::feed_stream_text;
use abc_service::server::{start, ServerConfig};

fn docs(count: u64, events: usize) -> Vec<LoadgenDoc> {
    (0..count)
        .map(|s| {
            let trace = abc_bench::workloads::clocksync_trace(4, 1, 1, 4, 100 + s, events);
            LoadgenDoc {
                label: format!("doc{s}"),
                events: trace.events().len(),
                expect: None,
                binary: Some(trace.to_stream_binary()),
                text: trace.to_stream_text(),
            }
        })
        .collect()
}

struct ProtocolRow {
    protocol: &'static str,
    single_events: usize,
    single_eps: f64,
    eight_events: usize,
    eight_eps: f64,
    doc_p50_ms: f64,
    ack_p50_us: f64,
    events_per_ack: f64,
}

fn measure(addr: &str, xi: &Xi, binary: bool) -> ProtocolRow {
    let feed = |doc: &LoadgenDoc| {
        if binary {
            feed_stream_binary(addr, xi, doc.binary.as_deref().expect("encoded above"))
        } else {
            feed_stream_text(addr, xi, &doc.text)
        }
    };

    // Single session: one document on the BENCH_core workload size (10k
    // events — the monitor-rate reference point), best of 5 after warm-up.
    let single = docs(1, 10_000);
    let _ = feed(&single[0]).expect("warm-up feed");
    let mut best_single = f64::MAX;
    for _ in 0..9 {
        let t0 = Instant::now();
        let out = feed(&single[0]).expect("feed");
        assert!(!out.verdict.is_violation());
        best_single = best_single.min(t0.elapsed().as_secs_f64());
    }
    #[allow(clippy::cast_precision_loss)]
    let single_eps = single[0].events as f64 / best_single;

    // Eight concurrent sessions: 8 × 10k events, best of 3.
    let eight = docs(8, 10_000);
    let eight_events: usize = eight.iter().map(|d| d.events).sum();
    let _ = run_loadgen(addr, xi, &eight, 8, binary).expect("warm-up loadgen");
    let mut best_eight = f64::MAX;
    let (mut doc_p50_ms, mut ack_p50_us, mut events_per_ack) = (0.0, 0.0, 0.0);
    for _ in 0..3 {
        let report = run_loadgen(addr, xi, &eight, 8, binary).expect("loadgen");
        assert_eq!(report.violations, 0);
        let wall = report.wall.as_secs_f64();
        if wall < best_eight {
            best_eight = wall;
            doc_p50_ms = report.latency_percentiles.0.as_secs_f64() * 1e3;
            ack_p50_us = report.ack_latency_percentiles.0.as_secs_f64() * 1e6;
            events_per_ack = report.events_per_ack;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let eight_eps = eight_events as f64 / best_eight;

    ProtocolRow {
        protocol: if binary { "v2" } else { "v1" },
        single_events: single[0].events,
        single_eps,
        eight_events,
        eight_eps,
        doc_p50_ms,
        ack_p50_us,
        events_per_ack,
    }
}

/// Best-of-N single-session v2 feed rate against `addr` — the probe
/// behind the margin-tracking overhead row.
fn single_v2_eps(addr: &str, xi: &Xi, doc: &LoadgenDoc) -> f64 {
    let bytes = doc.binary.as_deref().expect("encoded above");
    let _ = feed_stream_binary(addr, xi, bytes).expect("warm-up feed");
    let mut best = f64::MAX;
    for _ in 0..9 {
        let t0 = Instant::now();
        let out = feed_stream_binary(addr, xi, bytes).expect("feed");
        assert!(!out.verdict.is_violation());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    #[allow(clippy::cast_precision_loss)]
    let eps = doc.events as f64 / best;
    eps
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let xi = Xi::from_integer(5);
    // Shards scale with the host (the server default); on a single-core
    // runner extra shard threads only add scheduler churn.
    let handle = start(ServerConfig::default()).expect("bind loopback server");
    let addr = handle.addr().to_string();

    // Two interleaved passes per protocol; keep each protocol's best. On
    // small shared hosts the noise floor moves on a seconds scale, so a
    // single consecutive pass can land one protocol entirely inside a
    // slow burst and skew the comparison.
    let passes = [
        measure(&addr, &xi, false),
        measure(&addr, &xi, true),
        measure(&addr, &xi, false),
        measure(&addr, &xi, true),
    ];
    let pick = |protocol: &str| {
        passes
            .iter()
            .filter(|r| r.protocol == protocol)
            .max_by(|a, b| a.single_eps.total_cmp(&b.single_eps))
            .expect("both protocols measured")
    };
    let rows = [pick("v1"), pick("v2")];

    // Margin-tracking overhead: the same single-session v2 feed against a
    // server with an active `--warn-margin` threshold the workload
    // crosses (margin reaches 3 against the 2 threshold). Every warn-gate
    // layer runs: doubling-gated per-event evaluations, cheap `O(live
    // arcs)` bound scans, the exact probe escalation, one warning flip
    // per document, and the margin gauge/histogram publishes. The gate
    // starts evaluating from the first event, so the threshold crossing
    // latches while the live window is small and the steady-state cost
    // of a tracked session is a flag check per event. Compared against
    // an untracked server measured back to back, not against the `rows`
    // number, so both sides see the same noise floor. (Pruned-monitor
    // margin signatures are a core-side cost with its own envelope in
    // BENCH_core; this row isolates the service-layer tracking path.)
    let tracked_handle = start(ServerConfig {
        warn_margin: Some(Ratio::from_integer(2)),
        ..ServerConfig::default()
    })
    .expect("bind tracked loopback server");
    let margin_doc = docs(1, 10_000);
    let untracked_eps = single_v2_eps(&addr, &xi, &margin_doc[0]);
    let tracked_eps = single_v2_eps(&tracked_handle.addr().to_string(), &xi, &margin_doc[0]);
    assert!(
        tracked_eps * 2.0 >= untracked_eps,
        "margin tracking overhead exceeds 2x: tracked {tracked_eps:.0} vs \
         untracked {untracked_eps:.0} events/s"
    );

    // Flight-recorder (tracing) overhead: the same single-session v2
    // feed with the recorder disabled vs enabled, on the same default
    // server, back to back. Two gates: (a) the enabled recorder keeps at
    // least 90% of the disabled rate, and (b) the two disabled-mode
    // measurements bracketing the enabled run agree within 2% — the
    // branch-on-disabled hooks are a flag check, so any larger delta is
    // measurement noise, and gate (a) would be meaningless on top of it.
    // Each leg keeps its best over all attempts — best-of converges to
    // the host's peak rate, so on a noisy shared runner the delta
    // shrinks with attempts instead of re-rolling a fresh comparison.
    // The document is 5x the reference size: at ~2M events/s a 10k feed
    // lasts ~5ms, inside scheduler-jitter scale, and no number of
    // retries stabilises a measurement shorter than the noise it rides.
    let tracing_doc = docs(1, 50_000);
    let (mut best_before, mut best_enabled, mut best_after) = (0.0f64, 0.0f64, 0.0f64);
    let mut tracing_attempts = 0;
    let (disabled_eps, enabled_eps, disabled_delta) = loop {
        tracing_attempts += 1;
        best_before = best_before.max(single_v2_eps(&addr, &xi, &tracing_doc[0]));
        abc_obs::enable(abc_obs::DEFAULT_RING_CAPACITY);
        best_enabled = best_enabled.max(single_v2_eps(&addr, &xi, &tracing_doc[0]));
        abc_obs::disable();
        abc_obs::reset();
        best_after = best_after.max(single_v2_eps(&addr, &xi, &tracing_doc[0]));
        let disabled = best_before.max(best_after);
        let delta = (best_before - best_after).abs() / disabled;
        if (best_enabled >= 0.90 * disabled && delta <= 0.02) || tracing_attempts >= 20 {
            assert!(
                best_enabled >= 0.90 * disabled,
                "recorder overhead exceeds 10%: enabled {best_enabled:.0} vs \
                 disabled {disabled:.0} events/s"
            );
            assert!(
                delta <= 0.02,
                "disabled-mode rate is not stable within 2% (delta {:.1}%): \
                 {best_before:.0} vs {best_after:.0} events/s",
                delta * 100.0
            );
            break (disabled, best_enabled, delta);
        }
    };

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = format!(
        "{{\n  \"bench\": \"service\",\n  \"unit\": \"events_per_second\",\n  \
         \"hardware_threads\": {cores},\n  \"protocols\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\n      \"protocol\": \"{}\",\n      \
             \"single_session_events\": {},\n      \
             \"single_session_events_per_sec\": {:.0},\n      \
             \"eight_session_events\": {},\n      \
             \"eight_session_events_per_sec\": {:.0},\n      \
             \"eight_session_doc_latency_p50_ms\": {:.2},\n      \
             \"eight_session_ack_latency_p50_us\": {:.1},\n      \
             \"events_per_ack\": {:.1}\n    }}{}\n",
            r.protocol,
            r.single_events,
            r.single_eps,
            r.eight_events,
            r.eight_eps,
            r.doc_p50_ms,
            r.ack_p50_us,
            r.events_per_ack,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"margin\": {{\n    \
         \"single_session_events\": {},\n    \
         \"tracked_v2_events_per_sec\": {:.0},\n    \
         \"untracked_v2_events_per_sec\": {:.0},\n    \
         \"tracked_fraction_of_untracked\": {:.2}\n  }},\n  \"tracing\": {{\n    \
         \"single_session_events\": {},\n    \
         \"recorder_enabled_v2_events_per_sec\": {:.0},\n    \
         \"recorder_disabled_v2_events_per_sec\": {:.0},\n    \
         \"enabled_fraction_of_disabled\": {:.2},\n    \
         \"disabled_mode_delta\": {:.3}\n  }}\n}}\n",
        margin_doc[0].events,
        tracked_eps,
        untracked_eps,
        tracked_eps / untracked_eps,
        tracing_doc[0].events,
        enabled_eps,
        disabled_eps,
        enabled_eps / disabled_eps,
        disabled_delta
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
    tracked_handle.join();
    handle.join();
}
