//! Measures `abc-service` loopback ingestion throughput and writes a
//! `BENCH_service.json` snapshot (no serde — the JSON is assembled by
//! hand), so the bench trajectory of the service is tracked in-repo.
//!
//! ```text
//! cargo run --release -p abc-bench --bin service_snapshot [-- OUTPUT.json]
//! ```

use std::time::Instant;

use abc_core::Xi;
use abc_service::client::{run_loadgen, LoadgenDoc};
use abc_service::feed_stream_text;
use abc_service::server::{start, ServerConfig};

fn docs(count: u64, events: usize) -> Vec<LoadgenDoc> {
    (0..count)
        .map(|s| {
            let trace = abc_bench::workloads::clocksync_trace(4, 1, 1, 4, 100 + s, events);
            LoadgenDoc {
                label: format!("doc{s}"),
                events: trace.events().len(),
                expect: None,
                text: trace.to_stream_text(),
            }
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let xi = Xi::from_integer(5);
    let handle = start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();

    // Single session: one 10k-event document, best of 5 (after warm-up).
    let single = docs(1, 10_000);
    let _ = feed_stream_text(&addr, &xi, &single[0].text).expect("warm-up feed");
    let mut best_single = f64::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        let out = feed_stream_text(&addr, &xi, &single[0].text).expect("feed");
        assert!(!out.verdict.is_violation());
        best_single = best_single.min(t0.elapsed().as_secs_f64());
    }
    #[allow(clippy::cast_precision_loss)]
    let single_eps = single[0].events as f64 / best_single;

    // Eight concurrent sessions: 8 × 10k events, best of 3.
    let eight = docs(8, 10_000);
    let total_events: usize = eight.iter().map(|d| d.events).sum();
    let _ = run_loadgen(&addr, &xi, &eight, 8).expect("warm-up loadgen");
    let mut best_eight = f64::MAX;
    let mut p50 = 0.0;
    for _ in 0..3 {
        let report = run_loadgen(&addr, &xi, &eight, 8).expect("loadgen");
        assert_eq!(report.violations, 0);
        let wall = report.wall.as_secs_f64();
        if wall < best_eight {
            best_eight = wall;
            p50 = report.latency_percentiles.0.as_secs_f64() * 1e3;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let eight_eps = total_events as f64 / best_eight;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"unit\": \"events_per_second\",\n  \
         \"hardware_threads\": {cores},\n  \
         \"single_session_events\": {},\n  \
         \"single_session_events_per_sec\": {:.0},\n  \
         \"eight_session_events\": {total_events},\n  \
         \"eight_session_events_per_sec\": {:.0},\n  \
         \"eight_session_doc_latency_p50_ms\": {:.2}\n}}\n",
        single[0].events, single_eps, eight_eps, p50
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
    handle.join();
}
