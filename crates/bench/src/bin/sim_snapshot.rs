//! Measures the parallel simulation engine on the wide-ring workload
//! (64 processes, every discrete time steps all of them) and writes a
//! `BENCH_sim.json` snapshot (no serde — the JSON is assembled by hand):
//! one row per worker count (sequential, then 2/4/8 pool workers), with
//! wall-clock, throughput, and the speedup over the sequential engine.
//!
//! ```text
//! cargo run --release -p abc-bench --bin sim_snapshot [-- OUTPUT.json]
//! ```
//!
//! The run always asserts that every worker count produces a
//! **byte-identical trace** and identical engine stats (besides the
//! worker-shape fields themselves). The speedup assertion is
//! hardware-gated, mirroring `tests/sim_scaling.rs`: ≥2× at 8 workers on
//! ≥8 hardware threads, proportionally weaker bars below, and on a single
//! core only a no-collapse bound (a worker pool cannot beat physics).

use std::time::Instant;

use abc_bench::workloads;
use abc_sim::{RunLimits, RunStats, Trace};

const PROCESSES: usize = 64;
const SPINS: u32 = 2_000;
const EVENTS: usize = 20_000;

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps > 0"))
}

fn run_once(workers: usize) -> (Trace, RunStats) {
    let mut sim = workloads::wide_ring_sim(PROCESSES, SPINS, workers);
    let stats = sim.run(RunLimits {
        max_events: EVENTS,
        max_time: u64::MAX,
    });
    (sim.into_trace(), stats)
}

/// The stats fields that must agree across engines (the worker-shape
/// fields legitimately differ).
fn core_stats(mut s: RunStats) -> RunStats {
    s.sim_workers = 0;
    s.parallel_steps = 0;
    s.max_step_width = 0;
    s
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let (seq_s, (seq_trace, seq_stats)) = best_of(3, || run_once(1));
    assert_eq!(seq_stats.events_executed, EVENTS, "budget not reached");
    let seq_text = seq_trace.to_text();

    let mut rows = vec![(1usize, seq_s, seq_stats)];
    let mut speedup_at = |workers: usize| -> f64 {
        let (par_s, (par_trace, par_stats)) = best_of(3, || run_once(workers));
        assert_eq!(
            seq_text,
            par_trace.to_text(),
            "trace bytes diverged at {workers} workers"
        );
        assert_eq!(core_stats(seq_stats), core_stats(par_stats));
        assert_eq!(par_stats.sim_workers, workers);
        assert!(par_stats.parallel_steps > 0);
        assert_eq!(
            par_stats.max_step_width, PROCESSES,
            "the wide ring must fill every batch"
        );
        rows.push((workers, par_s, par_stats));
        seq_s / par_s.max(1e-9)
    };
    let s2 = speedup_at(2);
    let s4 = speedup_at(4);
    let s8 = speedup_at(8);

    eprintln!(
        "wide-ring {PROCESSES}p/{EVENTS}ev: 1w {seq_s:.3}s, speedups 2w {s2:.2}x, \
         4w {s4:.2}x, 8w {s8:.2}x on {cores} hardware threads"
    );
    if cores >= 8 {
        assert!(
            s8 >= 2.0,
            "expected >=2x at 8 workers on {cores} hardware threads, got {s8:.2}x"
        );
    } else if cores >= 4 {
        assert!(s4 >= 1.3, "expected >=1.3x on {cores} cores, got {s4:.2}x");
    } else if cores >= 2 {
        assert!(
            s2 >= 1.05,
            "expected >=1.05x on {cores} cores, got {s2:.2}x"
        );
    } else {
        // Single hardware thread: no gain is possible; assert the pool's
        // rendezvous at least does not collapse under contention.
        assert!(
            s8 >= 0.25,
            "8-worker engine catastrophically slower than sequential on 1 core: {s8:.2}x"
        );
    }

    let row_json: Vec<String> = rows
        .iter()
        .map(|(workers, secs, stats)| {
            format!(
                "    {{\"workers\": {workers}, \"wall_ms\": {:.3}, \
                 \"events_per_sec\": {:.0}, \"speedup_vs_sequential\": {:.3}, \
                 \"parallel_steps\": {}, \"max_step_width\": {}}}",
                secs * 1e3,
                EVENTS as f64 / secs,
                seq_s / secs.max(1e-9),
                stats.parallel_steps,
                stats.max_step_width,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"workload\": \"wide-ring n={PROCESSES} \
         spins={SPINS} {EVENTS} events\",\n  \"hardware_threads\": {cores},\n  \
         \"byte_identical_traces\": true,\n  \"rows\": [\n{}\n  ]\n}}\n",
        row_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
