//! Measures the shared-traversal-core hot paths on the 10k-event clocksync
//! workload and writes a `BENCH_core.json` snapshot (no serde — the JSON is
//! assembled by hand), so the bench trajectory of `abc-core` is tracked
//! in-repo:
//!
//! * **batch check**: one `check::is_admissible` pass over the full
//!   execution graph (the seeded Bellman–Ford decision over the shared CSR
//!   [`abc_core::traversal::TraversalGraph`]);
//! * **streaming monitor**: all 10k events through
//!   [`Trace::replay_into_monitor`];
//! * **pruned streaming monitor**: the same stream through
//!   [`Trace::replay_into_monitor_bounded`], with the peak live-event count
//!   of both modes as the memory proxy.
//!
//! ```text
//! cargo run --release -p abc-bench --bin core_snapshot [-- OUTPUT.json]
//! ```
//!
//! When `ABC_BASELINE_BATCH_MS` is set (the pre-refactor batch-check time,
//! measured from the parent git revision in the same PR), it is embedded in
//! the snapshot and the run **asserts the refactor is faster**. The run
//! always asserts that pruning compacts most of the stream, cuts the live
//! window, keeps the streaming monitor within the documented CPU envelope
//! of the unpruned monitor, and reports identical verdicts.
//!
//! [`Trace::replay_into_monitor`]: abc_sim::Trace::replay_into_monitor
//! [`Trace::replay_into_monitor_bounded`]: abc_sim::Trace::replay_into_monitor_bounded

use std::time::Instant;

use abc_bench::workloads;
use abc_core::{check, Xi};

const EVENTS: usize = 10_000;
const PRUNE_EVERY: usize = 256;

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps > 0"))
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_core.json".to_string());
    // Band [1, 4] is admissible for Ξ = 5: no early exit via a latched
    // violation on either side.
    let xi = Xi::from_integer(5);
    let trace = workloads::clocksync_trace(4, 1, 1, 4, 42, EVENTS);
    let g = trace.to_execution_graph();
    assert_eq!(g.num_events(), EVENTS, "trace did not reach the budget");

    let (batch_s, admissible) = best_of(7, || check::is_admissible(&g, &xi).unwrap());
    assert!(admissible, "workload must be admissible");

    let (monitor_s, plain_stats) = best_of(5, || {
        let mon = trace.replay_into_monitor(&xi).unwrap();
        assert!(mon.is_admissible());
        mon.stats()
    });
    let (pruned_s, pruned_stats) = best_of(5, || {
        let mon = trace.replay_into_monitor_bounded(&xi, PRUNE_EVERY).unwrap();
        assert!(mon.is_admissible(), "pruned verdict must match");
        mon.stats()
    });
    assert!(
        pruned_stats.pruned_events > EVENTS / 2,
        "the bounded monitor must compact most of the stream, got {}",
        pruned_stats.pruned_events
    );
    assert!(
        pruned_stats.live_events_peak < plain_stats.live_events_peak / 4,
        "pruning must cut the live window: {} vs {}",
        pruned_stats.live_events_peak,
        plain_stats.live_events_peak
    );
    // Bounded memory costs CPU (boundary condensation per prune): keep the
    // overhead within the documented envelope (~4× at this cadence).
    assert!(
        pruned_s < monitor_s * 8.0,
        "pruning overhead out of bounds: {pruned_s:.4}s vs {monitor_s:.4}s"
    );

    let baseline_ms: Option<f64> = std::env::var("ABC_BASELINE_BATCH_MS")
        .ok()
        .and_then(|v| v.parse().ok());
    if let Some(base) = baseline_ms {
        assert!(
            batch_s * 1e3 < base,
            "batch check regressed: {:.3} ms vs pre-refactor {base:.3} ms",
            batch_s * 1e3
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let baseline_line = baseline_ms.map_or(String::new(), |b| {
        format!("  \"baseline_batch_check_ms\": {b:.3},\n")
    });
    let json = format!(
        "{{\n  \"bench\": \"core\",\n  \"workload\": \"clocksync n=4 band=[1,4] {EVENTS} events\",\n  \
         \"hardware_threads\": {cores},\n\
         {baseline_line}  \
         \"batch_check_ms\": {:.3},\n  \
         \"batch_check_events_per_sec\": {:.0},\n  \
         \"monitor_stream_events_per_sec\": {:.0},\n  \
         \"pruned_monitor_stream_events_per_sec\": {:.0},\n  \
         \"monitor_live_events_peak\": {},\n  \
         \"pruned_monitor_live_events_peak\": {},\n  \
         \"pruned_monitor_pruned_events\": {},\n  \
         \"prune_every\": {PRUNE_EVERY}\n}}\n",
        batch_s * 1e3,
        EVENTS as f64 / batch_s,
        EVENTS as f64 / monitor_s,
        EVENTS as f64 / pruned_s,
        plain_stats.live_events_peak,
        pruned_stats.live_events_peak,
        pruned_stats.pruned_events,
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
