//! Experiment harness for the ABC-model reproduction.
//!
//! One function per experiment of DESIGN.md's index; each prints the
//! paper-shaped table and returns `true` iff every checked property held.
//! The `experiments` binary dispatches on experiment ids; `cargo bench`
//! runs the Criterion performance benches in `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod workloads;

/// The experiment registry: `(id, description, runner)`.
#[must_use]
pub fn registry() -> Vec<(&'static str, &'static str, fn() -> bool)> {
    use experiments as e;
    vec![
        (
            "fig1",
            "Fig 1: relevant cycle, spanning chains, ratio 5/4",
            e::fig1,
        ),
        (
            "fig2",
            "Fig 2: cycle space, mixed edge cancellation",
            e::fig2,
        ),
        (
            "fig3",
            "Fig 3: ping-pong timeout of a crashed process",
            e::fig3,
        ),
        (
            "fig4",
            "Fig 4: early reply closes a non-relevant cycle",
            e::fig4,
        ),
        (
            "fig5",
            "Fig 5: the Lemma 4 causal-cone cycle in a real run",
            e::fig5,
        ),
        ("fig6", "Fig 6: the Ax<b system, solved exactly", e::fig6),
        ("fig7", "Fig 7: cycle vectors of the example graph", e::fig7),
        ("fig8", "Fig 8: Prover/Adversary game vs ParSync", e::fig8),
        ("fig9", "Fig 9: 2-hop delay compensation", e::fig9),
        ("fig10", "Fig 10: ABC-enforced FIFO", e::fig10),
        (
            "precision",
            "Thm 1-3: progress + precision <= 2Xi sweep",
            e::precision,
        ),
        (
            "bounded_progress",
            "Thm 4: bounded progress rho = 4Xi+1",
            e::bounded_progress,
        ),
        ("lockstep", "Thm 5: lock-step round simulation", e::lockstep),
        (
            "theta_subset",
            "Thm 6: M_Theta subset of M_ABC",
            e::theta_subset,
        ),
        (
            "delay_assignment",
            "Thm 7/12: normalized assignments exist",
            e::delay_assignment,
        ),
        (
            "decomposition",
            "Thm 11/Cor 1: cycle-space sums",
            e::decomposition,
        ),
        (
            "indistinguishability",
            "Lemma 5/Thm 9: safety equivalence",
            e::indistinguishability,
        ),
        (
            "consensus",
            "Consensus atop lock-step rounds (EIG, FloodSet)",
            e::consensus,
        ),
        (
            "variants",
            "Sec 6: ?ABC estimation, eventual lock-step",
            e::variants,
        ),
        ("vlsi", "Sec 5.3: SoC clock generation + migration", e::vlsi),
        (
            "fd_sweep",
            "Fig 3 ablation: detector threshold boundary",
            e::fd_sweep,
        ),
    ]
}
