//! Shared workload generators for experiments and benches.

use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation};

/// The canonical "two chains" graph: a fast chain of `hops` messages
/// spanned by one slow direct message (max relevant cycle ratio = `hops`).
#[must_use]
pub fn two_chain(hops: usize) -> ExecutionGraph {
    let mut b = ExecutionGraph::builder(hops + 1);
    let q = b.init(ProcessId(0));
    for i in 1..=hops {
        b.init(ProcessId(i));
    }
    let mut cur = q;
    for i in 2..=hops {
        let (_, r) = b.send(cur, ProcessId(i));
        cur = r;
    }
    b.send(cur, ProcessId(1));
    b.send(q, ProcessId(1));
    b.finish()
}

/// A clock-synchronization trace: `n` processes, `f` fault budget (all
/// correct here), band delays `[lo, hi]`, `events` computing steps.
#[must_use]
pub fn clocksync_trace(
    n: usize,
    f: usize,
    lo: u64,
    hi: u64,
    seed: u64,
    events: usize,
) -> abc_sim::Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(abc_clocksync::TickGen::new(n, f));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

/// A random sparse execution graph with `n` processes and `msgs` messages
/// (seeded), used for checker/LP scaling benches.
#[must_use]
pub fn random_graph(n: usize, msgs: usize, seed: u64) -> ExecutionGraph {
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ExecutionGraph::builder(n);
    for p in 0..n {
        b.init(ProcessId(p));
    }
    for _ in 0..msgs {
        let from = abc_core::EventId(rng.random_range(0..b.num_events()));
        let to = ProcessId(rng.random_range(0..n));
        b.send(from, to);
    }
    b.finish()
}
