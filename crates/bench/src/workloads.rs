//! Shared workload generators for experiments and benches.

use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_sim::delay::{BandDelay, FixedDelay};
use abc_sim::{Context, Process, RunLimits, Simulation};

/// The canonical "two chains" graph: a fast chain of `hops` messages
/// spanned by one slow direct message (max relevant cycle ratio = `hops`).
#[must_use]
pub fn two_chain(hops: usize) -> ExecutionGraph {
    let mut b = ExecutionGraph::builder(hops + 1);
    let q = b.init(ProcessId(0));
    for i in 1..=hops {
        b.init(ProcessId(i));
    }
    let mut cur = q;
    for i in 2..=hops {
        let (_, r) = b.send(cur, ProcessId(i));
        cur = r;
    }
    b.send(cur, ProcessId(1));
    b.send(q, ProcessId(1));
    b.finish()
}

/// A clock-synchronization trace: `n` processes, `f` fault budget (all
/// correct here), band delays `[lo, hi]`, `events` computing steps.
#[must_use]
pub fn clocksync_trace(
    n: usize,
    f: usize,
    lo: u64,
    hi: u64,
    seed: u64,
    events: usize,
) -> abc_sim::Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(abc_clocksync::TickGen::new(n, f));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

/// splitmix64's finalizer — the compute kernel burned by [`RingPulse`]
/// steps (the same mixer `SmallRng::seed_stream` splits with).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One process of the wide-ring workload ([`wide_ring_sim`]): every step
/// folds the incoming value through `spins` splitmix64 rounds (the "real
/// compute" knob), records the digest as the event label (keeping the
/// work observable), and forwards it one hop around the ring.
pub struct RingPulse {
    spins: u32,
}

impl Process<u64> for RingPulse {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        // Two pulses per process: every later discrete time delivers two
        // messages to each of the n processes, so each parallel batch is
        // n jobs wide with two steps per job.
        let me = ctx.me().0;
        let n = ctx.num_processes();
        ctx.send(ProcessId((me + 1) % n), me as u64);
        ctx.send(ProcessId((me + 2) % n), !(me as u64));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: abc_core::ProcessId, msg: &u64) {
        let mut digest = msg ^ ((from.0 as u64) << 32) ^ ctx.me().0 as u64;
        for _ in 0..self.spins {
            digest = splitmix64(digest);
        }
        ctx.set_label(digest);
        let me = ctx.me().0;
        let n = ctx.num_processes();
        ctx.send(ProcessId((me + 1) % n), digest);
    }
}

/// The wide fan-out scenario the parallel engine is benchmarked on: `n`
/// processes in a ring, unit delays (every discrete time steps all `n`
/// processes — maximum batch width), `spins` splitmix64 rounds of compute
/// per step. Run it with [`Simulation::run`] under an event budget; the
/// trace is byte-identical at any `workers`.
#[must_use]
pub fn wide_ring_sim(n: usize, spins: u32, workers: usize) -> Simulation<u64, FixedDelay> {
    let mut sim = Simulation::new(FixedDelay::new(1));
    sim.set_sim_workers(workers);
    for _ in 0..n {
        sim.add_process(RingPulse { spins });
    }
    sim
}

/// A random sparse execution graph with `n` processes and `msgs` messages
/// (seeded), used for checker/LP scaling benches.
#[must_use]
pub fn random_graph(n: usize, msgs: usize, seed: u64) -> ExecutionGraph {
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ExecutionGraph::builder(n);
    for p in 0..n {
        b.init(ProcessId(p));
    }
    for _ in 0..msgs {
        let from = abc_core::EventId(rng.random_range(0..b.num_events()));
        let to = ProcessId(rng.random_range(0..n));
        b.send(from, to);
    }
    b.finish()
}
