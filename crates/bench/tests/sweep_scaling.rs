//! Sanity check for the claim the `sweep` criterion bench quantifies: the
//! work-queue sweep runner scales across cores while producing identical
//! results at any worker count.
//!
//! The speedup assertion is hardware-gated: parallel wall-clock gains
//! require the cores to exist. On ≥8 hardware threads the acceptance bar
//! is the ISSUE's ≥3× at 8 workers vs 1; on smaller machines a
//! proportionally weaker bar applies (and on a single core only the
//! determinism half is asserted — an 8-worker queue cannot beat physics).
//! The margins are deliberately loose so CI timing noise cannot flake.

use std::time::{Duration, Instant};

use abc_core::Xi;
use abc_harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
use abc_harness::sweep::{run_sweep, SweepOptions, SweepReport};
use abc_sim::RunLimits;

fn spec_512() -> ScenarioSpec {
    ScenarioSpec {
        name: "scaling-512".into(),
        protocol: Protocol::ClockSync { n: 4, f: 1 },
        delay: DelaySweep::Band {
            lo: Grid::fixed(1),
            hi: Grid::fixed(6),
        },
        faults: FaultPlan::none(),
        limits: RunLimits {
            max_events: 200,
            max_time: u64::MAX,
        },
        xi: Xi::from_integer(2),
        runs_per_point: 512,
        base_seed: 4711,
        sim_workers: 1,
    }
}

fn timed(spec: &ScenarioSpec, threads: usize) -> (SweepReport, Duration) {
    let t0 = Instant::now();
    let report = run_sweep(
        spec,
        SweepOptions {
            threads,
            keep_violating_traces: false,
        },
    )
    .unwrap();
    (report, t0.elapsed())
}

#[test]
fn sweep_512_runs_scales_with_workers_and_stays_deterministic() {
    let spec = spec_512();
    assert_eq!(spec.total_runs(), 512);
    // Warm-up (allocator, page faults) outside the timed comparison.
    let _ = timed(&spec, 1);
    let (r1, d1) = timed(&spec, 1);
    let (r8, d8) = timed(&spec, 8);
    assert_eq!(
        r1.aggregate_text(),
        r8.aggregate_text(),
        "8-worker sweep must be byte-identical to serial"
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = d1.as_secs_f64() / d8.as_secs_f64().max(1e-9);
    eprintln!("512-run sweep: 1 worker {d1:?}, 8 workers {d8:?}, speedup {speedup:.2}x on {cores} hardware threads");
    if cores >= 8 {
        assert!(
            speedup >= 3.0,
            "expected >=3x speedup at 8 workers on {cores} hardware threads, got {speedup:.2}x \
             (1 worker: {d1:?}, 8 workers: {d8:?})"
        );
    } else if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x on {cores} cores, got {speedup:.2}x"
        );
    } else if cores >= 2 {
        assert!(
            speedup >= 1.2,
            "expected >=1.2x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        // Single hardware thread: no parallel gain is possible; assert the
        // queue at least does not collapse (pathological contention).
        assert!(
            d8 <= d1.mul_f64(3.0),
            "8-worker queue catastrophically slower than serial on 1 core: {d1:?} vs {d8:?}"
        );
    }
}
