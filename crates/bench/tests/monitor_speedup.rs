//! Sanity check for the claim the `monitor` criterion bench quantifies:
//! appended-event checking via the incremental monitor is at least 10×
//! faster than batch re-checking on a growing clocksync trace.
//!
//! The real margin is orders of magnitude; the 10× assertion here (on a
//! debug build, with a smaller trace than the bench's 10k events) is
//! deliberately loose so CI timing noise cannot flake it.

use std::time::Instant;

use abc_bench::workloads;
use abc_core::{check, Xi};

#[test]
fn incremental_append_beats_batch_recheck_by_10x() {
    let events = 2_000usize;
    let xi = Xi::from_integer(5);
    let trace = workloads::clocksync_trace(4, 1, 1, 4, 42, events);
    let g = trace.to_execution_graph();
    assert_eq!(g.num_events(), events);

    // Warm-up + correctness: the two deciders agree.
    let mon = trace.replay_into_monitor(&xi).unwrap();
    assert!(mon.is_admissible());
    assert!(check::is_admissible(&g, &xi).unwrap());

    // Streaming ALL `events` appends, timed as a whole.
    let t0 = Instant::now();
    let mon = trace.replay_into_monitor(&xi).unwrap();
    let stream_total = t0.elapsed();
    assert!(mon.is_admissible());

    // ONE batch re-check at full size — the cost a batch-based monitor
    // would pay per appended event.
    let t1 = Instant::now();
    assert!(check::is_admissible(&g, &xi).unwrap());
    let batch_once = t1.elapsed();

    // per-event incremental = stream_total / events; require
    // batch_once >= 10 * per-event, i.e. stream_total * 10 <= batch_once * events.
    assert!(
        stream_total * 10 <= batch_once * (events as u32),
        "incremental per-event append not >=10x faster: streamed {events} events \
         in {stream_total:?} vs one batch re-check in {batch_once:?}"
    );
}
