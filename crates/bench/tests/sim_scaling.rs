//! Sanity check for the claim `sim_snapshot` quantifies: the two-phase
//! parallel simulation engine scales across cores while producing
//! **byte-identical traces** at any worker count.
//!
//! The speedup assertion is hardware-gated: parallel wall-clock gains
//! require the cores to exist. On ≥8 hardware threads the acceptance bar
//! is the ISSUE's ≥2× at 8 workers vs sequential on the wide (64-process)
//! scenario; on smaller machines a proportionally weaker bar applies (and
//! on a single core only the determinism half is asserted — a worker pool
//! cannot beat physics). The margins are deliberately loose so CI timing
//! noise cannot flake.

use std::time::{Duration, Instant};

use abc_bench::workloads;
use abc_sim::{RunLimits, RunStats, Trace};

const PROCESSES: usize = 64;
const SPINS: u32 = 2_000;
const EVENTS: usize = 10_000;

fn timed(workers: usize) -> (Trace, RunStats, Duration) {
    let mut sim = workloads::wide_ring_sim(PROCESSES, SPINS, workers);
    let t0 = Instant::now();
    let stats = sim.run(RunLimits {
        max_events: EVENTS,
        max_time: u64::MAX,
    });
    let elapsed = t0.elapsed();
    (sim.into_trace(), stats, elapsed)
}

#[test]
fn wide_ring_scales_with_sim_workers_and_stays_byte_identical() {
    // Warm-up (allocator, page faults) outside the timed comparison.
    let _ = timed(1);
    let (t1, s1, d1) = timed(1);
    let (t8, s8, d8) = timed(8);
    assert_eq!(s1.events_executed, EVENTS, "budget not reached");
    assert_eq!(
        t1.to_text(),
        t8.to_text(),
        "8-worker trace must be byte-identical to sequential"
    );
    assert_eq!(s1.events_executed, s8.events_executed);
    assert_eq!(s1.messages_sent, s8.messages_sent);
    assert_eq!(s1.final_time, s8.final_time);
    assert_eq!(s1.payload_slab_peak, s8.payload_slab_peak);
    assert_eq!(s8.max_step_width, PROCESSES, "batches must fill the ring");
    assert!(s8.parallel_steps > 0);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = d1.as_secs_f64() / d8.as_secs_f64().max(1e-9);
    eprintln!(
        "wide-ring {PROCESSES}p/{EVENTS}ev: sequential {d1:?}, 8 workers {d8:?}, \
         speedup {speedup:.2}x on {cores} hardware threads"
    );
    if cores >= 8 {
        assert!(
            speedup >= 2.0,
            "expected >=2x at 8 workers on {cores} hardware threads, got {speedup:.2}x \
             (sequential: {d1:?}, 8 workers: {d8:?})"
        );
    } else if cores >= 4 {
        let (_, _, d4) = timed(4);
        let s4 = d1.as_secs_f64() / d4.as_secs_f64().max(1e-9);
        assert!(s4 >= 1.3, "expected >=1.3x on {cores} cores, got {s4:.2}x");
    } else if cores >= 2 {
        let (_, _, d2) = timed(2);
        let s2 = d1.as_secs_f64() / d2.as_secs_f64().max(1e-9);
        assert!(
            s2 >= 1.05,
            "expected >=1.05x on {cores} cores, got {s2:.2}x"
        );
    } else {
        // Single hardware thread: no parallel gain is possible; assert the
        // pool's rendezvous at least does not collapse under contention.
        assert!(
            d8 <= d1.mul_f64(4.0),
            "8-worker engine catastrophically slower than sequential on 1 core: {d1:?} vs {d8:?}"
        );
    }
}
