//! R2 fixture: an `unsafe` occurrence with no registry entry.

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
