//! R1 fixture: panic-prone constructs on an untrusted-input path.

pub fn f(v: &[u32]) -> u32 {
    let x = *v.first().unwrap();
    let y: u32 = "7".parse().expect("seven");
    if v.len() == 1 {
        panic!("singleton");
    }
    v[0] + x + y
}
