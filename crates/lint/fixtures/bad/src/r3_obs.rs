//! R3 fixture (recorder hierarchy): a ring holder reaching back for the
//! global REGISTRY — the snapshot-order inversion abc-obs forbids.

use std::sync::Mutex;

#[allow(non_snake_case)]
pub fn snapshot_inverted(REGISTRY: &Mutex<u32>, ring: &Mutex<u32>) {
    let r = ring.lock();
    let g = REGISTRY.lock();
    drop(g);
    drop(r);
}
