//! R3 fixture: inverted acquisition order, then blocking I/O under a
//! lock.

use std::io::Write;
use std::sync::Mutex;

pub fn inverted(outer: &Mutex<u32>, inner: &Mutex<u32>) {
    let i = inner.lock();
    let o = outer.lock();
    drop(o);
    drop(i);
}

pub fn blocked(outer: &Mutex<u32>, w: &mut impl Write) {
    let o = outer.lock();
    let _ = w.write_all(b"x");
    drop(o);
}
