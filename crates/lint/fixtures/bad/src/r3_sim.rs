//! R3 fixture (worker-pool hierarchy): a per-worker outbox holder
//! reaching back for the scheduler queue — the merge-order inversion
//! abc-sim's engine pool forbids.

use std::sync::Mutex;

pub fn merge_inverted(queue: &Mutex<u32>, outbox: &Mutex<u32>) {
    let done = outbox.lock();
    let q = queue.lock();
    drop(q);
    drop(done);
}
