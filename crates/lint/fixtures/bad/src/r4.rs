//! R4 fixture: a strong ordering with no justification comment.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn observe(b: &AtomicBool) -> bool {
    b.load(Ordering::SeqCst)
}
