//! R5 fixture: a bare narrowing cast on a decode path.

pub fn narrow(v: u64) -> u8 {
    v as u8
}
