//! The lexer (and the rule engine behind it) must never panic, whatever
//! bytes it is pointed at — it runs over every file in the tree,
//! including ones that are mid-edit or not valid Rust at all.

use proptest::prelude::*;

use abc_lint::config::Config;
use abc_lint::lexer::lex;
use abc_lint::rules::Engine;
use abc_lint::RuleFilter;

fn hostile_config() -> Config {
    // Put the probe file in scope of every path-scoped rule.
    Config::parse(
        "untrusted soup.rs\nlockscope soup.rs\nlock-level 1 outer\nlock-level 2 inner\nlock-fn 1 lock_table\n",
    )
    .expect("static config parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: tokens stay in bounds and lines stay sane.
    #[test]
    fn lexer_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        for t in &lexed.tokens {
            prop_assert!(t.start <= t.end && t.end <= src.len());
            prop_assert!(t.line >= 1);
        }
    }

    /// Arbitrary (valid UTF-8) strings, biased toward Rust-ish delimiters
    /// the lexer special-cases: quotes, hashes, braces, `r`/`b` prefixes.
    #[test]
    fn lexer_never_panics_on_delimiter_soup(
        picks in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        const PIECES: &[&str] = &[
            "\"", "'", "#", "r", "b", "r#\"", "\\", "//", "/*", "*/",
            "{", "}", "[", "]", "\n", "x", "0", "!", ".", "::",
            "as", "unsafe", "fn", "let",
        ];
        let src: String = picks
            .iter()
            .map(|&p| PIECES[usize::from(p) % PIECES.len()])
            .collect();
        let lexed = lex(&src);
        prop_assert!(lexed.tokens.len() <= src.len().max(1));
    }

    /// The full rule engine survives the same soup (all rules enabled,
    /// every scope matching the probe path).
    #[test]
    fn engine_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let config = hostile_config();
        let mut engine = Engine::new(&config, RuleFilter::all());
        let src = String::from_utf8_lossy(&bytes);
        engine.check_file("soup.rs", &src);
        let _ = engine.finish();
    }
}
