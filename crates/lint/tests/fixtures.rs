//! The committed bad-fixture tree must produce exactly the documented
//! diagnostics — rule, path, and line — and rule filtering must narrow
//! them. This is the differential test for the whole rule engine: any
//! change to lexer or rules that shifts a line or drops a finding fails
//! here before it silently weakens the CI gate.

use std::path::PathBuf;

use abc_lint::{lint_root, RuleFilter};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

const EXPECTED: &[(&str, &str, u32)] = &[
    ("R1", "src/r1.rs", 4),
    ("R1", "src/r1.rs", 5),
    ("R1", "src/r1.rs", 7),
    ("R1", "src/r1.rs", 9),
    ("R2", "src/r2.rs", 4),
    ("R3", "src/r3.rs", 9),
    ("R3", "src/r3.rs", 16),
    ("R3", "src/r3_obs.rs", 9),
    ("R3", "src/r3_sim.rs", 9),
    ("R4", "src/r4.rs", 6),
    ("R5", "src/r5.rs", 4),
];

#[test]
fn every_rule_fires_at_its_exact_line() {
    let report = lint_root(&fixture_root(), &RuleFilter::all()).expect("fixture tree lints");
    assert_eq!(report.files_checked, 7);
    assert!(!report.is_clean());
    let got: Vec<(&str, &str, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.path.as_str(), d.line))
        .collect();
    assert_eq!(got, EXPECTED);
}

#[test]
fn diagnostics_render_with_rule_ids() {
    let report = lint_root(&fixture_root(), &RuleFilter::all()).expect("fixture tree lints");
    let human = report.render_human();
    let json = report.render_json();
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        assert!(
            human.contains(&format!("[{rule}]")),
            "human output names {rule}"
        );
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "json output names {rule}"
        );
    }
    assert!(human.contains("src/r1.rs:4:"));
}

#[test]
fn rule_filter_narrows_the_run() {
    let filter = RuleFilter::only(&["R5"]).expect("valid rule id");
    let report = lint_root(&fixture_root(), &filter).expect("fixture tree lints");
    let got: Vec<(&str, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(got, vec![("R5", 4)]);
}
