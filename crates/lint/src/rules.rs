//! The rule engine: R1–R5 over the token stream of [`crate::lexer`].
//!
//! | Rule | Scope | Checks |
//! |---|---|---|
//! | R1 panic-freedom | `untrusted` paths, non-test | `.unwrap()` / `.expect()`, `panic!` / `unreachable!` / `todo!` / `unimplemented!`, direct `…[` indexing |
//! | R2 unsafe budget | whole workspace | every `unsafe` occurrence must be registered in `lint.conf` |
//! | R3 lock order | `lockscope` paths, non-test | acquisitions must follow the declared hierarchy; no blocking I/O while holding a lock; no undeclared mutexes |
//! | R4 atomics discipline | whole workspace, non-test | `Ordering::` stronger than `Relaxed` needs an adjacent `// ordering:` comment |
//! | R5 cast safety | `untrusted` paths, non-test | no bare `as` narrowing to `u8/u16/u32/usize/i8/i16/i32/isize` |
//! | R0 conf hygiene | `lint.conf` itself | allow/unsafe entries that no longer match anything |
//!
//! Suppression: an `allow R<k> <path> <needle> -- why` entry in
//! `lint.conf` silences a diagnostic when the *flagged source line*
//! contains `<needle>`. Unused entries are reported under R0, so the
//! allowlist cannot rot.

use std::collections::HashMap;

use crate::config::Config;
use crate::lexer::{lex, Lexed, TokKind};

/// Every rule id the engine knows, in report order.
pub const ALL_RULES: &[&str] = &["R0", "R1", "R2", "R3", "R4", "R5"];

/// One finding: rule id, workspace-relative path, 1-based line, message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`"R1"` … `"R5"`, or `"R0"` for `lint.conf` hygiene).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules to run; `None` (default) means all of them.
#[derive(Clone, Debug, Default)]
pub struct RuleFilter(Option<Vec<String>>);

impl RuleFilter {
    /// Run every rule.
    #[must_use]
    pub fn all() -> RuleFilter {
        RuleFilter(None)
    }

    /// Run only the named rules (`["R1", "R3"]`).
    ///
    /// # Errors
    ///
    /// If a name is not a known rule id.
    pub fn only<S: AsRef<str>>(rules: &[S]) -> Result<RuleFilter, String> {
        let mut v = Vec::new();
        for r in rules {
            let r = r.as_ref();
            if !ALL_RULES.contains(&r) {
                return Err(format!(
                    "unknown rule {r:?} (known: {})",
                    ALL_RULES.join(", ")
                ));
            }
            v.push(r.to_string());
        }
        Ok(RuleFilter(Some(v)))
    }

    /// Whether `rule` is enabled under this filter.
    #[must_use]
    pub fn enabled(&self, rule: &str) -> bool {
        self.0.as_ref().is_none_or(|v| v.iter().any(|r| r == rule))
    }

    /// The enabled rule ids, in report order.
    #[must_use]
    pub fn rules(&self) -> Vec<&'static str> {
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| self.enabled(r))
            .collect()
    }
}

/// Method/function names R3 treats as blocking I/O (extended by
/// `blocking` directives in `lint.conf`).
pub const BLOCKING_CALLS: &[&str] = &[
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_until",
    "write",
    "write_all",
    "write_fmt",
    "write_vectored",
    "flush",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
    "sleep",
    "join",
    "wait",
    "wait_timeout",
];

/// Cast targets R5 considers narrowing on at least one supported target
/// width (`u64`/`i64`/`u128`/`i128`/`f64` stay allowed).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Keywords that, immediately before `[`, mean *pattern or type
/// position*, not an indexing expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Multi-file engine state: feed files with [`Engine::check_file`], then
/// call [`Engine::finish`] for the cross-file (R0/R2 staleness) pass.
pub struct Engine<'c> {
    config: &'c Config,
    filter: RuleFilter,
    diags: Vec<Diagnostic>,
    /// `unsafe` occurrences actually seen, per path.
    unsafe_seen: HashMap<String, usize>,
    /// Whether each `allows[i]` suppressed at least one diagnostic.
    allow_used: Vec<bool>,
    lock_levels: HashMap<&'c str, u32>,
    lock_fns: HashMap<&'c str, u32>,
    blocking: Vec<&'c str>,
}

impl<'c> Engine<'c> {
    /// Creates an engine over a parsed config and rule filter.
    #[must_use]
    pub fn new(config: &'c Config, filter: RuleFilter) -> Engine<'c> {
        Engine {
            filter,
            diags: Vec::new(),
            unsafe_seen: HashMap::new(),
            allow_used: vec![false; config.allows.len()],
            lock_levels: config
                .lock_levels
                .iter()
                .map(|(lvl, name)| (name.as_str(), *lvl))
                .collect(),
            lock_fns: config
                .lock_fns
                .iter()
                .map(|(lvl, name)| (name.as_str(), *lvl))
                .collect(),
            blocking: BLOCKING_CALLS
                .iter()
                .copied()
                .chain(config.blocking.iter().map(String::as_str))
                .collect(),
            config,
        }
    }

    /// Lints one file. `rel` is the workspace-relative path with forward
    /// slashes; `src` its (lossily decoded) contents.
    pub fn check_file(&mut self, rel: &str, src: &str) {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        // Files under tests/, benches/, or examples/ are test code in
        // their entirety for the panic/cast/atomics/lock rules; the
        // unsafe budget (R2) still applies.
        let whole_file_test = rel
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples"))
            || rel.ends_with("build.rs");

        let mut found = Vec::new();
        if self.filter.enabled("R2") {
            self.rule_unsafe_budget(rel, src, &lexed, &mut found);
        }
        if !whole_file_test {
            if self.filter.enabled("R1") && Config::path_in(rel, &self.config.untrusted) {
                rule_panic_freedom(src, &lexed, &mut found);
            }
            if self.filter.enabled("R5") && Config::path_in(rel, &self.config.untrusted) {
                rule_cast_safety(src, &lexed, &mut found);
            }
            if self.filter.enabled("R4") {
                rule_atomics(src, &lexed, &mut found);
            }
            if self.filter.enabled("R3") && Config::path_in(rel, &self.config.lockscope) {
                self.rule_lock_order(src, &lexed, &mut found);
            }
        }
        // Apply the allowlist: a diagnostic survives unless an entry for
        // its (rule, path) has a needle contained in the flagged line.
        for (rule, line, message) in found {
            let line_text = usize::try_from(line)
                .ok()
                .and_then(|n| lines.get(n.saturating_sub(1)))
                .copied()
                .unwrap_or("");
            let suppressed = self.config.allows.iter().enumerate().any(|(i, a)| {
                let hit = a.rule == rule
                    && Config::path_in(rel, std::slice::from_ref(&a.path))
                    && line_text.contains(&a.needle);
                if hit {
                    self.allow_used[i] = true;
                }
                hit
            });
            if !suppressed {
                self.diags.push(Diagnostic {
                    rule,
                    path: rel.to_string(),
                    line,
                    message,
                });
            }
        }
    }

    /// Cross-file pass: report stale `allow` / `unsafe` entries (R0),
    /// then return every diagnostic sorted by path and line.
    #[must_use]
    pub fn finish(mut self) -> Vec<Diagnostic> {
        if self.filter.enabled("R0") {
            for (i, a) in self.config.allows.iter().enumerate() {
                if !self.allow_used[i] {
                    self.diags.push(Diagnostic {
                        rule: "R0",
                        path: "lint.conf".to_string(),
                        line: a.conf_line,
                        message: format!(
                            "stale allowlist entry: no {} diagnostic in `{}` matches {:?} — \
                             delete the entry",
                            a.rule, a.path, a.needle
                        ),
                    });
                }
            }
            let mut registered: HashMap<&str, (usize, u32)> = HashMap::new();
            for e in &self.config.unsafe_registry {
                let slot = registered
                    .entry(e.path.as_str())
                    .or_insert((0, e.conf_line));
                slot.0 += 1;
            }
            let mut stale: Vec<(&str, usize, usize, u32)> = registered
                .iter()
                .filter_map(|(path, &(count, line))| {
                    let seen = self.unsafe_seen.get(*path).copied().unwrap_or(0);
                    (seen < count).then_some((*path, count, seen, line))
                })
                .collect();
            stale.sort_unstable_by_key(|&(_, _, _, line)| line);
            for (path, count, seen, line) in stale {
                self.diags.push(Diagnostic {
                    rule: "R0",
                    path: "lint.conf".to_string(),
                    line,
                    message: format!(
                        "stale unsafe registry: `{path}` registers {count} unsafe \
                         occurrence(s) but only {seen} found — delete the surplus entry"
                    ),
                });
            }
        }
        self.diags
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.diags
    }

    /// R2: every `unsafe` keyword occurrence must be covered by a
    /// registry entry for its file.
    fn rule_unsafe_budget(
        &mut self,
        rel: &str,
        src: &str,
        lexed: &Lexed,
        found: &mut Vec<(&'static str, u32, String)>,
    ) {
        let budget = self
            .config
            .unsafe_registry
            .iter()
            .filter(|e| e.path == rel)
            .count();
        let mut seen = 0usize;
        for t in &lexed.tokens {
            if t.kind == TokKind::Ident && lexed.text(src, t) == "unsafe" {
                seen += 1;
                if seen > budget {
                    found.push((
                        "R2",
                        t.line,
                        format!(
                            "unregistered `unsafe` (occurrence {seen}, registered budget \
                             {budget}) — register it in lint.conf with a written justification"
                        ),
                    ));
                }
            }
        }
        if seen > 0 {
            *self.unsafe_seen.entry(rel.to_string()).or_default() += seen;
        }
    }

    /// R3: lock-order + no-blocking-I/O-under-lock, tracked lexically.
    #[allow(clippy::too_many_lines)]
    fn rule_lock_order(
        &self,
        src: &str,
        lexed: &Lexed,
        found: &mut Vec<(&'static str, u32, String)>,
    ) {
        let toks = &lexed.tokens;
        let text = |i: usize| toks.get(i).map_or("", |t| lexed.text(src, t));
        let kind = |i: usize| toks.get(i).map(|t| t.kind);
        let mut held: Vec<GuardSlot> = Vec::new();
        let mut depth: u32 = 0;
        // The let-bound name of the current statement, if any.
        let mut stmt_let: Option<String> = None;
        // Stack of (lock-fn level if the enclosing fn is registered, body depth).
        let mut fn_stack: Vec<(Option<u32>, u32)> = Vec::new();
        let mut pending_fn: Option<Option<u32>> = None;

        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.in_test {
                i += 1;
                continue;
            }
            match t.kind {
                TokKind::Punct(b'{') => {
                    depth += 1;
                    if let Some(lvl) = pending_fn.take() {
                        fn_stack.push((lvl, depth));
                    }
                    stmt_let = None;
                }
                TokKind::Punct(b'}') => {
                    // Guards bound inside the block being closed go out
                    // of scope here (statement temporaries included).
                    held.retain(|g| g.depth < depth);
                    if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        fn_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                    stmt_let = None;
                }
                TokKind::Punct(b';') => {
                    held.retain(|g| !g.temp);
                    stmt_let = None;
                }
                TokKind::Ident => {
                    let w = lexed.text(src, t);
                    match w {
                        "fn" => {
                            let name = text(i + 1);
                            pending_fn = Some(self.lock_fns.get(name).copied());
                        }
                        "let" => {
                            // `let [mut] name = …`
                            let mut j = i + 1;
                            if text(j) == "mut" {
                                j += 1;
                            }
                            if kind(j) == Some(TokKind::Ident) {
                                stmt_let = Some(text(j).to_string());
                            }
                        }
                        "drop" if kind(i + 1) == Some(TokKind::Punct(b'(')) => {
                            let dropped = text(i + 2);
                            if kind(i + 3) == Some(TokKind::Punct(b')')) {
                                if let Some(pos) = held
                                    .iter()
                                    .rposition(|g| g.name.as_deref() == Some(dropped))
                                {
                                    held.remove(pos);
                                }
                            }
                        }
                        // `<recv>.lock()` — a std Mutex acquisition.
                        "lock"
                            if kind(i + 1) == Some(TokKind::Punct(b'('))
                                && i >= 1
                                && kind(i - 1) == Some(TokKind::Punct(b'.')) =>
                        {
                            let recv = if i >= 2 && kind(i - 2) == Some(TokKind::Ident) {
                                text(i - 2).to_string()
                            } else {
                                String::new()
                            };
                            let level =
                                self.lock_levels.get(recv.as_str()).copied().or_else(|| {
                                    // Inside a registered lock-fn the raw
                                    // acquisition on the (arbitrarily
                                    // named) parameter is the fn's level.
                                    fn_stack.last().and_then(|&(lvl, _)| lvl)
                                });
                            match level {
                                None => found.push((
                                    "R3",
                                    t.line,
                                    format!(
                                        "acquisition of undeclared mutex `{recv}` — declare \
                                         it with `lock-level <n> {recv}` in lint.conf"
                                    ),
                                )),
                                Some(level) => self.acquire(
                                    &mut held,
                                    &recv,
                                    level,
                                    depth,
                                    stmt_let.clone(),
                                    t.line,
                                    found,
                                ),
                            }
                        }
                        // Registered helper call: `lock_table(…)`.
                        _ if self.lock_fns.contains_key(w)
                            && kind(i + 1) == Some(TokKind::Punct(b'('))
                            && !(i >= 1 && text(i - 1) == "fn") =>
                        {
                            let level = self.lock_fns[w];
                            self.acquire(
                                &mut held,
                                w,
                                level,
                                depth,
                                stmt_let.clone(),
                                t.line,
                                found,
                            );
                        }
                        // Blocking I/O while holding any lock.
                        _ if !held.is_empty()
                            && self.blocking.contains(&w)
                            && kind(i + 1) == Some(TokKind::Punct(b'('))
                            && i >= 1
                            && matches!(kind(i - 1), Some(TokKind::Punct(b'.' | b':'))) =>
                        {
                            let holding: Vec<&str> = held.iter().map(|g| g.lock.as_str()).collect();
                            found.push((
                                "R3",
                                t.line,
                                format!(
                                    "blocking call `.{w}(…)` while holding lock(s) {} — \
                                     release (drop or end the scope) before blocking I/O",
                                    holding.join(", ")
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn acquire(
        &self,
        held: &mut Vec<GuardSlot>,
        lock: &str,
        level: u32,
        depth: u32,
        stmt_let: Option<String>,
        line: u32,
        found: &mut Vec<(&'static str, u32, String)>,
    ) {
        for g in held.iter() {
            if g.level >= level {
                found.push((
                    "R3",
                    line,
                    format!(
                        "acquiring `{lock}` (level {level}) while holding `{}` (level {}) — \
                         the declared order is outermost-first by ascending level",
                        g.lock, g.level
                    ),
                ));
            }
        }
        let temp = stmt_let.is_none();
        held.push(GuardSlot {
            name: stmt_let,
            lock: lock.to_string(),
            level,
            depth,
            temp,
        });
    }
}

/// A held lock guard tracked by the R3 scanner.
struct GuardSlot {
    name: Option<String>,
    lock: String,
    level: u32,
    depth: u32,
    temp: bool,
}

/// R1: `.unwrap()` / `.expect()`, panicking macros, direct indexing.
fn rule_panic_freedom(src: &str, lexed: &Lexed, found: &mut Vec<(&'static str, u32, String)>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let w = lexed.text(src, t);
                let prev_dot = i >= 1 && toks[i - 1].kind == TokKind::Punct(b'.');
                let next_bang = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct(b'!'));
                // `(` (or a `::<…>(` turbofish) distinguishes the method
                // call from a field that merely shares the name.
                let next_call = toks
                    .get(i + 1)
                    .is_some_and(|n| matches!(n.kind, TokKind::Punct(b'(') | TokKind::Punct(b':')));
                if prev_dot && next_call && (w == "unwrap" || w == "expect") {
                    found.push((
                        "R1",
                        t.line,
                        format!(
                            "`.{w}(…)` on an untrusted-input path — return a positioned \
                             error instead (or add a justified allow entry)"
                        ),
                    ));
                } else if next_bang
                    && matches!(w, "panic" | "unreachable" | "todo" | "unimplemented")
                {
                    found.push((
                        "R1",
                        t.line,
                        format!(
                            "`{w}!` on an untrusted-input path — untrusted input must \
                             never abort the process"
                        ),
                    ));
                }
            }
            TokKind::Punct(b'[') if i >= 1 => {
                let prev = &toks[i - 1];
                let is_index_base = match prev.kind {
                    TokKind::Ident => {
                        let w = lexed.text(src, prev);
                        !NON_INDEX_KEYWORDS.contains(&w)
                    }
                    TokKind::Punct(b')' | b']' | b'?') | TokKind::Str => true,
                    _ => false,
                };
                if is_index_base {
                    found.push((
                        "R1",
                        t.line,
                        "direct slice/array indexing on an untrusted-input path — use \
                         `.get(…)` (or a slice pattern) and handle `None`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// R4: `Ordering::{Acquire,Release,AcqRel,SeqCst}` needs a justification
/// comment containing `ordering:` on the same or previous line.
fn rule_atomics(src: &str, lexed: &Lexed, found: &mut Vec<(&'static str, u32, String)>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || lexed.text(src, t) != "Ordering" {
            continue;
        }
        let colons = matches!(toks.get(i + 1).map(|t| t.kind), Some(TokKind::Punct(b':')))
            && matches!(toks.get(i + 2).map(|t| t.kind), Some(TokKind::Punct(b':')));
        if !colons {
            continue;
        }
        let Some(variant) = toks.get(i + 3) else {
            continue;
        };
        let name = lexed.text(src, variant);
        if !matches!(name, "Acquire" | "Release" | "AcqRel" | "SeqCst") {
            continue;
        }
        // Same line, or anywhere in the contiguous comment block directly
        // above the use (a justification often wraps over several lines).
        let mut justified = lexed.comment_on_line_contains(variant.line, "ordering:");
        let mut l = variant.line;
        while !justified && l > 1 && lexed.has_comment_on_line(l - 1) {
            l -= 1;
            justified = lexed.comment_on_line_contains(l, "ordering:");
        }
        if !justified {
            found.push((
                "R4",
                variant.line,
                format!(
                    "`Ordering::{name}` without an adjacent `// ordering:` justification \
                     comment (Relaxed-only is the default policy)"
                ),
            ));
        }
    }
}

/// R5: bare `as` casts to narrower integer types.
fn rule_cast_safety(src: &str, lexed: &Lexed, found: &mut Vec<(&'static str, u32, String)>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || lexed.text(src, t) != "as" {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.kind != TokKind::Ident {
            continue;
        }
        let target = lexed.text(src, next);
        if NARROW_TARGETS.contains(&target) {
            found.push((
                "R5",
                t.line,
                format!(
                    "bare `as {target}` narrowing cast on a decode path — use \
                     `{target}::try_from(…)` and surface a positioned error"
                ),
            ));
        }
    }
}
