//! # abc-lint — workspace static analysis for the ABC repo
//!
//! The ABC paper's contribution is a *provable* synchrony condition; this
//! crate plays the same role for the codebase's own guarantees: the
//! invariants that were previously enforced only by tests and review —
//! untrusted wire input never panics a session, one sanctioned `unsafe`,
//! a declared lock hierarchy, Relaxed-only atomics by default, no bare
//! narrowing casts on decode paths — are stated once (in `lint.conf` and
//! the rule catalog) and checked mechanically over every `.rs` file.
//!
//! Std-only by construction (the build environment has no crates.io, so
//! no `syn`): a small honest lexer ([`lexer`]) feeds a lexical rule
//! engine ([`rules`]). See the rule table in [`rules`] and the policy
//! file format in [`config`].
//!
//! Entry points:
//!
//! * [`lint_root`] — walk a directory tree, apply `lint.conf`, return a
//!   [`Report`];
//! * `abc lint [--json] [--rule R…]` — the CLI wrapper in `abc-harness`;
//! * `tests/lint_self.rs` (workspace root) — runs this API over the real
//!   workspace in-process, so plain `cargo test` exercises the gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{Diagnostic, RuleFilter, ALL_RULES};

/// Version of the rule catalog; bump when rule semantics change so CI
/// logs and `--json` consumers can tell which policy ran.
pub const CATALOG_VERSION: u32 = 1;

/// The outcome of linting a tree: findings plus run metadata.
#[derive(Clone, Debug)]
pub struct Report {
    /// Every surviving diagnostic, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Rule ids that were enabled for this run.
    pub rules_run: Vec<&'static str>,
}

impl Report {
    /// Whether the tree is clean under the enabled rules.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one line per diagnostic plus a summary.
    #[must_use]
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "abc-lint (catalog v{CATALOG_VERSION}): {} file(s), rules [{}], {} finding(s)",
            self.files_checked,
            self.rules_run.join(", "),
            self.diagnostics.len()
        );
        out
    }

    /// Machine-readable rendering (single JSON object, stable field
    /// order, hand-serialized — the workspace is std-only).
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"catalog_version\":{CATALOG_VERSION},\"files_checked\":{},\"rules\":[",
            self.files_checked
        );
        for (i, r) in self.rules_run.iter().enumerate() {
            let _ = write!(out, "{}{:?}", if i > 0 { "," } else { "" }, r);
        }
        let _ = write!(out, "],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                if i > 0 { "," } else { "" },
                d.rule,
                json_escape(&d.path),
                d.line,
                json_escape(&d.message)
            );
        }
        let _ = write!(out, "]}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Lints every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// hidden directories, and `exclude` entries of `<root>/lint.conf`).
///
/// # Errors
///
/// Config parse errors or I/O errors walking the tree. Findings are not
/// errors — they come back in the [`Report`].
pub fn lint_root(root: &Path, filter: &RuleFilter) -> Result<Report, String> {
    let config = Config::load(root)?;
    lint_root_with(root, &config, filter)
}

/// [`lint_root`] with an explicit (e.g. in-memory) config.
///
/// # Errors
///
/// I/O errors walking the tree.
pub fn lint_root_with(root: &Path, config: &Config, filter: &RuleFilter) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut engine = rules::Engine::new(config, filter.clone());
    for rel in &files {
        let abs = root.join(rel);
        let bytes = std::fs::read(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let src = String::from_utf8_lossy(&bytes);
        engine.check_file(rel, &src);
    }
    Ok(Report {
        diagnostics: engine.finish(),
        files_checked: files.len(),
        rules_run: filter.rules(),
    })
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let Some(rel) = relative_unix(root, &path) else {
            continue;
        };
        if Config::path_in(&rel, &config.excludes) {
            continue;
        }
        let ty = entry
            .file_type()
            .map_err(|e| format!("stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor") {
                continue;
            }
            collect_rs_files(root, &path, config, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn relative_unix(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn filter_rules() {
        let f = RuleFilter::only(&["R1", "R4"]).unwrap();
        assert!(f.enabled("R1"));
        assert!(!f.enabled("R3"));
        assert!(RuleFilter::only(&["R9"]).is_err());
        assert_eq!(RuleFilter::all().rules(), ALL_RULES);
    }
}
