//! A small, honest Rust lexer.
//!
//! This is **not** a parser: it produces a flat token stream that is just
//! faithful enough for lexical rule checking. What it must get right (and
//! has tests for):
//!
//! * line comments and **nested** block comments (neither produce tokens,
//!   but their text is recorded per line for rules that require
//!   justification comments);
//! * string literals in every surface form — `"…"` with escapes, raw
//!   strings `r"…"` / `r#"…"#` with arbitrary `#` depth, byte and C
//!   variants (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`), and raw *identifiers*
//!   (`r#fn`), so that `unwrap` inside a string never looks like a call;
//! * the `'` ambiguity: `'a'` / `'\n'` / `b'x'` are character literals,
//!   `'a` / `'static` are lifetimes;
//! * `#[test]` / `#[cfg(test)]` region tracking by brace depth, so rules
//!   can exempt test code without a parse tree.
//!
//! The lexer never panics and never rejects input: arbitrary byte soup
//! (lossily decoded to UTF-8 by [`lex`]'s callers) lexes to *some* token
//! stream, with unterminated literals simply ending at end of input. A
//! property test asserts this over random inputs.

/// The classification of one [`Tok`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `let`, `unsafe`, `r#fn`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Numeric literal, including its suffix (`0x1f`, `42u8`).
    Num,
    /// A single ASCII punctuation byte (`.`, `[`, `!`, …).
    Punct(u8),
    /// Anything else (stray non-ASCII punctuation, lone quotes).
    Other,
}

/// One lexed token: kind, byte span into the source, 1-based line, and a
/// test-region flag filled in by [`lex`]'s region pass.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// Whether this token lies inside a `#[test]` fn or `#[cfg(test)]`
    /// item body.
    pub in_test: bool,
}

/// The output of [`lex`]: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order (comments and whitespace omitted).
    pub tokens: Vec<Tok>,
    /// `(line, text)` for every comment, recorded at the line the comment
    /// *starts* on. Text excludes the `//` / `/*` introducer.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// The source text of `tok` (callers keep the source they lexed).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str, tok: &Tok) -> &'s str {
        src.get(tok.start..tok.end).unwrap_or("")
    }

    /// Whether any comment starting on `line` contains `needle`.
    #[must_use]
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|(l, text)| *l == line && text.contains(needle))
    }

    /// Whether any comment starts on `line`.
    #[must_use]
    pub fn has_comment_on_line(&self, line: u32) -> bool {
        self.comments.iter().any(|(l, _)| *l == line)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments, then marks test regions.
///
/// Never panics, for any input. Invalid or unterminated constructs lex to
/// best-effort tokens ending at end of input.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut out = raw_lex(src);
    mark_test_regions(src, &mut out);
    out
}

#[allow(clippy::too_many_lines)]
fn raw_lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line = line.saturating_add(1);
                i += 1;
            }
            b' ' | b'\t' | b'\r' | 0x0b | 0x0c => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments
                    .push((line, lossy_slice(src, start, i).to_string()));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line = line.saturating_add(1);
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                out.comments.push((
                    start_line,
                    lossy_slice(src, text_start, text_end).to_string(),
                ));
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    start: i,
                    end,
                    line,
                    in_test: false,
                });
                line = line.saturating_add(nl);
                i = end;
            }
            b'\'' => {
                let (kind, end) = scan_quote(b, i);
                out.tokens.push(Tok {
                    kind,
                    start: i,
                    end,
                    line,
                    in_test: false,
                });
                i = end;
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    start,
                    end: i,
                    line,
                    in_test: false,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word = lossy_slice(src, start, i);
                // String-literal prefixes and raw identifiers: an ident
                // immediately followed by `"`, `#`, or `'` may actually
                // introduce a literal (`r"…"`, `br#"…"#`, `b'x'`, `r#fn`).
                match (word, b.get(i)) {
                    ("r" | "br" | "cr", Some(&b'#' | &b'"')) => {
                        if let Some((end, nl)) = scan_raw_string(b, i) {
                            out.tokens.push(Tok {
                                kind: TokKind::Str,
                                start,
                                end,
                                line,
                                in_test: false,
                            });
                            line = line.saturating_add(nl);
                            i = end;
                        } else if word == "r" && b.get(i) == Some(&b'#') {
                            // Raw identifier `r#ident`.
                            i += 1;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            out.tokens.push(Tok {
                                kind: TokKind::Ident,
                                start,
                                end: i,
                                line,
                                in_test: false,
                            });
                        } else {
                            out.tokens.push(Tok {
                                kind: TokKind::Ident,
                                start,
                                end: i,
                                line,
                                in_test: false,
                            });
                        }
                    }
                    ("b" | "c", Some(&b'"')) => {
                        let (end, nl) = scan_string(b, i);
                        out.tokens.push(Tok {
                            kind: TokKind::Str,
                            start,
                            end,
                            line,
                            in_test: false,
                        });
                        line = line.saturating_add(nl);
                        i = end;
                    }
                    ("b", Some(&b'\'')) => {
                        // A byte-char literal is never a lifetime.
                        let (_, end) = scan_char_body(b, i);
                        out.tokens.push(Tok {
                            kind: TokKind::Char,
                            start,
                            end,
                            line,
                            in_test: false,
                        });
                        i = end;
                    }
                    _ => out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        start,
                        end: i,
                        line,
                        in_test: false,
                    }),
                }
            }
            c if c.is_ascii_punctuation() => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c),
                    start: i,
                    end: i + 1,
                    line,
                    in_test: false,
                });
                i += 1;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Other,
                    start: i,
                    end: i + 1,
                    line,
                    in_test: false,
                });
                i += 1;
            }
        }
    }
    out
}

fn lossy_slice(src: &str, start: usize, end: usize) -> &str {
    let start = start.min(src.len());
    let mut end = end.clamp(start, src.len());
    // Nudge to char boundaries so slicing can't panic on multi-byte input.
    let mut s = start;
    while s < end && !src.is_char_boundary(s) {
        s += 1;
    }
    while end > s && !src.is_char_boundary(end) {
        end -= 1;
    }
    src.get(s..end).unwrap_or("")
}

/// Scans a `"…"` string starting at the opening quote; returns
/// (one-past-closing-quote, newlines crossed). Unterminated → EOF.
fn scan_string(b: &[u8], open: usize) -> (usize, u32) {
    let mut i = open + 1;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

/// Scans a raw string whose hashes/quote begin at `i` (prefix ident
/// already consumed). Returns `None` if this is not actually a raw string
/// (e.g. `r#ident`).
fn scan_raw_string(b: &[u8], mut i: usize) -> Option<(usize, u32)> {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut nl = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if b[i] == b'"' {
            let tail = &b[i + 1..];
            if tail.len() >= hashes && tail.iter().take(hashes).all(|&h| h == b'#') {
                return Some((i + 1 + hashes, nl));
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some((b.len(), nl))
}

/// Scans a char-literal body starting at the opening `'` (byte offset of
/// the quote itself, or of `b` for byte chars — pass the quote offset).
/// Returns (consumed-through, end). Stops at newline/EOF if unterminated.
fn scan_char_body(b: &[u8], start: usize) -> (usize, usize) {
    // Find the quote (start may point at the `b` prefix).
    let mut i = start;
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    i += 1; // past the opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (start, i + 1),
            b'\n' => return (start, i),
            _ => i += 1,
        }
    }
    (start, b.len())
}

/// Disambiguates `'` at `i`: char literal vs lifetime/label.
fn scan_quote(b: &[u8], i: usize) -> (TokKind, usize) {
    match b.get(i + 1) {
        // `'\n'` and friends — always a char literal.
        Some(&b'\\') => {
            let (_, end) = scan_char_body(b, i);
            (TokKind::Char, end)
        }
        // `'x'` — a char literal iff the very next byte closes it.
        Some(&c) if is_ident_continue(c) && c < 0x80 => {
            if b.get(i + 2) == Some(&b'\'') {
                (TokKind::Char, i + 3)
            } else {
                // Lifetime or loop label: consume the identifier.
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                (TokKind::Lifetime, j)
            }
        }
        // Multi-byte scalar char literal like 'é': scan for a closing
        // quote within the next few bytes.
        Some(&c) if c >= 0x80 => {
            let (_, end) = scan_char_body(b, i);
            (TokKind::Char, end)
        }
        // `'('`, `'-'`, … punctuation char literals.
        Some(&c) if c != b'\'' && b.get(i + 2) == Some(&b'\'') => {
            let _ = c;
            (TokKind::Char, i + 3)
        }
        _ => (TokKind::Other, i + 1),
    }
}

/// Marks `in_test` on every token inside a `#[test]` / `#[cfg(test)]`
/// item body, by pairing the marking attribute with the next brace block.
fn mark_test_regions(src: &str, out: &mut Lexed) {
    let mut depth: u32 = 0;
    let mut pending_test = false;
    let mut test_depths: Vec<u32> = Vec::new();
    let mut idx = 0usize;
    while idx < out.tokens.len() {
        // Attributes: `#[…]` / `#![…]` — scan to the matching `]`,
        // checking for a bare `test` ident (covers `#[test]`,
        // `#[cfg(test)]`, `#[cfg(all(test, …))]`).
        if matches!(out.tokens[idx].kind, TokKind::Punct(b'#')) {
            let mut j = idx + 1;
            if matches!(
                out.tokens.get(j).map(|t| t.kind),
                Some(TokKind::Punct(b'!'))
            ) {
                j += 1;
            }
            if matches!(
                out.tokens.get(j).map(|t| t.kind),
                Some(TokKind::Punct(b'['))
            ) {
                let mut nest = 0u32;
                let mut mentions_test = false;
                let mut k = j;
                while k < out.tokens.len() {
                    match out.tokens[k].kind {
                        TokKind::Punct(b'[') => nest += 1,
                        TokKind::Punct(b']') => {
                            nest = nest.saturating_sub(1);
                            if nest == 0 {
                                break;
                            }
                        }
                        TokKind::Ident => {
                            let text = src
                                .get(out.tokens[k].start..out.tokens[k].end)
                                .unwrap_or("");
                            if text == "test" {
                                mentions_test = true;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if mentions_test {
                    pending_test = true;
                }
                // Mark attribute tokens with the current region state and
                // skip past the attribute.
                let in_test = !test_depths.is_empty();
                let last = k.min(out.tokens.len().saturating_sub(1));
                for t in &mut out.tokens[idx..=last] {
                    t.in_test = in_test;
                }
                idx = k + 1;
                continue;
            }
        }
        match out.tokens[idx].kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                }
            }
            TokKind::Punct(b'}') => {
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            // `#[cfg(test)] mod x;` (out-of-line): the `;` ends the item
            // without a body in this file.
            TokKind::Punct(b';') => pending_test = false,
            _ => {}
        }
        out.tokens[idx].in_test = !test_depths.is_empty();
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, bool)> {
        let lx = lex(src);
        lx.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (lx.text(src, t).to_string(), t.in_test))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r###"
            let a = "call .unwrap() here"; // and .unwrap() there
            /* block /* nested */ .unwrap() */
            let b = r#"raw "quoted" .unwrap()"#;
            let c = b"bytes .unwrap()";
        "###;
        let names: Vec<_> = idents(src).into_iter().map(|(n, _)| n).collect();
        assert!(!names.contains(&"unwrap".to_string()), "{names:?}");
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lx = lex(src);
        let kinds: Vec<_> = lx.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Lifetime));
        assert!(kinds.contains(&TokKind::Char));
        // The char literal 'x' must not swallow the closing brace.
        assert_eq!(kinds.last(), Some(&TokKind::Punct(b'}')));
    }

    #[test]
    fn char_escapes_and_byte_chars() {
        let src = r"let a = '\''; let b = b'\n'; let q = '\u{1f}';";
        let lx = lex(src);
        let chars = lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers_stay_idents() {
        let src = "let r#fn = 1; let x = r#\"raw\"#;";
        let lx = lex(src);
        let id = lx
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident && lx.text(src, t) == "r#fn");
        assert!(id.is_some());
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = r"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
            fn live2() { z.unwrap(); }
        ";
        let marked = idents(src);
        let unwraps: Vec<_> = marked.iter().filter(|(n, _)| n == "unwrap").collect();
        assert_eq!(unwraps.len(), 3);
        assert!(!unwraps[0].1);
        assert!(unwraps[1].1);
        assert!(!unwraps[2].1);
    }

    #[test]
    fn test_attr_with_following_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        let marked = idents(src);
        let unwraps: Vec<_> = marked.iter().filter(|(n, _)| n == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(unwraps[0].1);
        assert!(!unwraps[1].1);
    }

    #[test]
    fn unterminated_inputs_lex() {
        for src in ["\"abc", "r#\"abc", "/* a /* b */", "'", "b'", "'\\", "r#"] {
            let _ = lex(src); // must not panic
        }
    }
}
