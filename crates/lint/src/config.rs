//! `lint.conf` — the checked-in policy file driving the rule engine.
//!
//! One directive per line; `#` starts a comment; blank lines ignored.
//! Paths are workspace-root-relative with forward slashes and match the
//! named file or any file under the named directory.
//!
//! ```text
//! untrusted <path>                  # R1/R5 apply to this file/dir
//! lockscope <path>                  # R3 applies to this file/dir
//! lock-level <n> <name> [<name>…]   # mutex idents at hierarchy level n
//! lock-fn <n> <name>                # helper fn acquiring a level-n lock
//! blocking <ident>                  # extend the blocking-call set
//! exclude <path>                    # never walk into this path
//! unsafe <path> -- <justification>  # sanction ONE unsafe occurrence
//! allow R<k> <path> <needle…> -- <justification>
//!                                   # suppress R<k> diagnostics in <path>
//!                                   # on source lines containing <needle>
//! ```
//!
//! `unsafe` and `allow` entries **must** carry a justification after
//! `--`; entries that stop matching anything are themselves reported
//! (rule `R0`), so the file can only shrink honestly.

/// One sanctioned `unsafe` occurrence (rule R2).
#[derive(Clone, Debug)]
pub struct UnsafeEntry {
    /// Workspace-relative path of the file holding the block.
    pub path: String,
    /// The written justification (after `--`).
    pub justification: String,
    /// 1-based `lint.conf` line, for stale-entry diagnostics.
    pub conf_line: u32,
}

/// One allowlist entry suppressing diagnostics of a single rule.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id this entry suppresses (`"R1"` … `"R5"`).
    pub rule: String,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Substring that must appear in the flagged source line.
    pub needle: String,
    /// The written justification (after `--`).
    pub justification: String,
    /// 1-based `lint.conf` line, for stale-entry diagnostics.
    pub conf_line: u32,
}

/// Parsed `lint.conf`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// R1/R5 scope: untrusted-input files and directories.
    pub untrusted: Vec<String>,
    /// R3 scope: files and directories with lock-order checking.
    pub lockscope: Vec<String>,
    /// `(level, ident)` pairs; lower level = outermost lock.
    pub lock_levels: Vec<(u32, String)>,
    /// `(level, fn name)` helper functions that acquire a lock.
    pub lock_fns: Vec<(u32, String)>,
    /// Extra method/function names treated as blocking I/O by R3.
    pub blocking: Vec<String>,
    /// Paths the workspace walk skips entirely.
    pub excludes: Vec<String>,
    /// Sanctioned `unsafe` occurrences (R2).
    pub unsafe_registry: Vec<UnsafeEntry>,
    /// Diagnostic suppressions.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses the text of a `lint.conf`.
    ///
    /// # Errors
    ///
    /// A message naming the offending line for unknown directives,
    /// malformed levels, or missing `--` justifications.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        for (idx, raw) in text.lines().enumerate() {
            let conf_line = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            let fail = |msg: &str| Err(format!("lint.conf line {conf_line}: {msg}"));
            match directive {
                "untrusted" => match one_path(rest) {
                    Some(p) => cfg.untrusted.push(p),
                    None => return fail("expected `untrusted <path>`"),
                },
                "lockscope" => match one_path(rest) {
                    Some(p) => cfg.lockscope.push(p),
                    None => return fail("expected `lockscope <path>`"),
                },
                "exclude" => match one_path(rest) {
                    Some(p) => cfg.excludes.push(p),
                    None => return fail("expected `exclude <path>`"),
                },
                "blocking" => match one_path(rest) {
                    Some(name) => cfg.blocking.push(name),
                    None => return fail("expected `blocking <ident>`"),
                },
                "lock-level" => {
                    let mut parts = rest.split_whitespace();
                    let Some(level) = parts.next().and_then(|l| l.parse::<u32>().ok()) else {
                        return fail("expected `lock-level <n> <name>…`");
                    };
                    let names: Vec<&str> = parts.collect();
                    if names.is_empty() {
                        return fail("lock-level needs at least one lock ident");
                    }
                    for name in names {
                        cfg.lock_levels.push((level, name.to_string()));
                    }
                }
                "lock-fn" => {
                    let mut parts = rest.split_whitespace();
                    let (Some(level), Some(name), None) = (
                        parts.next().and_then(|l| l.parse::<u32>().ok()),
                        parts.next(),
                        parts.next(),
                    ) else {
                        return fail("expected `lock-fn <n> <name>`");
                    };
                    cfg.lock_fns.push((level, name.to_string()));
                }
                "unsafe" => {
                    let Some((head, justification)) = split_justification(rest) else {
                        return fail("unsafe entry needs ` -- <justification>`");
                    };
                    let Some(path) = one_path(&head) else {
                        return fail("expected `unsafe <path> -- <justification>`");
                    };
                    cfg.unsafe_registry.push(UnsafeEntry {
                        path,
                        justification,
                        conf_line,
                    });
                }
                "allow" => {
                    let Some((head, justification)) = split_justification(rest) else {
                        return fail("allow entry needs ` -- <justification>`");
                    };
                    let mut parts = head.split_whitespace();
                    let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
                        return fail("expected `allow R<k> <path> <needle…> -- <justification>`");
                    };
                    if !matches!(rule, "R1" | "R2" | "R3" | "R4" | "R5") {
                        return fail("allow rule must be one of R1…R5");
                    }
                    let needle = parts.collect::<Vec<_>>().join(" ");
                    if needle.is_empty() {
                        return fail("allow entry needs a source-line needle before `--`");
                    }
                    cfg.allows.push(AllowEntry {
                        rule: rule.to_string(),
                        path: path.to_string(),
                        needle,
                        justification,
                        conf_line,
                    });
                }
                other => return fail(&format!("unknown directive {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Loads `<root>/lint.conf`; a missing file yields the empty config
    /// (only the workspace-wide rules R2/R4 will have any effect).
    ///
    /// # Errors
    ///
    /// Parse errors, or an unreadable (but existing) file.
    pub fn load(root: &std::path::Path) -> Result<Config, String> {
        let path = root.join("lint.conf");
        match std::fs::read_to_string(&path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Whether `rel` (forward-slash relative path) falls under any of the
    /// `patterns` entries (exact file or directory prefix).
    #[must_use]
    pub fn path_in(rel: &str, patterns: &[String]) -> bool {
        patterns.iter().any(|p| {
            rel == p
                || rel
                    .strip_prefix(p.as_str())
                    .is_some_and(|r| r.starts_with('/'))
        })
    }
}

fn one_path(rest: &str) -> Option<String> {
    let mut parts = rest.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(p), None) => Some(p.trim_end_matches('/').to_string()),
        _ => None,
    }
}

/// Splits `… -- justification`, requiring a non-empty justification.
fn split_justification(rest: &str) -> Option<(String, String)> {
    let (head, just) = rest.split_once(" -- ")?;
    let just = just.trim();
    if just.is_empty() {
        return None;
    }
    Some((head.trim().to_string(), just.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let text = "\
# policy
untrusted crates/sim/src/binio.rs
lockscope crates/service/src
lock-level 1 table sessions
lock-level 2 state
lock-fn 1 lock_table
blocking sendmsg
exclude crates/lint/fixtures
unsafe crates/service/src/signals.rs -- SIGINT handler, see rustdoc
allow R1 crates/service/src/session.rs .expect(\"a tail chunk -- NLL limitation
";
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.untrusted, vec!["crates/sim/src/binio.rs"]);
        assert_eq!(cfg.lock_levels.len(), 3);
        assert_eq!(cfg.lock_fns, vec![(1, "lock_table".to_string())]);
        assert_eq!(cfg.unsafe_registry.len(), 1);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].needle, ".expect(\"a tail chunk");
        assert!(Config::path_in(
            "crates/service/src/server.rs",
            &cfg.lockscope
        ));
        assert!(!Config::path_in("crates/service/src", &cfg.untrusted));
        assert!(Config::path_in("crates/sim/src/binio.rs", &cfg.untrusted));
    }

    #[test]
    fn rejects_missing_justification() {
        assert!(Config::parse("unsafe a.rs").is_err());
        assert!(Config::parse("unsafe a.rs -- ").is_err());
        assert!(Config::parse("allow R1 a.rs needle").is_err());
        assert!(Config::parse("allow R9 a.rs needle -- why").is_err());
        assert!(Config::parse("frobnicate x").is_err());
    }
}
