//! Property tests for the simulator: trace well-formedness, determinism,
//! and graph-extraction invariants across random workloads.

use abc_core::ProcessId;
use abc_sim::delay::BandDelay;
use abc_sim::{Context, Process, RunLimits, Simulation};
use proptest::prelude::*;

/// A randomized gossiping process: forwards a decremented token to a peer
/// chosen by simple arithmetic on its state.
#[derive(Clone, Debug)]
struct Gossip {
    fanout: usize,
    state: u64,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        let n = ctx.num_processes();
        for i in 0..self.fanout.min(n) {
            ctx.send(ProcessId((ctx.me().0 + i + 1) % n), 8);
        }
        ctx.set_label(self.state);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        self.state = self.state.wrapping_add(*msg);
        if *msg > 0 {
            let n = ctx.num_processes();
            ctx.send(ProcessId((from.0 + self.state as usize) % n), msg - 1);
        }
        ctx.set_label(self.state);
    }
}

fn run(n: usize, fanout: usize, lo: u64, hi: u64, seed: u64) -> Simulation<u64, BandDelay> {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(Gossip { fanout, state: 0 });
    }
    sim.run(RunLimits {
        max_events: 5_000,
        max_time: u64::MAX,
    });
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Traces are chronologically ordered, message endpoints resolve, and
    /// the extracted graph + timed graph validate.
    #[test]
    fn trace_wellformedness(
        n in 2usize..6,
        fanout in 1usize..4,
        lo in 1u64..20,
        spread in 0u64..30,
        seed in any::<u64>(),
    ) {
        let sim = run(n, fanout, lo, lo + spread, seed);
        let trace = sim.trace();
        // Chronological event order.
        prop_assert!(trace.events().windows(2).all(|w| w[0].time <= w[1].time));
        // Message bookkeeping: delivered messages point at real events.
        for m in trace.messages() {
            if let Some(r) = m.recv_event {
                prop_assert_eq!(trace.events()[r].trigger.is_some(), true);
                prop_assert!(m.recv_time.unwrap() >= m.send_time);
                prop_assert_eq!(trace.events()[m.send_event].process, m.from);
                prop_assert_eq!(trace.events()[r].process, m.to);
            }
        }
        // Graph extraction round-trips, and real times validate.
        let g = trace.to_execution_graph();
        prop_assert_eq!(g.num_events(), trace.events().len());
        let timed = trace.to_timed_graph();
        prop_assert!(timed.validate(&g).is_ok());
    }

    /// Same seed => identical trace; the band bounds hold for every
    /// delivered message.
    #[test]
    fn determinism_and_band_bounds(
        n in 2usize..5,
        lo in 1u64..10,
        spread in 0u64..10,
        seed in any::<u64>(),
    ) {
        let a = run(n, 2, lo, lo + spread, seed);
        let b = run(n, 2, lo, lo + spread, seed);
        let key = |s: &Simulation<u64, BandDelay>| -> Vec<(usize, u64, Option<u64>)> {
            s.trace()
                .events()
                .iter()
                .map(|e| (e.process.0, e.time, e.label))
                .collect()
        };
        prop_assert_eq!(key(&a), key(&b));
        for m in a.trace().messages() {
            if let Some(rt) = m.recv_time {
                let d = rt - m.send_time;
                prop_assert!(d >= lo && d <= lo + spread);
            }
        }
    }

    /// Band executions are always ABC-admissible for Xi above the band
    /// ratio — the workhorse assumption of the clock-sync experiments,
    /// verified against the real checker on random workloads.
    #[test]
    fn band_executions_are_abc_admissible(
        n in 2usize..5,
        seed in any::<u64>(),
    ) {
        let sim = run(n, 2, 10, 19, seed);
        let g = sim.trace().to_execution_graph();
        let xi = abc_core::Xi::from_fraction(2, 1);
        prop_assert!(abc_core::check::is_admissible(&g, &xi).unwrap());
    }

    /// The attached streaming monitor, the offline trace replay, and the
    /// batch checker all agree on random workloads — including tight Xi
    /// values where band reordering does produce violations.
    #[test]
    fn attached_monitor_matches_batch_and_replay(
        n in 2usize..5,
        lo in 1u64..6,
        spread in 0u64..8,
        seed in any::<u64>(),
        num in 5i64..15,
        den in 4i64..8,
    ) {
        prop_assume!(num > den);
        let xi = abc_core::Xi::from_fraction(num, den);
        let mut sim = Simulation::new(BandDelay::new(lo, lo + spread, seed));
        for _ in 0..n {
            sim.add_process(Gossip { fanout: 2, state: 0 });
        }
        sim.attach_monitor(&xi).unwrap();
        sim.run(RunLimits {
            max_events: 2_000,
            max_time: u64::MAX,
        });
        let g = sim.trace().to_execution_graph();
        let mon = sim.monitor().expect("attached");
        prop_assert_eq!(mon.graph(), &g);
        let batch = abc_core::check::is_admissible(&g, &xi).unwrap();
        prop_assert_eq!(mon.is_admissible(), batch);
        if let Some(w) = sim.violation() {
            prop_assert!(w.validate(&g).is_ok());
            prop_assert!(w.classify().violates(&xi));
        }
        let replay = sim.trace().replay_into_monitor(&xi).unwrap();
        prop_assert_eq!(replay.is_admissible(), batch);
        prop_assert_eq!(replay.graph(), &g);
    }
}
