//! The partition phase of the parallel engine, and the worker-side step.
//!
//! [`Simulation::collect_batch`] pops every ready entry at one discrete
//! time (up to the event budget) and groups them into one [`StepJob`] per
//! destination process, remembering the exact pop order in
//! [`Batch::plan`]. Workers run [`run_job`] — the pure compute part of a
//! step, no engine state touched — and the commit phase replays the plan
//! on the main thread.

use std::cmp::Reverse;

use abc_core::ProcessId;

use crate::delay::DelayModel;
use crate::process::{Context, Process};

use super::{EntryKind, Simulation};

/// One ready entry assigned to a job: a wake-up (`trigger: None`) or a
/// delivery with its payload moved out of the slab. The slot index rides
/// along so the commit phase can recycle it at this entry's pop position
/// (keeping the free-list order identical to the sequential engine).
pub(super) struct StepInput<M> {
    /// `Some((message index, sender))` for deliveries, `None` for inits.
    pub trigger: Option<(usize, ProcessId)>,
    /// The delivered payload (consumed by the worker's step).
    pub payload: Option<M>,
    /// The slab slot the payload came from, freed at commit time.
    pub payload_slot: Option<usize>,
}

/// What one step did, as observed by the worker: how many sends it pushed
/// into the job arena plus the trace instrumentation it set. Everything
/// else a step can do (trace append, monitor feed, delay draws) is
/// deferred to the commit phase.
#[derive(Clone, Copy)]
pub(super) struct StepEffects {
    /// Number of sends this step appended to the job arena.
    pub outbox_len: usize,
    /// `Context::set_label` value, if any.
    pub label: Option<u64>,
    /// Whether the step called `Context::mark_distinguished`.
    pub distinguished: bool,
    /// Whether the process had crashed *before* this step ran.
    pub was_crashed: bool,
}

/// All of one process's ready entries at the batch's discrete time. The
/// process state machine is moved out of the engine (`behavior`) for the
/// duration of the batch and moved back at merge.
pub(super) struct StepJob<M> {
    /// Position within the batch's job list — the merge key: workers
    /// return jobs in completion order, the merge re-slots them by this.
    pub slot: usize,
    /// The destination process this job steps.
    pub process_idx: usize,
    /// Total process count (for `Context::broadcast`).
    pub num_processes: usize,
    /// The batch's discrete time.
    pub time: u64,
    /// The process state machine, checked out of `Simulation::processes`.
    pub behavior: Box<dyn Process<M>>,
    /// The job's entries, in `(time, tie)` pop order.
    pub inputs: Vec<StepInput<M>>,
    /// Per-step outcomes, parallel to `inputs` (filled by the worker).
    pub effects: Vec<StepEffects>,
    /// All steps' sends back to back, *reversed* at the end of the job so
    /// the commit phase can pop them off the back in forward order.
    pub arena: Vec<(ProcessId, M)>,
}

/// A job's reusable buffers, reclaimed after each batch so steady-state
/// batches allocate nothing.
pub(super) struct JobBufs<M> {
    pub inputs: Vec<StepInput<M>>,
    pub effects: Vec<StepEffects>,
    pub arena: Vec<(ProcessId, M)>,
}

// Hand-written (a derive would needlessly require `M: Default`).
impl<M> Default for JobBufs<M> {
    fn default() -> JobBufs<M> {
        JobBufs {
            inputs: Vec::new(),
            effects: Vec::new(),
            arena: Vec::new(),
        }
    }
}

impl<M> JobBufs<M> {
    /// Clears and repackages a finished job's buffers for reuse.
    pub fn reclaim(
        mut inputs: Vec<StepInput<M>>,
        mut effects: Vec<StepEffects>,
        mut arena: Vec<(ProcessId, M)>,
    ) -> JobBufs<M> {
        inputs.clear();
        effects.clear();
        arena.clear();
        JobBufs {
            inputs,
            effects,
            arena,
        }
    }
}

/// One same-timestamp batch: the jobs to run plus the commit plan — the
/// exact `(time, tie)` pop order, as `(job index, step index within the
/// job)` pairs.
pub(super) struct Batch<M> {
    /// The batch's discrete time.
    pub time: u64,
    /// One job per distinct destination process.
    pub jobs: Vec<StepJob<M>>,
    /// The sequential pop order over all jobs' steps.
    pub plan: Vec<(usize, usize)>,
}

impl<M: Clone + Send + 'static, D: DelayModel> Simulation<M, D> {
    /// Pops every ready entry at time `now` (at most `budget` of them, so
    /// `RunLimits::max_events` can cut a timestamp mid-batch exactly like
    /// the sequential loop would) and partitions them into per-process
    /// jobs. Entries enqueued *during* this timestamp's commit get higher
    /// ties and form the next sub-batch at the same time.
    pub(super) fn collect_batch(&mut self, now: u64, budget: usize) -> Batch<M> {
        let mut jobs: Vec<StepJob<M>> = Vec::new();
        let mut plan: Vec<(usize, usize)> = Vec::new();
        while plan.len() < budget {
            let Some(Reverse(entry)) = self.queue.peek().copied() else {
                break;
            };
            if entry.time != now {
                break;
            }
            self.queue.pop();
            let (p, input) = match entry.kind {
                EntryKind::Init(p) => (
                    p,
                    StepInput {
                        trigger: None,
                        payload: None,
                        payload_slot: None,
                    },
                ),
                EntryKind::Deliver(p, mi, slot) => (
                    p,
                    StepInput {
                        trigger: Some((mi, self.trace.messages[mi].from)),
                        payload: self.payloads[slot].take(),
                        payload_slot: Some(slot),
                    },
                ),
            };
            let j = if self.job_of[p] != usize::MAX {
                self.job_of[p]
            } else {
                let j = jobs.len();
                self.job_of[p] = j;
                let behavior = self.processes[p]
                    .take()
                    .expect("process present between batches");
                let bufs = self.spare.pop().unwrap_or_default();
                jobs.push(StepJob {
                    slot: j,
                    process_idx: p,
                    num_processes: self.processes.len(),
                    time: now,
                    behavior,
                    inputs: bufs.inputs,
                    effects: bufs.effects,
                    arena: bufs.arena,
                });
                j
            };
            jobs[j].inputs.push(input);
            plan.push((j, jobs[j].inputs.len() - 1));
        }
        // Reset the partition scratch for the next batch.
        for job in &jobs {
            self.job_of[job.process_idx] = usize::MAX;
        }
        Batch {
            time: now,
            jobs,
            plan,
        }
    }
}

/// Runs every step of one job, in order, on the calling (worker) thread.
/// Pure compute: the only engine-visible effects are the job's own
/// `effects` records and arena sends — no locks, no shared state.
pub(super) fn run_job<M: Clone + 'static>(job: &mut StepJob<M>) {
    let _span = abc_obs::span("sim.step.job");
    for input in &mut job.inputs {
        let was_crashed = job.behavior.has_crashed();
        let start_len = job.arena.len();
        let mut label = None;
        let mut distinguished = false;
        {
            let mut ctx = Context {
                me: ProcessId(job.process_idx),
                now: job.time,
                num_processes: job.num_processes,
                outbox: &mut job.arena,
                label: &mut label,
                distinguished: &mut distinguished,
            };
            match (&input.trigger, &input.payload) {
                (None, _) => job.behavior.on_init(&mut ctx),
                (Some((_, from)), Some(msg)) => job.behavior.on_message(&mut ctx, *from, msg),
                (Some(_), None) => unreachable!("payload consumed exactly once"),
            }
        }
        job.effects.push(StepEffects {
            outbox_len: job.arena.len() - start_len,
            label,
            distinguished,
            was_crashed,
        });
        input.payload = None;
    }
    // The commit phase pops sends off the back; reversing here makes those
    // pops come out in forward (send) order.
    job.arena.reverse();
}
