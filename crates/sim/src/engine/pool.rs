//! The persistent worker pool backing the parallel engine.
//!
//! One pool per `Simulation`, created lazily at the first parallel batch
//! and reused for every batch until the simulation drops. The protocol is
//! a plain condvar rendezvous: the main thread loads a batch's jobs into
//! the shared queue and waits on `done_cv`; workers pull jobs, run them,
//! push the finished jobs (process state machine included) into their own
//! outbox, and the last one to finish signals done.
//!
//! Lock hierarchy (declared in lint.conf): the scheduler `queue` (level 6)
//! is always taken before any per-worker `outbox` (level 7) — in practice
//! the two are never held together; workers drop the queue guard before
//! touching their outbox, and the merge walks outboxes after the queue
//! wait returns.
//!
//! A panicking step is caught on the worker, its job is still pushed to
//! the outbox (so the process box and its siblings' state survive the
//! merge), and the payload is re-thrown on the main thread after the
//! merge — the caller sees the original panic, not a poisoned lock.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use super::scheduler::{run_job, StepJob};

/// The handle owned by the `Simulation`: shared state plus the worker
/// thread handles (joined on drop).
pub(super) struct WorkerPool<M> {
    shared: Arc<Shared<M>>,
    handles: Vec<JoinHandle<()>>,
}

struct Shared<M> {
    queue: Mutex<QueueState<M>>,
    /// Signals workers: jobs available (or shutdown).
    work_cv: Condvar,
    /// Signals the main thread: the batch's last job finished.
    done_cv: Condvar,
    /// One outbox per worker — finished jobs land in the running worker's
    /// own box, so workers never contend with each other on completion.
    outboxes: Vec<Mutex<Vec<StepJob<M>>>>,
}

struct QueueState<M> {
    /// Jobs not yet claimed by a worker (popped from the back).
    jobs: Vec<StepJob<M>>,
    /// Jobs claimed but not yet finished; 0 = batch complete.
    pending: usize,
    /// Set by `Drop`: workers exit their loop.
    closed: bool,
    /// The first panic payload of the batch, re-thrown by the main thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl<M: Clone + Send + 'static> WorkerPool<M> {
    /// Spawns `workers` (at least 1) named worker threads.
    pub fn new(workers: usize) -> WorkerPool<M> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: Vec::new(),
                pending: 0,
                closed: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            outboxes: (0..workers.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        });
        let handles = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abc-sim-worker-{index}"))
                    .spawn(move || worker_main(&shared, index))
                    .expect("spawn sim worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Runs one batch to completion: hands `jobs` to the workers, waits
    /// for all of them, and re-slots the finished jobs into `merged` by
    /// their batch position (`merged[job.slot]`). Re-throws the first
    /// worker panic after the merge, so the engine's process slots are
    /// restored either way.
    pub fn run_batch(&self, jobs: Vec<StepJob<M>>, merged: &mut Vec<Option<StepJob<M>>>) {
        merged.clear();
        merged.resize_with(jobs.len(), || None);
        if jobs.is_empty() {
            return;
        }
        {
            let mut queue = self.shared.queue.lock().expect("sim worker queue poisoned");
            debug_assert_eq!(queue.pending, 0, "previous batch fully drained");
            queue.pending = jobs.len();
            queue.jobs = jobs;
            self.shared.work_cv.notify_all();
        }
        let panic_payload = {
            let mut queue = self.shared.queue.lock().expect("sim worker queue poisoned");
            while queue.pending > 0 {
                queue = self
                    .shared
                    .done_cv
                    .wait(queue)
                    .expect("sim worker queue poisoned");
            }
            queue.panic.take()
        };
        for outbox in &self.shared.outboxes {
            let mut done = outbox.lock().expect("sim worker outbox poisoned");
            for job in done.drain(..) {
                let slot = job.slot;
                merged[slot] = Some(job);
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl<M> Drop for WorkerPool<M> {
    fn drop(&mut self) {
        {
            // Survive poison: shutdown must reach the workers even if a
            // panicking batch poisoned the queue mutex.
            let mut queue = match self.shared.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue.closed = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main<M: Clone + 'static>(shared: &Shared<M>, index: usize) {
    loop {
        let mut job = {
            let mut queue = shared.queue.lock().expect("sim worker queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    .expect("sim worker queue poisoned");
            }
        };
        // AssertUnwindSafe: on panic the job is surrendered whole (below)
        // and the engine re-throws before looking at its half-built
        // effects, so no broken invariant is ever observed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(&mut job)));
        {
            // Push the job back even on panic: the process box and the
            // sibling jobs' state must survive the merge.
            let outbox = &shared.outboxes[index];
            let mut done = outbox.lock().expect("sim worker outbox poisoned");
            done.push(job);
        }
        {
            let mut queue = shared.queue.lock().expect("sim worker queue poisoned");
            if let Err(payload) = result {
                if queue.panic.is_none() {
                    queue.panic = Some(payload);
                }
            }
            queue.pending -= 1;
            if queue.pending == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}
